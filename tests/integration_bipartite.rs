//! Cross-crate integration tests of Bipartite Attention's core claims:
//! the co-designed masks/positions make prefix caches exact and sharing
//! sound, across model configurations and prompt shapes.

use bat::{GrModel, GrModelConfig, MaskScheme, PrefixKind, PromptLayout, Weights};
use proptest::prelude::*;

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn build_parts(
    user_len: usize,
    n_items: usize,
    item_len: usize,
) -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
    let user: Vec<u32> = (0..user_len as u32).map(|i| 40 + i).collect();
    let items: Vec<Vec<u32>> = (0..n_items as u32)
        .map(|i| {
            (0..item_len as u32)
                .map(|j| i * item_len as u32 + j)
                .collect()
        })
        .collect();
    (user, items, vec![120, 121])
}

/// §3.2's prefix-cache identity holds end-to-end for both orderings and
/// both model shapes (MHA and GQA).
#[test]
fn prefix_cache_identity_across_configs() {
    let (user, items, instr) = build_parts(6, 5, 2);
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    for cfg in [GrModelConfig::tiny(128), GrModelConfig::small(128)] {
        let model = GrModel::new(Weights::random(cfg, 99));
        for prefix_kind in [PrefixKind::User, PrefixKind::Item] {
            let seq = layout.build(prefix_kind, &user, &items, &instr);
            let full = model.forward(&seq, None);
            let prefix_len = match prefix_kind {
                PrefixKind::User => user.len(),
                PrefixKind::Item => items.iter().map(Vec::len).sum(),
            };
            let (head, tail) = seq.split_at(prefix_len);
            let cached = model.forward(&tail, Some(&model.compute_kv(&head)));
            assert!(
                max_diff(&full.logits, &cached.logits) < 1e-3,
                "{prefix_kind}: cached forward must equal recomputation"
            );
        }
    }
}

/// Cross-user item sharing: the same candidate set scored for two
/// different users reuses one set of item KV segments, losslessly.
#[test]
fn item_prefix_shared_across_users() {
    let model = GrModel::new(Weights::random(GrModelConfig::tiny(128), 5));
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    let (_, items, instr) = build_parts(0, 6, 2);
    let user_a: Vec<u32> = (40..48).collect();
    let user_b: Vec<u32> = (60..70).collect();

    // Precompute the shared item prefix once (the item cache pool).
    let item_block_len: usize = items.iter().map(Vec::len).sum();
    let seq_a = layout.build(PrefixKind::Item, &user_a, &items, &instr);
    let (item_head, tail_a) = seq_a.split_at(item_block_len);
    let shared_kv = model.compute_kv(&item_head);

    // User A and user B both splice the same segment.
    let full_a = model.forward(&seq_a, None);
    let cached_a = model.forward(&tail_a, Some(&shared_kv));
    assert!(max_diff(&full_a.logits, &cached_a.logits) < 1e-3);

    let seq_b = layout.build(PrefixKind::Item, &user_b, &items, &instr);
    let (_, tail_b) = seq_b.split_at(item_block_len);
    let full_b = model.forward(&seq_b, None);
    let cached_b = model.forward(&tail_b, Some(&shared_kv));
    assert!(max_diff(&full_b.logits, &cached_b.logits) < 1e-3);
}

/// Under the *naive* scheme the same sharing is lossy — the §3.3 argument
/// for why vanilla prefix caching cannot share item caches.
#[test]
fn naive_scheme_item_sharing_is_lossy() {
    let model = GrModel::new(Weights::random(GrModelConfig::tiny(128), 5));
    let bipartite = PromptLayout::new(MaskScheme::Bipartite);
    let naive = PromptLayout::new(MaskScheme::NaiveCausal);
    let (user, items, instr) = build_parts(6, 5, 2);

    // Item 3's KV inside a naive prompt differs from its standalone KV.
    let seq = naive.build(PrefixKind::Item, &user, &items, &instr);
    let full = model.forward(&seq, None);
    let standalone = naive.item_standalone(3, &items[3], 0);
    let solo = model.compute_kv(&standalone);
    let offset = 3 * 2; // item 3 starts at token 6
    let mut diff = 0.0f32;
    for l in 0..model.config().layers {
        for t in 0..2 {
            diff = diff.max(max_diff(
                &full.suffix_kv.layers[l].key(offset + t),
                &solo.layers[l].key(t),
            ));
        }
    }
    assert!(diff > 1e-3, "naive item KV should be context-dependent");

    // Bipartite: identical by construction.
    let seq = bipartite.build(PrefixKind::Item, &user, &items, &instr);
    let full = model.forward(&seq, None);
    let standalone = bipartite.item_standalone(3, &items[3], 0);
    let solo = model.compute_kv(&standalone);
    let mut diff = 0.0f32;
    for l in 0..model.config().layers {
        for t in 0..2 {
            diff = diff.max(max_diff(
                &full.suffix_kv.layers[l].key(offset + t),
                &solo.layers[l].key(t),
            ));
        }
    }
    assert!(diff < 1e-5, "bipartite item KV must be context-free");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The prefix-cache identity is a property, not a coincidence of one
    /// prompt shape: it holds for random sizes, seeds, and orderings.
    #[test]
    fn prefix_cache_identity_property(
        seed in 0u64..500,
        user_len in 1usize..10,
        n_items in 1usize..7,
        item_len in 1usize..4,
        item_prefix in proptest::bool::ANY,
    ) {
        let model = GrModel::new(Weights::random(GrModelConfig::tiny(256), seed));
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let (user, items, instr) = build_parts(user_len, n_items, item_len);
        let kind = if item_prefix { PrefixKind::Item } else { PrefixKind::User };
        let seq = layout.build(kind, &user, &items, &instr);
        let full = model.forward(&seq, None);
        let prefix_len = match kind {
            PrefixKind::User => user.len(),
            PrefixKind::Item => items.iter().map(Vec::len).sum(),
        };
        prop_assume!(prefix_len > 0 && prefix_len < seq.len());
        let (head, tail) = seq.split_at(prefix_len);
        let cached = model.forward(&tail, Some(&model.compute_kv(&head)));
        prop_assert!(max_diff(&full.logits, &cached.logits) < 2e-3);
    }

    /// Permuting candidate items permutes candidate scores identically
    /// (§4.1's set semantics) under the bipartite scheme, in both orderings.
    #[test]
    fn candidate_permutation_equivariance(
        seed in 0u64..300,
        item_prefix in proptest::bool::ANY,
    ) {
        let model = GrModel::new(Weights::random(GrModelConfig::tiny(64), seed));
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let user: Vec<u32> = (40..46).collect();
        let items: Vec<Vec<u32>> = (0..4u32).map(|i| vec![i, 50 + i]).collect();
        let instr = vec![60, 61];
        let kind = if item_prefix { PrefixKind::Item } else { PrefixKind::User };

        let seq = layout.build(kind, &user, &items, &instr);
        let scores = model.forward(&seq, None).candidate_scores(&[0, 1, 2, 3]);

        let perm = [2usize, 0, 3, 1];
        let permuted: Vec<Vec<u32>> = perm.iter().map(|&i| items[i].clone()).collect();
        let id_tokens: Vec<u32> = perm.iter().map(|&i| i as u32).collect();
        let seq_p = layout.build(kind, &user, &permuted, &instr);
        let scores_p = model.forward(&seq_p, None).candidate_scores(&id_tokens);

        for (k, &i) in perm.iter().enumerate() {
            prop_assert!((scores[i] - scores_p[k]).abs() < 1e-4);
        }
    }
}
