//! Meta-failover integration: the replicated cache-meta service under
//! leader crashes, per-link partitions and epoch fencing.
//!
//! The headline invariant mirrors the paper's availability story at the
//! control plane: killing a meta replica — even the leader, mid-run — must
//! change *nothing* about serving. Elections run on logical ticks inside
//! the nominal trace instants, so every request completes, a new leader
//! emerges at a strictly higher epoch, and the final `RunStats` are
//! bitwise-identical to the fault-free run.

use bat::meta::{MetaCommand, MetaError, MetaGroup};
use bat::{
    Bytes, ClusterConfig, DatasetConfig, EngineConfig, FaultEvent, FaultKind, FaultReport,
    FaultSchedule, ModelConfig, RankRequest, RunStats, ServeOptions, ServeRuntime, ServingEngine,
    SystemKind, UserId,
};
use bat_workload::{TraceGenerator, Workload};
use proptest::prelude::*;

const META_REPLICAS: usize = 3;

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node();
    c.num_nodes = 2;
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

fn dataset() -> DatasetConfig {
    // Few users so the short trace revisits them and the user cache churns.
    DatasetConfig {
        num_users: 300,
        ..DatasetConfig::games()
    }
}

fn trace(ds: &DatasetConfig, secs: f64, rate: f64, seed: u64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), seed), seed ^ 1);
    g.generate(secs, rate)
}

fn config(ds: &DatasetConfig) -> EngineConfig {
    EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        small_cluster(),
        ds,
    )
}

/// The replica the engine's meta group elects first, probed from an
/// identical seeded group — "kill the leader" schedules target it.
fn initial_leader(cfg: &EngineConfig) -> usize {
    let mut probe = MetaGroup::new(cfg.meta_replicas, cfg.meta_seed);
    probe.ensure_leader().expect("fresh group has a quorum")
}

/// Clears the fault report so two runs can be compared on serving alone.
fn without_fault_report(stats: &RunStats) -> RunStats {
    let mut s = stats.clone();
    s.faults = FaultReport::default();
    s
}

#[test]
fn leader_crash_mid_run_is_bitwise_invisible_to_serving() {
    let ds = dataset();
    let t = trace(&ds, 4.0, 30.0, 11);
    let baseline = ServingEngine::new(config(&ds))
        .expect("preset config validates")
        .run(&t);

    let cfg = config(&ds);
    let leader = initial_leader(&cfg);
    let schedule = FaultSchedule::single_meta_crash(2, META_REPLICAS, leader, 1.0, 3.0)
        .expect("leader crash keeps a quorum");
    let faulted = ServingEngine::new(cfg.with_faults(Some(schedule)))
        .expect("meta schedule validates")
        .run(&t);

    assert_eq!(
        faulted.completed,
        t.len(),
        "failover must not drop requests"
    );
    assert_eq!(faulted.faults.meta_crashes, 1);
    assert_eq!(faulted.faults.meta_restarts, 1);
    assert!(
        faulted.faults.meta_final_epoch > 1,
        "the new leader must hold a strictly higher epoch than the first \
         election's (got {})",
        faulted.faults.meta_final_epoch
    );
    assert!(faulted.faults.meta_elections >= 2, "failover re-elects");
    // The replicated service absorbed the failover entirely: serving stats
    // match the fault-free run bit for bit.
    assert_eq!(
        without_fault_report(&faulted),
        without_fault_report(&baseline)
    );
}

#[test]
fn sim_and_serve_agree_under_meta_failover() {
    let ds = dataset();
    let t = trace(&ds, 3.0, 30.0, 11);
    let cfg = config(&ds);
    let leader = initial_leader(&cfg);
    let schedule = FaultSchedule::single_meta_crash(2, META_REPLICAS, leader, 0.8, 2.2)
        .expect("leader crash keeps a quorum");

    let sim_stats = ServingEngine::new(cfg.clone().with_faults(Some(schedule.clone())))
        .expect("meta schedule validates")
        .run(&t);
    let rt_stats = ServeRuntime::new(cfg.with_faults(Some(schedule)), ServeOptions::default())
        .expect("meta schedule validates")
        .serve(&t);

    assert_eq!(rt_stats.completed, t.len());
    assert_eq!(rt_stats.total_tokens, sim_stats.total_tokens);
    assert_eq!(rt_stats.reused_tokens, sim_stats.reused_tokens);
    assert_eq!(rt_stats.up_requests, sim_stats.up_requests);
    // The consensus trail — elections, epochs, fenced appends — is part of
    // the fault report, and both execution paths must walk it identically.
    assert_eq!(rt_stats.faults, sim_stats.faults);
    assert!(rt_stats.faults.meta_final_epoch > 1);
}

#[test]
fn partitioned_leader_forces_election_and_data_plane_detours() {
    let ds = dataset();
    let t = trace(&ds, 4.0, 30.0, 11);
    let baseline = ServingEngine::new(config(&ds))
        .expect("preset config validates")
        .run(&t);

    // Pick a meta seed whose initial leader is hosted on worker 1, so
    // cutting the 0<->1 fabric link severs the client (worker 0) from it.
    // Replicas are hosted round-robin: on 2 workers, replica 1 is the only
    // one living on worker 1.
    let mut cfg = config(&ds);
    cfg.meta_seed = (0..)
        .find(|&seed| {
            let mut probe = MetaGroup::new(META_REPLICAS, seed);
            probe.ensure_leader() == Ok(1)
        })
        .expect("some seed elects replica 1 first");
    let w0 = bat::WorkerId::new(0);
    let w1 = bat::WorkerId::new(1);
    let schedule = FaultSchedule::with_meta_nodes(
        2,
        META_REPLICAS,
        vec![
            FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::CutLink { a: w0, b: w1 },
            },
            FaultEvent {
                at_secs: 3.0,
                kind: FaultKind::HealLink { a: w0, b: w1 },
            },
        ],
    )
    .expect("link cut/heal pairs validate");
    let faulted = ServingEngine::new(cfg.with_faults(Some(schedule)))
        .expect("partition schedule validates")
        .run(&t);

    assert_eq!(faulted.completed, t.len());
    assert_eq!(faulted.faults.link_partitions, 1);
    assert!(
        faulted.faults.meta_unreachable_leader_elections >= 1,
        "the client must depose the unreachable leader"
    );
    assert!(faulted.faults.meta_final_epoch > 1, "deposing re-elects");
    // Unlike a replica crash, a fabric cut is *not* serving-invisible:
    // while 0<->1 is down the data plane must also stop pulling warm KV
    // from worker 1, detouring those lookups to recompute. Same requests,
    // same total work — just fewer remote reuses while the link is cut.
    assert!(
        faulted.faults.unreachable_kv_fallbacks >= 1,
        "data-plane lookups must detour around the cut link"
    );
    assert_eq!(faulted.total_tokens, baseline.total_tokens);
    assert!(
        faulted.reused_tokens <= baseline.reused_tokens,
        "detoured lookups cannot reuse more than the unpartitioned run"
    );
    assert!(
        faulted.remote_bytes <= baseline.remote_bytes,
        "a cut link cannot increase cross-worker KV traffic"
    );
}

#[test]
fn fenced_stale_epoch_write_is_never_applied() {
    // Linearizability at the group level: a deposed leader that never heard
    // of the new epoch cannot commit — and its attempted write must not
    // survive on any replica.
    let mut g = MetaGroup::new(META_REPLICAS, 42);
    let committed = MetaCommand::RegisterEntry {
        key: UserId::new(1).into(),
        bytes: 64,
    };
    g.submit(&committed).expect("fresh group commits");
    let old_leader = g.leader().expect("a leader was just elected");
    let old_epoch = g.epoch();

    // Partition the old leader away; the rest elect a successor.
    g.isolate(old_leader);
    let new_leader = g
        .force_election(|m| m != old_leader)
        .expect("majority side elects");
    assert_ne!(new_leader, old_leader);
    assert!(g.epoch() > old_epoch, "election bumps the epoch");

    // The partition heals and the deposed leader tries to push a write it
    // accepted while isolated: epoch fencing must reject it outright.
    g.reconnect(old_leader);
    let stale = MetaCommand::RegisterEntry {
        key: UserId::new(999).into(),
        bytes: 1,
    };
    match g.try_append_via(old_leader, &stale) {
        Err(MetaError::Fenced {
            stale_epoch,
            current_epoch,
        }) => assert!(stale_epoch < current_epoch),
        other => panic!("stale write must be fenced, got {other:?}"),
    }
    for m in 0..g.num_nodes() {
        assert!(
            !g.state_of(m).contains(UserId::new(999).into()),
            "fenced write leaked into replica {m}"
        );
        assert!(
            g.state_of(m).contains(UserId::new(1).into()) || m == old_leader,
            "committed write must survive on the majority side"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any single meta-replica crash/restart schedule — whichever node,
    /// whenever it dies, however long it stays down — yields final serving
    /// metrics bitwise-identical to the fault-free run.
    #[test]
    fn any_single_meta_crash_is_invisible(
        node in 0usize..META_REPLICAS,
        crash_at in 0.3f64..1.8,
        down_secs in 0.4f64..1.6,
        seed in 0u64..50,
    ) {
        let ds = dataset();
        let t = trace(&ds, 3.0, 25.0, seed);
        prop_assume!(!t.is_empty());
        let baseline = ServingEngine::new(config(&ds))
            .expect("preset config validates")
            .run(&t);
        let schedule = FaultSchedule::single_meta_crash(
            2,
            META_REPLICAS,
            node,
            crash_at,
            crash_at + down_secs,
        )
        .expect("single crash keeps a quorum");
        let faulted = ServingEngine::new(config(&ds).with_faults(Some(schedule)))
            .expect("meta schedule validates")
            .run(&t);
        prop_assert_eq!(faulted.completed, t.len());
        prop_assert_eq!(faulted.faults.meta_crashes, 1);
        prop_assert_eq!(
            without_fault_report(&faulted),
            without_fault_report(&baseline)
        );
    }
}
