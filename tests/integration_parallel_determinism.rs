//! The execution layer's determinism contract, end to end: every parallel
//! primitive in `bat-exec` promises bit-identical results for **any**
//! thread count, so a forward pass, a scored candidate list, and a full
//! simulated or threaded serving run must produce exactly the same bits at
//! 1, 2, 4, and 8 threads.
//!
//! The thread count here is flipped with [`bat::exec::set_threads`], the
//! runtime override that sits above the `BAT_THREADS` environment variable
//! in the resolution order (same code path, testable without process-wide
//! env mutation; `batctl --threads` goes through the identical call).
//!
//! Note the override is process-global and Rust runs tests concurrently:
//! another test may flip the count mid-forward. That is not a flaw in the
//! harness — it is the strongest form of the contract. Results may not
//! depend on the thread count *even while it changes*.

use bat::exec::set_threads;
use bat::{
    GrModel, GrModelConfig, HstuModel, MaskScheme, PrefixKind, PromptLayout, SemanticConfig,
    SemanticWorld, ServeOptions, ServeRuntime, Weights,
};
use bat_sim::{EngineConfig, RunStats, ServingEngine, SystemKind};
use bat_types::{Bytes, ClusterConfig, DatasetConfig, ModelConfig};
use bat_workload::{TraceGenerator, Workload};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

fn build_parts(
    user_len: usize,
    n_items: usize,
    item_len: usize,
) -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
    let user: Vec<u32> = (0..user_len as u32).map(|i| 40 + i).collect();
    let items: Vec<Vec<u32>> = (0..n_items as u32)
        .map(|i| {
            (0..item_len as u32)
                .map(|j| i * item_len as u32 + j)
                .collect()
        })
        .collect();
    (user, items, vec![120, 121])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel `GrModel::forward` is bit-identical to serial for both
    /// prefix orderings (UP and IP), across random prompt shapes, with and
    /// without a cached prefix.
    #[test]
    fn gr_forward_is_bit_identical_across_thread_counts(
        seed in 0u64..500,
        user_len in 2usize..10,
        n_items in 2usize..8,
        item_len in 1usize..4,
    ) {
        let (user, items, instr) = build_parts(user_len, n_items, item_len);
        let model = GrModel::new(Weights::random(GrModelConfig::small(128), seed));
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        for prefix_kind in [PrefixKind::User, PrefixKind::Item] {
            let seq = layout.build(prefix_kind, &user, &items, &instr);
            let prefix_len = match prefix_kind {
                PrefixKind::User => user.len(),
                PrefixKind::Item => items.iter().map(Vec::len).sum(),
            };
            let (head, tail) = seq.split_at(prefix_len);

            set_threads(1);
            let serial_full = model.forward(&seq, None);
            let serial_kv = model.compute_kv(&head);
            let serial_cached = model.forward(&tail, Some(&serial_kv));

            for n in THREAD_COUNTS {
                set_threads(n);
                let par_full = model.forward(&seq, None);
                assert_bits_eq(
                    &par_full.logits,
                    &serial_full.logits,
                    &format!("{prefix_kind} full logits @ {n} threads"),
                );
                assert_bits_eq(
                    par_full.hidden_last(),
                    serial_full.hidden_last(),
                    &format!("{prefix_kind} hidden @ {n} threads"),
                );
                let par_cached = model.forward(&tail, Some(&model.compute_kv(&head)));
                assert_bits_eq(
                    &par_cached.logits,
                    &serial_cached.logits,
                    &format!("{prefix_kind} cached logits @ {n} threads"),
                );
            }
            set_threads(1);
        }
    }
}

/// Parallel `HstuModel::forward` (the pointwise-attention baseline) is
/// bit-identical to serial on both mask schemes.
#[test]
fn hstu_forward_is_bit_identical_across_thread_counts() {
    let (user, items, instr) = build_parts(6, 5, 2);
    // HSTU's pointwise unit needs matched query/KV heads (no GQA).
    let cfg = GrModelConfig {
        query_heads: 2,
        kv_heads: 2,
        ..GrModelConfig::tiny(128)
    };
    let model = HstuModel::random(cfg, 17);
    for scheme in [MaskScheme::NaiveCausal, MaskScheme::Bipartite] {
        let seq = PromptLayout::new(scheme).build(PrefixKind::User, &user, &items, &instr);
        set_threads(1);
        let serial = model.forward(&seq, None);
        for n in THREAD_COUNTS {
            set_threads(n);
            let par = model.forward(&seq, None);
            assert_bits_eq(
                &par.logits,
                &serial.logits,
                &format!("HSTU {scheme:?} logits @ {n} threads"),
            );
        }
        set_threads(1);
    }
}

/// The parallel per-candidate scoring path used by the Table 3 accuracy
/// pipeline returns bit-identical candidate scores at every thread count.
#[test]
fn semantic_scoring_is_bit_identical_across_thread_counts() {
    let world = SemanticWorld::generate(SemanticConfig::test_world());
    let task = world.task(0);
    set_threads(1);
    let serial = world.score(&task, PrefixKind::Item, MaskScheme::Bipartite);
    for n in THREAD_COUNTS {
        set_threads(n);
        let par = world.score(&task, PrefixKind::Item, MaskScheme::Bipartite);
        assert_bits_eq(&par, &serial, &format!("candidate scores @ {n} threads"));
    }
    set_threads(1);
}

fn run_stats_key(s: &RunStats) -> (usize, u64, u64) {
    (s.completed, s.total_tokens, s.reused_tokens)
}

/// A full simulator run and a full threaded-runtime run both report the
/// same `RunStats` regardless of the execution layer's thread count —
/// cache accounting, token totals, and completion counts are functions of
/// the trace and policy, never of scheduling.
#[test]
fn run_stats_are_unchanged_across_thread_counts() {
    let ds = DatasetConfig {
        num_users: 200,
        ..DatasetConfig::games()
    };
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 3), 4);
    let trace = gen.generate(3.0, 30.0);
    let mut cluster = ClusterConfig::a100_4node().with_nodes(2);
    cluster.node.kv_cache_capacity = Bytes::from_gb(20);

    for kind in [SystemKind::UserPrefix, SystemKind::Bat] {
        let cfg = EngineConfig::for_system(kind, ModelConfig::qwen2_1_5b(), cluster.clone(), &ds);

        set_threads(1);
        let serial_sim = ServingEngine::new(cfg.clone()).unwrap().run(&trace);
        let serial_live = ServeRuntime::new(cfg.clone(), ServeOptions::default())
            .unwrap()
            .serve(&trace);

        for n in THREAD_COUNTS {
            set_threads(n);
            let par_sim = ServingEngine::new(cfg.clone()).unwrap().run(&trace);
            assert_eq!(
                run_stats_key(&par_sim),
                run_stats_key(&serial_sim),
                "{} sim stats @ {n} threads",
                kind.label()
            );
            let par_live = ServeRuntime::new(cfg.clone(), ServeOptions::default())
                .unwrap()
                .serve(&trace);
            assert_eq!(
                run_stats_key(&par_live),
                run_stats_key(&serial_live),
                "{} live stats @ {n} threads",
                kind.label()
            );
        }
        set_threads(1);
    }
}
