//! Integration tests of the cache + placement + scheduling stack under the
//! serving engine: cross-crate invariants that no unit test can see.

use bat::experiment::{compare_systems, ComparisonSpec};
use bat::{
    Bytes, ClusterConfig, DatasetConfig, EngineConfig, ItemPlacementPlan, ModelConfig,
    PlacementStrategy, ServingEngine, SystemKind,
};
use bat_sim::{AdmissionKind, PolicyKind};

fn small_cluster(nodes: usize) -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node().with_nodes(nodes);
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

fn spec(ds: DatasetConfig, nodes: usize, secs: f64, rate: f64) -> ComparisonSpec {
    ComparisonSpec {
        model: ModelConfig::qwen2_1_5b(),
        cluster: small_cluster(nodes),
        dataset: ds,
        duration_secs: secs,
        offered_rate: rate,
        seed: 77,
    }
}

/// Token conservation: reused + computed = total, for every system.
#[test]
fn token_accounting_conserves() {
    let spec = spec(DatasetConfig::games(), 2, 6.0, 30.0);
    let all = [
        SystemKind::Recompute,
        SystemKind::UserPrefix,
        SystemKind::ItemPrefix,
        SystemKind::Bat,
    ];
    for stats in compare_systems(&spec, &all) {
        assert_eq!(
            stats.reused_tokens + stats.computed_tokens,
            stats.total_tokens,
            "{}",
            stats.system
        );
        assert!(stats.hit_rate() <= 1.0);
        assert!(stats.computation_savings() <= stats.hit_rate() + 1e-9);
    }
}

/// The serving hierarchy the paper reports everywhere: every caching system
/// computes no more than recomputation, and BAT computes the least.
#[test]
fn serving_hierarchy_holds() {
    let spec = spec(
        DatasetConfig {
            num_users: 500,
            ..DatasetConfig::games()
        },
        2,
        20.0,
        60.0,
    );
    let all = [
        SystemKind::Recompute,
        SystemKind::UserPrefix,
        SystemKind::ItemPrefix,
        SystemKind::Bat,
    ];
    let stats = compare_systems(&spec, &all);
    let (re, up, ip, bat) = (&stats[0], &stats[1], &stats[2], &stats[3]);
    assert!(up.computed_tokens <= re.computed_tokens);
    assert!(ip.computed_tokens <= re.computed_tokens);
    assert!(
        bat.computed_tokens <= up.computed_tokens.min(ip.computed_tokens) + re.computed_tokens / 20,
        "BAT ({}) should compute no more than the better static policy (UP {}, IP {})",
        bat.computed_tokens,
        up.computed_tokens,
        ip.computed_tokens
    );
}

/// Placement strategies and network accounting interact correctly: only
/// sharded placements produce remote traffic, and replication eliminates it.
#[test]
fn placement_controls_network_traffic() {
    let ds = DatasetConfig::games();
    let cluster = small_cluster(4);
    let model = ModelConfig::qwen2_1_5b();
    let base =
        EngineConfig::for_system(SystemKind::ItemPrefix, model.clone(), cluster.clone(), &ds);
    let spec = spec(ds.clone(), 4, 5.0, 30.0);
    let item_kv = model.kv_bytes(ds.avg_item_tokens as u64);

    let replicate = ItemPlacementPlan::new(
        PlacementStrategy::Replicate,
        ds.num_items,
        cluster.num_nodes,
        1.0,
        item_kv,
    );
    let hash = ItemPlacementPlan::new(
        PlacementStrategy::HashShard,
        ds.num_items,
        cluster.num_nodes,
        0.0,
        item_kv,
    );
    let trace = spec.trace();

    let mut engine = ServingEngine::new(base.clone().with_placement(Some(replicate))).unwrap();
    let rep_stats = engine.run(&trace);
    assert_eq!(rep_stats.remote_bytes, Bytes::ZERO);
    assert_eq!(rep_stats.net_secs, 0.0);

    let mut engine = ServingEngine::new(base.with_placement(Some(hash))).unwrap();
    let hash_stats = engine.run(&trace);
    assert!(hash_stats.remote_bytes > Bytes::ZERO);
    assert!(hash_stats.net_secs > 0.0);
    // Same items are cached either way: identical reuse.
    assert_eq!(rep_stats.reused_tokens, hash_stats.reused_tokens);
}

/// Determinism: identical spec → identical stats, end to end.
#[test]
fn end_to_end_determinism() {
    let spec = spec(DatasetConfig::beauty(), 2, 5.0, 25.0);
    let a = compare_systems(&spec, &[SystemKind::Bat]);
    let b = compare_systems(&spec, &[SystemKind::Bat]);
    assert_eq!(a[0].completed, b[0].completed);
    assert_eq!(a[0].reused_tokens, b[0].reused_tokens);
    assert_eq!(a[0].p99_latency_ms, b[0].p99_latency_ms);
    assert_eq!(a[0].remote_bytes, b[0].remote_bytes);
}

/// The admission discipline changes behavior only through the user cache:
/// with an effectively unlimited region both disciplines admit everyone.
#[test]
fn admission_disciplines_agree_with_unbounded_cache() {
    let ds = DatasetConfig {
        num_users: 200,
        ..DatasetConfig::games()
    };
    let spec = spec(ds.clone(), 2, 10.0, 40.0);
    let trace = spec.trace();
    let mut variants = Vec::new();
    for admission in [AdmissionKind::Lru, AdmissionKind::HotnessAware] {
        let cfg = EngineConfig {
            admission,
            policy: PolicyKind::StaticUser,
            ..EngineConfig::for_system(
                SystemKind::UserPrefix,
                spec.model.clone(),
                spec.cluster.clone(),
                &ds,
            )
        }
        .with_user_cache_capacity(Bytes::from_gb(1000));
        let mut engine = ServingEngine::new(cfg).unwrap();
        variants.push(engine.run(&trace).reused_tokens);
    }
    assert_eq!(
        variants[0], variants[1],
        "unbounded cache admits everyone under either discipline"
    );
}

/// Scaling sanity: doubling nodes under saturation roughly doubles QPS.
#[test]
fn node_scaling_is_monotone() {
    let ds = DatasetConfig::games();
    let mut qps = Vec::new();
    for nodes in [1usize, 2, 4] {
        let spec = spec(ds.clone(), nodes, 8.0, 400.0);
        let stats = compare_systems(&spec, &[SystemKind::Bat]);
        qps.push(stats[0].qps());
    }
    assert!(qps[1] > qps[0] * 1.5, "2 nodes ≥ 1.5x of 1 node: {qps:?}");
    assert!(qps[2] > qps[1] * 1.5, "4 nodes ≥ 1.5x of 2 nodes: {qps:?}");
}
