//! Fault-recovery integration: the membership re-planning invariants, the
//! seeded determinism of faulted runs, and the kill-one-of-four
//! availability story from the `ablation_fault_recovery` experiment.

use bat_faults::{ClusterView, FaultEvent, FaultKind, FaultSchedule};
use bat_placement::{DegradedLocation, DegradedPlacement, ItemPlacementPlan, PlacementStrategy};
use bat_sim::{EngineConfig, ServingEngine, SystemKind};
use bat_types::{Bytes, ClusterConfig, DatasetConfig, ItemId, ModelConfig, RankRequest, WorkerId};
use bat_workload::{TraceGenerator, Workload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KV: u64 = 28_672 * 10; // Qwen2-1.5B KV bytes for a 10-token item

/// Replays a seeded random crash/restart sequence through a
/// [`ClusterView`], never killing the last live worker (a validated
/// schedule cannot either). Returns the final view.
fn random_membership(seed: u64, workers: usize, flips: usize) -> ClusterView {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut view = ClusterView::new(workers);
    for step in 0..flips {
        let w = WorkerId::new(rng.gen_range(0..workers) as u64);
        let event = if view.is_alive(w) {
            if view.n_alive() == 1 {
                continue; // never take down the whole cluster
            }
            FaultEvent {
                at_secs: step as f64,
                kind: FaultKind::WorkerCrash(w),
            }
        } else {
            FaultEvent {
                at_secs: step as f64,
                kind: FaultKind::WorkerRestart(w),
            }
        };
        view.apply(&event);
    }
    view
}

proptest! {
    /// After ANY membership-change sequence, the HRCS re-plan (a) never
    /// assigns a live worker more entries than its slot capacity and
    /// (b) leaves every item either reachable on a live worker or
    /// explicitly marked recompute-only — nothing dangles on a corpse.
    #[test]
    fn replan_respects_capacity_and_liveness(
        seed in 0u64..1_000,
        workers in 2usize..8,
        flips in 0usize..12,
        items in 100u64..2_000,
        repl in 0.0f64..0.5,
        spare in 0u64..500,
    ) {
        let view = random_membership(seed, workers, flips);
        let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, items, workers, repl, KV);
        // Budget = nominal per-worker load plus some spare slots, the same
        // shape the planner guarantees (its item region fits by
        // construction); adoption must stay inside the spare.
        let sharded = plan.cached_items() - plan.replicated_items();
        let base_load = plan.replicated_items() + sharded.div_ceil(workers as u64);
        let budget = Bytes::new((base_load + spare) * KV);
        let degraded = DegradedPlacement::new(&plan, view.alive_mask(), budget);

        for &w in degraded.live_workers() {
            prop_assert!(
                degraded.assigned_items(w) <= degraded.capacity_items(),
                "{w} over capacity: {} > {}",
                degraded.assigned_items(w),
                degraded.capacity_items()
            );
        }
        for id in 0..plan.num_items() {
            match degraded.locate(ItemId::new(id)) {
                DegradedLocation::Replica => {
                    prop_assert!(view.n_alive() >= 1 && plan.is_replicated(ItemId::new(id)));
                }
                DegradedLocation::Shard(w) | DegradedLocation::Adopted(w) => {
                    prop_assert!(view.is_alive(w), "item {id} assigned to dead {w}");
                }
                DegradedLocation::RecomputeOnly => {}
            }
        }
    }
}

fn four_node_config(ds: &DatasetConfig) -> EngineConfig {
    let mut cluster = ClusterConfig::a100_4node();
    cluster.node.kv_cache_capacity = Bytes::from_gb(20);
    EngineConfig::for_system(SystemKind::Bat, ModelConfig::qwen2_1_5b(), cluster, ds)
}

fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 7), 9);
    g.generate(secs, rate)
}

/// Same seed + same fault schedule → bit-identical `RunStats` (fault
/// report included) from the simulator, run-to-run.
#[test]
fn faulted_runs_are_bit_identical() {
    let ds = DatasetConfig::games();
    let t = trace(&ds, 5.0, 40.0);
    let schedule = FaultSchedule::random(17, 4, 5.0, 2);
    let run = || {
        let cfg = four_node_config(&ds).with_faults(Some(schedule.clone()));
        let stats = ServingEngine::new(cfg).unwrap().run(&t);
        serde_json::to_string(&stats).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "faulted runs must be deterministic");
}

/// Killing one of four cache workers mid-trace completes every request:
/// surviving replicas and recompute fallbacks absorb the outage, the meta
/// service invalidates the dead worker's entries, and the restarted worker
/// is re-warmed.
#[test]
fn one_of_four_crash_completes_all_requests() {
    let ds = DatasetConfig::games();
    // Dense enough that the user cache holds entries on every partition
    // by the time the crash lands.
    let t = trace(&ds, 7.0, 150.0);
    let schedule = FaultSchedule::single_crash(4, WorkerId::new(1), 3.0, 4.5).unwrap();
    let cfg = four_node_config(&ds).with_faults(Some(schedule));
    let stats = ServingEngine::new(cfg).unwrap().run(&t);

    assert_eq!(stats.completed, t.len(), "no request may be dropped");
    assert_eq!(stats.faults.crashes, 1);
    assert_eq!(stats.faults.restarts, 1);
    assert!(
        stats.faults.invalidated_entries > 0,
        "meta service must invalidate the dead worker's entries"
    );
    assert!(
        stats.faults.rewarmed_items > 0,
        "the returned worker must be re-warmed"
    );
    assert!(stats.hit_rate() > 0.0, "survivors must still serve hits");
}

/// A fault-free schedule is a strict no-op: identical stats to not wiring
/// the fault subsystem at all.
#[test]
fn empty_schedule_changes_nothing() {
    let ds = DatasetConfig::games();
    let t = trace(&ds, 3.0, 30.0);
    let plain = ServingEngine::new(four_node_config(&ds)).unwrap().run(&t);
    let wired = ServingEngine::new(four_node_config(&ds).with_faults(Some(FaultSchedule::none(4))))
        .unwrap()
        .run(&t);
    assert_eq!(plain.reused_tokens, wired.reused_tokens);
    assert_eq!(plain.computed_tokens, wired.computed_tokens);
    assert!(wired.faults.is_quiet());
}

/// Schedules sized for the wrong cluster are rejected up front.
#[test]
fn mismatched_schedule_is_rejected() {
    let ds = DatasetConfig::games();
    let cfg = four_node_config(&ds).with_faults(Some(FaultSchedule::none(3)));
    assert!(ServingEngine::new(cfg).is_err());
}
