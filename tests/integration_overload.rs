//! Overload control plane integration: the SLO-aware admission path is a
//! deterministic function of the trace and the fault schedule — never of
//! the execution layer's thread count — and its conservation law holds
//! when bursts, stragglers, and slow links all land in the same run.
//!
//! Thread counts are flipped with [`bat::exec::set_threads`], the same
//! runtime override `batctl --threads` uses (see
//! `integration_parallel_determinism.rs` for why process-global flipping
//! is the strongest form of the contract).

use bat::exec::set_threads;
use bat::{
    BatError, Bytes, ClusterConfig, DatasetConfig, EngineConfig, FaultEvent, FaultKind,
    FaultSchedule, ModelConfig, OverloadConfig, OverloadController, Priority, RankRequest,
    RejectReason, ServeOptions, ServeRuntime, ServingEngine, SloBudget, SystemKind, WorkerId,
};
use bat_workload::{TraceGenerator, Workload};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node();
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

/// A steady trace with a 3x burst in the middle, all requests carrying
/// deadlines. The generator is resumable, so consecutive `generate` calls
/// append segments on one continuous timeline.
fn burst_trace(ds: &DatasetConfig) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 21), 22);
    g.set_slo(SloBudget::with_deadline(0.5).at_priority(Priority::Normal));
    let mut trace = g.generate(1.0, 40.0);
    g.set_slo(SloBudget::with_deadline(0.5).at_priority(Priority::Low));
    trace.extend(g.generate(1.0, 120.0));
    g.set_slo(SloBudget::with_deadline(0.5).at_priority(Priority::Normal));
    trace.extend(g.generate(1.0, 40.0));
    trace
}

/// SlowLink against worker 1 (a hot cache holder) for the burst window,
/// healed afterwards.
fn slow_link_schedule() -> FaultSchedule {
    FaultSchedule::new(
        4,
        vec![
            FaultEvent {
                at_secs: 0.9,
                kind: FaultKind::SlowLink {
                    a: WorkerId::new(0),
                    b: WorkerId::new(1),
                    factor: 8.0,
                },
            },
            FaultEvent {
                at_secs: 2.2,
                kind: FaultKind::SlowLink {
                    a: WorkerId::new(0),
                    b: WorkerId::new(1),
                    factor: 1.0,
                },
            },
        ],
    )
    .expect("schedule is valid")
}

fn overload_config(ds: &DatasetConfig) -> EngineConfig {
    EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        small_cluster(),
        ds,
    )
    .with_faults(Some(slow_link_schedule()))
    .with_straggler(Some((1, 5.0)))
    .with_slo(Some(OverloadConfig::default()))
}

/// Same seed + same schedule ⇒ bit-identical `RunStats` — fault report,
/// SLO ledger, and every float — no matter how many threads the execution
/// layer runs, and no matter how often the run repeats.
#[test]
fn overloaded_sim_is_bit_identical_across_thread_counts() {
    let ds = DatasetConfig::games();
    let trace = burst_trace(&ds);
    let run = || {
        let stats = ServingEngine::new(overload_config(&ds))
            .unwrap()
            .run(&trace);
        serde_json::to_string(&stats).unwrap()
    };

    set_threads(1);
    let serial = run();
    assert!(serial.contains("\"slo\""), "SLO ledger must serialize");
    for n in THREAD_COUNTS {
        set_threads(n);
        assert_eq!(run(), serial, "sim stats diverged @ {n} threads");
    }
    set_threads(1);

    let stats = ServingEngine::new(overload_config(&ds))
        .unwrap()
        .run(&trace);
    assert_eq!(stats.slo.submitted, trace.len() as u64);
    assert!(
        stats.slo.conserved(),
        "conservation violated: {:?}",
        stats.slo
    );
    assert!(stats.faults.slow_links > 0, "the SlowLink must register");
}

/// The threaded runtime's admission decisions ride nominal arrival times,
/// so its accept/reject split matches the simulator exactly; wall-clock
/// sweeps may differ, but the conservation law never breaks.
#[test]
fn serve_matches_sim_admission_and_conserves() {
    let ds = DatasetConfig::games();
    let trace = burst_trace(&ds);
    let sim = ServingEngine::new(overload_config(&ds))
        .unwrap()
        .run(&trace);
    let live = ServeRuntime::new(overload_config(&ds), ServeOptions::default())
        .unwrap()
        .serve(&trace);

    assert_eq!(live.slo.submitted, trace.len() as u64);
    assert!(
        live.slo.conserved(),
        "conservation violated: {:?}",
        live.slo
    );
    assert_eq!(
        live.slo.rejected(),
        sim.slo.rejected(),
        "admission is a nominal-time decision: sim {:?} vs live {:?}",
        sim.slo,
        live.slo
    );
    assert_eq!(live.slo.accepted, sim.slo.accepted);
}

/// The controller's typed errors at the facade level: every shed point
/// speaks `BatError`, not a bare bool.
#[test]
fn admission_errors_are_typed() {
    let mut ctl = OverloadController::new(OverloadConfig::default(), 1.0);
    // Saturate the virtual backlog far past the bound.
    for _ in 0..200 {
        let _ = ctl.on_arrival(0.0, 0.05, None, Priority::Normal);
    }
    let denied = ctl
        .on_arrival(0.0, 0.05, None, Priority::Normal)
        .into_result();
    match denied {
        Err(BatError::Rejected {
            reason: RejectReason::QueueFull,
        }) => {}
        other => panic!("expected typed queue-full rejection, got {other:?}"),
    }
    // An infeasible deadline is rejected with its own reason even when the
    // queue has room.
    let mut fresh = OverloadController::new(OverloadConfig::default(), 1.0);
    let infeasible = fresh
        .on_arrival(0.0, 0.5, Some(0.01), Priority::High)
        .into_result();
    match infeasible {
        Err(BatError::Rejected {
            reason: RejectReason::DeadlineInfeasible,
        }) => {}
        other => panic!("expected typed infeasible rejection, got {other:?}"),
    }
}
