//! End-to-end integration: the full pipeline from workload synthesis
//! through both serving stacks, plus the accuracy pipeline through the real
//! transformer — the flows the examples and harnesses rely on.

use bat::experiment::{accuracy_rows, compare_systems, ComparisonSpec};
use bat::{
    Bytes, ClusterConfig, DatasetConfig, MaskScheme, ModelConfig, PrefixKind, SemanticConfig,
    SemanticWorld, ServeOptions, ServeRuntime, SystemKind,
};
use bat_sim::{EngineConfig, ServingEngine};
use bat_workload::{TraceGenerator, Workload};

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node().with_nodes(2);
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

/// The quickstart flow: build spec → compare systems → sane results.
#[test]
fn quickstart_flow() {
    let spec = ComparisonSpec {
        model: ModelConfig::qwen2_1_5b(),
        cluster: small_cluster(),
        dataset: DatasetConfig::games(),
        duration_secs: 5.0,
        offered_rate: 40.0,
        seed: 42,
    };
    let stats = compare_systems(
        &spec,
        &[
            SystemKind::Recompute,
            SystemKind::UserPrefix,
            SystemKind::Bat,
        ],
    );
    let n = spec.trace().len();
    assert!(n > 50);
    for s in &stats {
        assert_eq!(s.completed, n);
        assert!(s.qps() > 0.0);
    }
    assert!(stats[2].hit_rate() > stats[0].hit_rate());
}

/// The threaded runtime and the simulator agree on cache accounting for a
/// static policy (exact) and complete the same work for the adaptive one.
#[test]
fn runtime_and_simulator_agree() {
    let ds = DatasetConfig {
        num_users: 400,
        ..DatasetConfig::games()
    };
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 3), 4);
    let trace = gen.generate(4.0, 40.0);

    for kind in [SystemKind::UserPrefix, SystemKind::Bat] {
        let cfg = EngineConfig::for_system(kind, ModelConfig::qwen2_1_5b(), small_cluster(), &ds);
        let mut sim = ServingEngine::new(cfg.clone()).unwrap();
        let sim_stats = sim.run(&trace);
        let runtime = ServeRuntime::new(cfg, ServeOptions::default()).unwrap();
        let live = runtime.serve(&trace);
        assert_eq!(live.completed, sim_stats.completed, "{}", kind.label());
        assert_eq!(live.total_tokens, sim_stats.total_tokens);
        if kind == SystemKind::UserPrefix {
            // LRU residency is clock-independent: exact agreement.
            assert_eq!(live.reused_tokens, sim_stats.reused_tokens);
        } else {
            // The hotness estimator sees slightly different clocks; the
            // accounting must still be close.
            let drift = (live.reused_tokens as f64 - sim_stats.reused_tokens as f64).abs()
                / sim_stats.total_tokens as f64;
            assert!(drift < 0.05, "reuse drift {drift}");
        }
    }
}

/// The Table 3 accuracy pipeline: semantic world → real transformer →
/// ranking metrics, for robust and order-sensitive models, with PIC.
#[test]
fn accuracy_pipeline_shapes() {
    let n = 15;
    let robust = accuracy_rows(SemanticConfig::test_world(), n, None);
    assert_eq!(robust.len(), 2);
    let up = robust[0].metrics.recall_at(10);
    let ip = robust[1].metrics.recall_at(10);
    assert!(up > 0.4, "robust UP quality collapsed: {up}");
    assert!(
        (up - ip).abs() < 0.35,
        "robust UP/IP gap too wide: {up} vs {ip}"
    );

    let sensitive = accuracy_rows(SemanticConfig::test_world().order_biased(), n, Some(0.2));
    assert_eq!(sensitive.len(), 3);
    assert!(sensitive[2].strategy.starts_with("IP+PIC"));
    // All metric values remain valid probabilities.
    for row in robust.iter().chain(&sensitive) {
        assert!(row
            .metrics
            .table3_row()
            .iter()
            .all(|v| (0.0..=1.0).contains(v)));
    }
}

/// Bipartite item caching is exact end-to-end through the semantic world:
/// 0%-recompute PIC (pure cache reuse) equals full IP recomputation.
#[test]
fn semantic_world_cache_reuse_is_exact() {
    let world = SemanticWorld::generate(SemanticConfig::test_world());
    for user in 0..5 {
        let task = world.task(user);
        let full = world.score(&task, PrefixKind::Item, MaskScheme::Bipartite);
        let cached = world.score_with_pic(&task, 0.0);
        let diff = full
            .iter()
            .zip(&cached)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "user {user}: diff {diff}");
    }
}

/// A persisted trace replays to identical serving results: the paper's
/// replay-the-same-log methodology survives a round trip through disk.
#[test]
fn persisted_trace_replays_identically() {
    let ds = DatasetConfig {
        num_users: 300,
        ..DatasetConfig::games()
    };
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 9), 10);
    let trace = gen.generate(4.0, 30.0);
    let path = std::env::temp_dir().join(format!("bat_e2e_trace_{}.jsonl", std::process::id()));
    bat_workload::save_trace(&path, &trace).unwrap();
    let loaded = bat_workload::load_trace(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cfg = EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        small_cluster(),
        &ds,
    );
    let a = ServingEngine::new(cfg.clone()).unwrap().run(&trace);
    let b = ServingEngine::new(cfg).unwrap().run(&loaded);
    assert_eq!(a.reused_tokens, b.reused_tokens);
    assert_eq!(a.computed_tokens, b.computed_tokens);
    assert_eq!(a.p99_latency_ms, b.p99_latency_ms);
    assert_eq!(a.remote_bytes, b.remote_bytes);
}

/// Workload statistics drive the serving results: a dataset with heavier
/// item skew yields a higher IP hit rate.
#[test]
fn workload_skew_propagates_to_serving() {
    let mut flat = DatasetConfig::games();
    flat.item_zipf_exponent = 0.0;
    flat.num_items = 500_000; // far beyond the item-region capacity
    let mut skewed = flat.clone();
    skewed.item_zipf_exponent = 1.2;

    let run = |ds: DatasetConfig| {
        let spec = ComparisonSpec {
            model: ModelConfig::qwen2_1_5b(),
            cluster: small_cluster(),
            dataset: ds,
            duration_secs: 5.0,
            offered_rate: 30.0,
            seed: 5,
        };
        compare_systems(&spec, &[SystemKind::ItemPrefix])[0].hit_rate()
    };
    let h_flat = run(flat);
    let h_skewed = run(skewed);
    assert!(
        h_skewed > h_flat,
        "skewed popularity should cache better: {h_skewed} vs {h_flat}"
    );
}
