//! Equivalence suite for the cache-resident packed KV layout: the forward
//! that splices a stored (transposed-packed) prefix zero-copy must be
//! **bit-identical** to the pre-change data movement (repack-per-layer)
//! and to itself at any thread count, and must match the seed's serial
//! per-token reference at the oracle tolerance PR 2 established (the
//! batched kernels reorder float accumulation, so the serial oracle is a
//! tolerance contract, not a bitwise one) — over random prefix/suffix
//! splits, both mask schemes, and both MHA- and GQA-shaped configurations.

use bat::exec::set_threads;
use bat::{GrModel, GrModelConfig, MaskScheme, PrefixKind, PromptLayout, Weights};
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn build_parts(
    user_len: usize,
    n_items: usize,
    item_len: usize,
) -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
    let user: Vec<u32> = (0..user_len as u32).map(|i| 30 + i).collect();
    let items: Vec<Vec<u32>> = (0..n_items as u32)
        .map(|i| {
            (0..item_len as u32)
                .map(|j| 2 + i * item_len as u32 + j)
                .collect()
        })
        .collect();
    (user, items, vec![0, 1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed-prefix forward ≡ the pre-change repack forward bitwise, and
    /// ≡ the serial reference oracle at tolerance, for a prefix split at an
    /// arbitrary token boundary (not just block edges).
    #[test]
    fn packed_prefix_forward_matches_reference_and_repack(
        user_len in 1usize..7,
        n_items in 1usize..5,
        item_len in 1usize..4,
        seed in 0u64..u64::MAX,
        naive in proptest::bool::ANY,
        gqa_deep in proptest::bool::ANY,
        user_first in proptest::bool::ANY,
        split_frac in 0.0f64..1.0,
    ) {
        set_threads(1);
        let scheme = if naive { MaskScheme::NaiveCausal } else { MaskScheme::Bipartite };
        let cfg = if gqa_deep { GrModelConfig::small(64) } else { GrModelConfig::tiny(64) };
        let model = GrModel::new(Weights::random(cfg, seed));
        let (user, items, instr) = build_parts(user_len, n_items, item_len);
        let kind = if user_first { PrefixKind::User } else { PrefixKind::Item };
        let seq = PromptLayout::new(scheme).build(kind, &user, &items, &instr);
        // Any split leaving at least one suffix token is fair game.
        let cut = 1 + ((seq.len() - 2) as f64 * split_frac) as usize;
        let (head, tail) = seq.split_at(cut);
        let kv = model.compute_kv(&head);

        let packed = model.forward(&tail, Some(&kv));

        // Seed oracle: same contract (and tolerances) as the PR 2 oracle
        // test, extended to arbitrary splits / schemes / head layouts.
        let reference = model.forward_reference(&tail, Some(&kv));
        prop_assert!(max_diff(&packed.logits, &reference.logits) < 1e-3);
        prop_assert!(max_diff(packed.hidden_last(), reference.hidden_last()) < 1e-4);
        prop_assert!(packed.suffix_kv.max_abs_diff(&reference.suffix_kv).unwrap() < 1e-5);

        // Pre-change data movement: bitwise. The zero-copy splice must not
        // perturb a single ULP relative to repacking every layer.
        let repacked = model.forward_prefix_repack_baseline(&tail, Some(&kv));
        prop_assert_eq!(bits(&packed.logits), bits(&repacked.logits));
        prop_assert_eq!(
            bits(packed.hidden_last()),
            bits(repacked.hidden_last())
        );
        prop_assert_eq!(&packed.hidden_all, &repacked.hidden_all);
        prop_assert_eq!(&packed.suffix_kv, &repacked.suffix_kv);
    }
}

/// The packed-prefix forward is bit-identical across thread counts — the
/// determinism contract extends to the zero-copy splicing path.
#[test]
fn packed_prefix_forward_deterministic_across_threads() {
    let model = GrModel::new(Weights::random(GrModelConfig::small(96), 17));
    let (user, items, instr) = build_parts(8, 6, 3);
    for kind in [PrefixKind::User, PrefixKind::Item] {
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(kind, &user, &items, &instr);
        let prefix_len = match kind {
            PrefixKind::User => user.len(),
            PrefixKind::Item => items.iter().map(Vec::len).sum(),
        };
        let (head, tail) = seq.split_at(prefix_len);

        set_threads(1);
        let kv = model.compute_kv(&head);
        let serial = model.forward(&tail, Some(&kv));
        for n in [2usize, 4, 8] {
            set_threads(n);
            let par = model.forward(&tail, Some(&model.compute_kv(&head)));
            assert_eq!(
                bits(&serial.logits),
                bits(&par.logits),
                "{kind} logits diverged at {n} threads"
            );
            assert_eq!(
                &serial.hidden_all, &par.hidden_all,
                "{kind} hidden states diverged at {n} threads"
            );
            assert_eq!(
                &serial.suffix_kv, &par.suffix_kv,
                "{kind} suffix KV diverged at {n} threads"
            );
        }
        set_threads(1);
    }
}
