//! Pins the zero-allocation steady state: after one warmup call, a
//! same-shaped [`bat::GrModel::forward_with`] through a reused
//! [`bat::ForwardWorkspace`] must not touch the heap at all. Every scratch
//! buffer — workspace matrices, mask rows, suffix KV planes, attention
//! gather scratch — is pre-sized and reused in place.
//!
//! The whole binary holds exactly one `#[test]` so no concurrent test can
//! allocate while the counting window is open.

use bat::exec::set_threads;
use bat::{
    ForwardWorkspace, GrModel, GrModelConfig, MaskScheme, PrefixKind, PromptLayout, Weights,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Wraps the system allocator, counting every heap operation (alloc,
/// realloc, alloc_zeroed) that lands while the window is open.
struct CountingAlloc;

static WINDOW_OPEN: AtomicBool = AtomicBool::new(false);
static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if WINDOW_OPEN.load(Ordering::Relaxed) {
            HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if WINDOW_OPEN.load(Ordering::Relaxed) {
            HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if WINDOW_OPEN.load(Ordering::Relaxed) {
            HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_forward_makes_zero_allocations() {
    set_threads(1);
    let model = GrModel::new(Weights::random(GrModelConfig::small(128), 7));
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    let user: Vec<u32> = (30..42).collect();
    let items: Vec<Vec<u32>> = (0..8u32).map(|i| vec![2 + 3 * i, 3 + 3 * i]).collect();
    let seq = layout.build(PrefixKind::Item, &user, &items, &[0, 1]);
    let item_block: usize = items.iter().map(Vec::len).sum();
    let (head, tail) = seq.split_at(item_block);
    let prefix = model.compute_kv(&head);

    // Warm the workspace and the thread-local attention scratch with two
    // same-shaped calls (the second proves shapes have settled).
    let mut ws = ForwardWorkspace::new();
    model.forward_with(&tail, Some(&prefix), &mut ws);
    let warm_logits = model
        .forward_with(&tail, Some(&prefix), &mut ws)
        .logits
        .clone();

    // Counting window: one more same-shaped forward.
    HEAP_OPS.store(0, Ordering::SeqCst);
    WINDOW_OPEN.store(true, Ordering::SeqCst);
    model.forward_with(&tail, Some(&prefix), &mut ws);
    WINDOW_OPEN.store(false, Ordering::SeqCst);
    let ops = HEAP_OPS.load(Ordering::SeqCst);

    assert_eq!(
        ops, 0,
        "steady-state forward_with must not touch the heap, saw {ops} allocations"
    );
    // And it was a real forward: outputs match the warmup pass bitwise.
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&warm_logits), bits(&ws.output().logits));
}
