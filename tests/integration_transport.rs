//! Transport-layer integration: the serving runtime must produce
//! **bitwise-identical** deterministic statistics no matter how its frames
//! travel — in-process channels (the oracle), Unix-domain sockets between
//! threads, TCP loopback, or Unix sockets to **child OS processes** — and
//! no matter whether workers crash and rejoin along the way.
//!
//! The pin is [`RunStats::digest`]: an FNV-64 over every planner-side
//! field (token accounting, cache split, priced cost sums, admission
//! counters, the fault report). Wall-clock observations are excluded; the
//! planner runs on nominal arrival times, so any divergence between
//! backends means a codec, framing, ordering, or re-dispatch bug — the
//! exact classes of bug a byte-level transport can introduce and the
//! channel oracle cannot.
//!
//! Child-process mechanics: `--processes` re-executes the current binary
//! (this test binary) with `[test_name, "--exact", ...]`; the re-entered
//! test function calls [`bat::maybe_child_worker`] first, which diverts
//! the process into the worker loop and exits before the test harness
//! proper runs anything. A scheduled `WorkerCrash` is a real SIGKILL; a
//! `WorkerRestart` spawns a fresh process that rejoins over the same
//! listener.

use bat::{
    Bytes, ClusterConfig, DatasetConfig, EngineConfig, FaultSchedule, ModelConfig, RankRequest,
    RunStats, ServeOptions, ServeRuntime, SystemKind, TransportKind, WorkerId,
};
use bat_workload::{TraceGenerator, Workload};

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node();
    c.num_nodes = 2;
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

fn config(ds: &DatasetConfig) -> EngineConfig {
    EngineConfig::for_system(
        SystemKind::UserPrefix,
        ModelConfig::qwen2_1_5b(),
        small_cluster(),
        ds,
    )
}

fn dataset() -> DatasetConfig {
    DatasetConfig {
        num_users: 300,
        ..DatasetConfig::games()
    }
}

fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 31), 32);
    g.generate(secs, rate)
}

/// A worker crash at 1.0s and its rejoin at 2.5s, on worker 1 of 2.
fn kill_schedule() -> FaultSchedule {
    FaultSchedule::single_crash(2, WorkerId::new(1), 1.0, 2.5).unwrap()
}

fn run(
    cfg: EngineConfig,
    t: &[RankRequest],
    transport: TransportKind,
    processes: bool,
    child_test: &str,
) -> RunStats {
    let opts = ServeOptions {
        transport,
        processes,
        child_args: if processes {
            vec![
                child_test.to_string(),
                "--exact".to_string(),
                "--test-threads=1".to_string(),
                "--quiet".to_string(),
            ]
        } else {
            Vec::new()
        },
        ..ServeOptions::default()
    };
    ServeRuntime::new(cfg, opts).unwrap().serve(t)
}

fn assert_same_digest(oracle: &RunStats, candidate: &RunStats, what: &str) {
    // Field-level asserts first: a digest mismatch alone says nothing
    // about *which* counter diverged.
    assert_eq!(candidate.completed, oracle.completed, "{what}: completed");
    assert_eq!(
        candidate.total_tokens, oracle.total_tokens,
        "{what}: total_tokens"
    );
    assert_eq!(
        candidate.reused_tokens, oracle.reused_tokens,
        "{what}: reused_tokens"
    );
    assert_eq!(
        candidate.computed_tokens, oracle.computed_tokens,
        "{what}: computed_tokens"
    );
    assert_eq!(
        candidate.remote_bytes, oracle.remote_bytes,
        "{what}: remote_bytes"
    );
    assert_eq!(candidate.faults, oracle.faults, "{what}: fault report");
    assert_eq!(
        candidate.digest(),
        oracle.digest(),
        "{what}: full planner digest"
    );
}

#[test]
fn socket_backends_match_channel_oracle() {
    bat::maybe_child_worker();
    let ds = dataset();
    let t = trace(&ds, 3.0, 40.0);
    let oracle = run(config(&ds), &t, TransportKind::Channel, false, "");
    assert_eq!(oracle.completed, t.len());

    let uds = run(config(&ds), &t, TransportKind::Uds, false, "");
    assert_same_digest(&oracle, &uds, "uds threads");

    let tcp = run(config(&ds), &t, TransportKind::Tcp, false, "");
    assert_same_digest(&oracle, &tcp, "tcp threads");
}

#[test]
fn uds_matches_channel_under_worker_kill() {
    bat::maybe_child_worker();
    let ds = dataset();
    let t = trace(&ds, 4.0, 40.0);
    let cfg = || config(&ds).with_faults(Some(kill_schedule()));
    let oracle = run(cfg(), &t, TransportKind::Channel, false, "");
    assert_eq!(oracle.completed, t.len(), "faults must never drop work");
    assert!(!oracle.faults.is_quiet(), "the crash must be observed");

    let uds = run(cfg(), &t, TransportKind::Uds, false, "");
    assert_same_digest(&oracle, &uds, "uds threads under worker kill");
}

#[test]
fn child_processes_match_channel_oracle() {
    bat::maybe_child_worker();
    let ds = dataset();
    let t = trace(&ds, 3.0, 40.0);
    let oracle = run(config(&ds), &t, TransportKind::Channel, false, "");
    let procs = run(
        config(&ds),
        &t,
        TransportKind::Uds,
        true,
        "child_processes_match_channel_oracle",
    );
    assert_eq!(procs.completed, t.len());
    assert_same_digest(&oracle, &procs, "uds child processes");
}

#[test]
fn child_processes_survive_sigkill_and_match_oracle() {
    bat::maybe_child_worker();
    let ds = dataset();
    let t = trace(&ds, 4.0, 40.0);
    let cfg = || config(&ds).with_faults(Some(kill_schedule()));
    let oracle = run(cfg(), &t, TransportKind::Channel, false, "");
    assert_eq!(oracle.completed, t.len());

    // The crash here is a real SIGKILL of a real OS process; everything
    // the dead worker never acknowledged is re-dispatched, and the
    // restart is a fresh process rejoining over the same listener.
    let procs = run(
        cfg(),
        &t,
        TransportKind::Uds,
        true,
        "child_processes_survive_sigkill_and_match_oracle",
    );
    assert_eq!(
        procs.completed,
        t.len(),
        "a SIGKILLed worker must not lose work"
    );
    assert!(!procs.faults.is_quiet());
    assert_same_digest(&oracle, &procs, "uds child processes under SIGKILL");
}

#[test]
fn repeated_runs_are_reproducible() {
    bat::maybe_child_worker();
    // The digest is only a useful cross-transport pin if it is stable
    // run-to-run on one transport first.
    let ds = dataset();
    let t = trace(&ds, 2.0, 40.0);
    let a = run(config(&ds), &t, TransportKind::Channel, false, "");
    let b = run(config(&ds), &t, TransportKind::Channel, false, "");
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a, b.clone_with_span(&a));
}

/// `RunStats` equality is bitwise including wall-clock fields; helper to
/// compare everything except the fields documented as nondeterministic.
trait CloneWithSpan {
    fn clone_with_span(&self, from: &RunStats) -> RunStats;
}

impl CloneWithSpan for RunStats {
    fn clone_with_span(&self, from: &RunStats) -> RunStats {
        RunStats {
            span_secs: from.span_secs,
            mean_latency_ms: from.mean_latency_ms,
            p50_latency_ms: from.p50_latency_ms,
            p90_latency_ms: from.p90_latency_ms,
            p99_latency_ms: from.p99_latency_ms,
            ..self.clone()
        }
    }
}
