//! Fault injection on real threads: killing a cache worker mid-trace.
//!
//! Attaches a seeded [`FaultSchedule`] to the engine config, then serves a
//! live trace on the `bat-serve` runtime: the fault supervisor really stops
//! the victim's worker thread at the crash point and respawns it at the
//! restart point. The scheduler keeps routing around the outage (surviving
//! HRCS replicas for hot items, recompute fallback for cold-shard misses),
//! so every request still completes. The same schedule then drives the
//! discrete-event simulator, and the fault accounting matches exactly —
//! both stacks advance the planner's fault cursor on nominal trace time.
//!
//! Run with:
//! ```text
//! cargo run --release -p bat --example fault_injection
//! ```

use bat::{
    ClusterConfig, DatasetConfig, EngineConfig, FaultSchedule, ModelConfig, ServeOptions,
    ServeRuntime, ServingEngine, SystemKind, TraceGenerator, WorkerId, Workload,
};

fn main() {
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let dataset = DatasetConfig::games();

    let mut gen = TraceGenerator::new(Workload::new(dataset.clone(), 11), 17);
    let trace = gen.generate(8.0, 120.0);

    // Worker 1 crashes a quarter of the way in and returns at the midpoint.
    let schedule = FaultSchedule::single_crash(cluster.num_nodes, WorkerId::new(1), 2.0, 4.0)
        .expect("crash/restart times are ordered and in range");
    println!(
        "Serving {} Games requests on {} worker threads; schedule:",
        trace.len(),
        cluster.num_nodes
    );
    for ev in schedule.events() {
        println!("  t={:>5.1}s  {:?}", ev.at_secs, ev.kind);
    }

    let mut cfg = EngineConfig::for_system(SystemKind::Bat, model, cluster, &dataset);
    cfg.faults = Some(schedule);

    let runtime = ServeRuntime::new(cfg.clone(), ServeOptions::default())
        .expect("preset configuration validates");
    let live = runtime.serve(&trace);

    println!("\nthreaded runtime (thread really killed and respawned):");
    println!("  completed          {}/{}", live.completed, trace.len());
    println!("  cache hit rate     {:.3}", live.hit_rate());
    println!(
        "  crashes/restarts   {}/{}",
        live.faults.crashes, live.faults.restarts
    );
    println!("  entries invalidated {}", live.faults.invalidated_entries);
    println!("  recompute fallbacks {}", live.faults.recompute_fallbacks);
    println!("  items re-warmed    {}", live.faults.rewarmed_items);

    let mut engine = ServingEngine::new(cfg).expect("same config");
    let sim = engine.run(&trace);
    println!("\ndiscrete-event simulator (same trace, same schedule):");
    println!("  completed          {}/{}", sim.completed, trace.len());
    println!("  cache hit rate     {:.3}", sim.hit_rate());

    assert_eq!(live.completed, trace.len(), "faults never drop requests");
    assert_eq!(
        live.faults, sim.faults,
        "fault accounting is planner-owned, so both stacks agree bit-for-bit"
    );
    println!("\nfault accounting identical across both stacks ✓");
}
