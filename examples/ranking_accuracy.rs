//! Ranking-accuracy demo: Bipartite Attention on a real transformer.
//!
//! Generates a planted-preference semantic world, runs the actual
//! transformer forward pass under both prompt orderings, and shows
//!
//! 1. UP vs IP ranking metrics for an order-robust model (they match),
//! 2. the degradation of an order-sensitive model under IP, and
//! 3. the CacheBlend-style PIC repair pass narrowing that gap (§4.2/§6.3);
//! 4. the *exactness* of item-KV reuse: scores from cached item prefixes
//!    are identical to full recomputation.
//!
//! Run with:
//! ```text
//! cargo run --release -p bat --example ranking_accuracy
//! ```

use bat::{rank_of, MaskScheme, PrefixKind, RankingMetrics, SemanticConfig, SemanticWorld};

fn report(label: &str, m: &RankingMetrics) {
    let row = m.table3_row();
    println!(
        "{label:<22} R@10={:.3}  MRR@10={:.3}  NDCG@10={:.3}  R@5={:.3}",
        row[0], row[1], row[2], row[3]
    );
}

fn main() {
    let n_users = 40;

    println!("== Order-robust GR (sharp routing) ==");
    let world = SemanticWorld::generate(SemanticConfig::table3_world(7));
    let up = world.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, n_users);
    let ip = world.eval_ranks(PrefixKind::Item, MaskScheme::Bipartite, n_users);
    report("User-as-prefix", &RankingMetrics::from_ranks(&up));
    report("Item-as-prefix", &RankingMetrics::from_ranks(&ip));

    println!("\n== Order-sensitive GR (weak routing, §4.2) ==");
    let sensitive = SemanticWorld::generate(SemanticConfig::table3_world(7).order_biased());
    let up = sensitive.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, n_users);
    let ip = sensitive.eval_ranks(PrefixKind::Item, MaskScheme::Bipartite, n_users);
    report("User-as-prefix", &RankingMetrics::from_ranks(&up));
    report("Item-as-prefix", &RankingMetrics::from_ranks(&ip));

    // PIC: selectively recompute the highest-drift item tokens with the
    // user context visible.
    let pic_ranks: Vec<usize> = (0..n_users)
        .map(|u| {
            let task = sensitive.task(u);
            rank_of(&sensitive.score_with_pic(&task, 0.15), task.truth_pos)
        })
        .collect();
    report(
        "Item-as-prefix + PIC",
        &RankingMetrics::from_ranks(&pic_ranks),
    );

    println!("\n== Exactness of item-prefix cache reuse ==");
    // Score one task with the full prompt, then again with every item's KV
    // served from a standalone (shareable) cache entry.
    let task = world.task(0);
    let full = world.score(&task, PrefixKind::Item, MaskScheme::Bipartite);
    let cached = world.score_with_pic(&task, 0.0); // 0% recompute = pure cache
    let max_diff = full
        .iter()
        .zip(&cached)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |score(full recompute) − score(cached item prefixes)| = {max_diff:.2e}");
    assert!(max_diff < 1e-4, "bipartite item caches must be exact");
    println!("Bipartite masks + per-item position reset make item KV entries");
    println!("context-independent, so sharing them across users is lossless.");
}
