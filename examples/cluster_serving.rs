//! Cluster serving on real threads: the `bat-serve` runtime.
//!
//! Runs the full BAT pipeline — scheduler thread, per-node inference-worker
//! threads, shared cache meta service — over a live trace, with GPU kernel
//! time simulated by the cost model (time-scaled so the demo finishes in
//! seconds). Then cross-checks the cache accounting against the
//! discrete-event simulator: both stacks drive the same request planner, so
//! token accounting matches exactly.
//!
//! Run with:
//! ```text
//! cargo run --release -p bat --example cluster_serving
//! ```

use bat::{
    ClusterConfig, DatasetConfig, EngineConfig, ModelConfig, ServeOptions, ServeRuntime,
    ServingEngine, SystemKind, TraceGenerator, Workload,
};

fn main() {
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let dataset = DatasetConfig::books();

    let mut gen = TraceGenerator::new(Workload::new(dataset.clone(), 11), 17);
    let trace = gen.generate(30.0, 120.0);
    println!(
        "Serving {} Books requests on {} worker threads (time scale 1:1000)...",
        trace.len(),
        cluster.num_nodes
    );

    let cfg = EngineConfig::for_system(SystemKind::Bat, model, cluster, &dataset);
    let runtime = ServeRuntime::new(cfg.clone(), ServeOptions::default())
        .expect("preset configuration validates");
    let live = runtime.serve(&trace);

    println!("\nthreaded runtime:");
    println!("  completed        {}", live.completed);
    println!("  cache hit rate   {:.3}", live.hit_rate());
    println!("  UP share         {:.3}", live.up_share());
    println!("  P99 latency      {:.1} ms (virtual)", live.p99_latency_ms);

    let mut engine = ServingEngine::new(cfg).expect("same config");
    let sim = engine.run(&trace);
    println!("\ndiscrete-event simulator (same trace, same planner):");
    println!("  completed        {}", sim.completed);
    println!("  cache hit rate   {:.3}", sim.hit_rate());
    println!("  UP share         {:.3}", sim.up_share());

    println!(
        "\ntoken accounting: runtime reused {} vs simulator {} ({} total)",
        live.reused_tokens, sim.reused_tokens, sim.total_tokens
    );
    let drift = (live.reused_tokens as f64 - sim.reused_tokens as f64).abs()
        / sim.total_tokens.max(1) as f64;
    println!("relative drift: {drift:.5} (clock jitter only; 0 for static policies)");
}
