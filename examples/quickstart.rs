//! Quickstart: compare the four serving systems on one workload.
//!
//! Builds a scaled-down Games deployment (2 nodes), replays the same
//! request trace through Recompute / User-as-prefix / Item-as-prefix / BAT,
//! and prints throughput, cache hit rate and computation savings.
//!
//! Run with:
//! ```text
//! cargo run --release -p bat --example quickstart
//! ```

use bat::experiment::{compare_systems, saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, ModelConfig, SystemKind};

fn main() {
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node().with_nodes(2);
    let dataset = DatasetConfig::games();

    // Offer enough load to saturate the cluster so completion rate measures
    // capacity (Figure 5's methodology).
    let offered = saturation_offered_rate(&model, &cluster, &dataset, 6.0);
    let spec = ComparisonSpec {
        model,
        cluster,
        dataset,
        duration_secs: 60.0,
        offered_rate: offered,
        seed: 42,
    };

    println!("BAT quickstart: Games on a 2-node A100 cluster, Qwen2-1.5B\n");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "system", "QPS", "hit rate", "savings", "P99 (ms)"
    );
    let systems = [
        SystemKind::Recompute,
        SystemKind::UserPrefix,
        SystemKind::ItemPrefix,
        SystemKind::Bat,
    ];
    let stats = compare_systems(&spec, &systems);
    for s in &stats {
        println!(
            "{:<6} {:>10.1} {:>10.3} {:>10.3} {:>10.1}",
            s.system,
            s.qps(),
            s.hit_rate(),
            s.computation_savings(),
            s.p99_latency_ms
        );
    }

    println!(
        "\n(P99 columns reflect the deliberate {:.0}x overload used to measure\n\
         saturation throughput; see the fig9_latency harness for latency-vs-rate curves)",
        6.0
    );
    let re = &stats[0];
    let up = &stats[1];
    let bat = &stats[3];
    println!(
        "\nBAT serves {:.2}x the throughput of full recomputation and {:.2}x of\n\
         the conventional User-as-prefix baseline, by scheduling each request\n\
         to whichever prompt prefix (user or item) its cache state favors.",
        bat.qps() / re.qps(),
        bat.qps() / up.qps()
    );
}
