//! Placement planning walkthrough: Algorithm 1 end to end.
//!
//! Plans the item-KV placement for an Industry-scale corpus on the two
//! paper testbeds: derives the tolerable remote-access ratio from network
//! bandwidth and prefill time, picks the replication ratio off the
//! popularity CDF, materializes the plan, and prints the memory split and
//! expected traffic locality.
//!
//! Run with:
//! ```text
//! cargo run --release -p bat --example placement_planner
//! ```

use bat::{
    ClusterConfig, ComputeModel, DatasetConfig, ItemPlacementPlan, ModelConfig, PlacementStrategy,
    ZipfLaw,
};
use bat_placement::{compute_replication_ratio, HrcsParams};
use bat_types::Bytes;

fn plan_for(cluster: &ClusterConfig, label: &str) {
    let model = ModelConfig::qwen2_1_5b();
    let ds = DatasetConfig::industry();
    let compute = ComputeModel::new(model.clone(), cluster.node.clone());
    let law = ZipfLaw::new(ds.num_items, ds.item_zipf_exponent);

    let params = HrcsParams {
        bandwidth_tokens_per_sec: compute.net_tokens_per_sec(),
        prefill_time_secs: compute.prefill_estimate_secs(
            ds.avg_user_tokens as u64,
            ds.avg_prompt_item_tokens() as u64,
        ),
        alpha: cluster.alpha,
        candidates_per_request: ds.candidates_per_request,
        avg_item_tokens: ds.avg_item_tokens as f64,
        num_workers: cluster.num_nodes,
    };
    let r = compute_replication_ratio(&params, &law);

    let plan = ItemPlacementPlan::new(
        PlacementStrategy::Hrcs,
        ds.num_items,
        cluster.num_nodes,
        r,
        model.kv_bytes(ds.avg_item_tokens as u64),
    )
    .fit_to_capacity(Bytes::new(cluster.node.kv_cache_capacity.as_u64() * 4 / 5));

    let user_region = cluster
        .node
        .kv_cache_capacity
        .saturating_sub(plan.per_worker_bytes());
    // Of the accesses to cached items: replicated head is always local; the
    // sharded tail is local 1/N of the time.
    let head = plan.replicated_items();
    let head_mass = law.head_mass(head.min(law.n()));
    let cached_mass = plan.cached_access_mass(&law);
    let n = cluster.num_nodes as f64;
    let local = head_mass + (cached_mass - head_mass) / n;

    println!("== {label} ==");
    println!(
        "  network budget        {:>10.0} KV tokens/s",
        params.bandwidth_tokens_per_sec
    );
    println!(
        "  est. prefill time     {:>10.1} ms",
        params.prefill_time_secs * 1e3
    );
    println!(
        "  max remote ratio R    {:>10.4}",
        params.max_remote_ratio()
    );
    println!("  replication ratio r   {:>10.4}", plan.replication_ratio());
    println!("  replicated items      {:>10}", plan.replicated_items());
    println!(
        "  cached items          {:>10}  (of {})",
        plan.cached_items(),
        plan.num_items()
    );
    println!("  item region / node    {:>10}", plan.per_worker_bytes());
    println!("  user region / node    {:>10}", user_region);
    println!(
        "  item-access locality  {:>9.1}% local, {:.1}% remote, {:.1}% uncached",
        local * 100.0,
        (cached_mass - local) * 100.0,
        (1.0 - cached_mass) * 100.0
    );
    println!();
}

fn main() {
    println!("HRCS placement planning (Industry, Qwen2-1.5B)\n");
    plan_for(&ClusterConfig::a100_4node(), "4-node A100 testbed, 100Gbps");

    let mut slow = ClusterConfig::a100_4node();
    slow.node = slow.node.with_network_gbps(10.0);
    plan_for(
        &slow,
        "4-node A100 testbed, 10Gbps (replicates a larger head)",
    );

    plan_for(
        &ClusterConfig::h20_16node(),
        "16-node H20 production, 200Gbps",
    );
}
