//! `bat-exec` — the workspace's parallel execution layer.
//!
//! A dependency-free work-stealing thread pool (see [`pool`]) plus the
//! deterministic data-parallel primitives every compute hot path in the
//! workspace builds on: indexed maps over disjoint outputs, chunked loops,
//! and fixed-shape tree reductions.
//!
//! Thread count resolution, in priority order:
//!
//! 1. [`set_threads`] (runtime override; `batctl --threads N`),
//! 2. the `BAT_THREADS` environment variable,
//! 3. the machine's available parallelism.
//!
//! At one effective thread every primitive runs the identical serial loop
//! inline — no pool, no atomics on the data path.
//!
//! # Determinism
//!
//! All primitives guarantee **bit-identical results for any thread count**:
//! map outputs are written to disjoint slots by exactly one task each with
//! a fixed internal loop order, and [`tree_reduce_f32`] combines fixed-size
//! block partials in index order (the reduction tree depends on the block
//! size, never on the thread count). This is the contract the sim-vs-serve
//! parity and fault-determinism suites regression-test.
//!
//! ```
//! let squares = bat_exec::parallel_map_indexed(8, 1, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let sum = bat_exec::tree_reduce_f32(1000, 256, |range| {
//!     range.map(|i| i as f32).sum()
//! });
//! assert_eq!(sum, 499_500.0);
//! ```

pub mod pool;

use std::mem::MaybeUninit;
use std::ops::Range;

pub use pool::{parse_thread_override, run_blocks, set_threads, threads, MAX_THREADS};

/// Wraps a raw pointer so disjoint-slot writers can share it across tasks.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Writes `v` to slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and no other task may touch slot `i`.
    unsafe fn write(&self, i: usize, v: T) {
        self.0.add(i).write(v);
    }

    /// Reborrows `len` elements starting at `start` as a mutable slice.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and disjoint from every other slice
    /// handed out during the same parallel call.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_rows(&self, start: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

/// How many scheduling blocks to split `n` items into: enough to balance
/// load (a few blocks per thread), never more than `n`.
fn block_count(n: usize) -> usize {
    n.min(threads() * 4)
}

/// Splits `0..n` into `blocks` contiguous ranges of near-equal size.
/// Block `b`'s range depends only on `(n, blocks)`, not on scheduling.
fn block_range(n: usize, blocks: usize, b: usize) -> Range<usize> {
    let base = n / blocks;
    let extra = n % blocks;
    let start = b * base + b.min(extra);
    let len = base + usize::from(b < extra);
    start..start + len
}

/// Maps `f` over `0..n`, returning results in index order. `f(i)` runs
/// exactly once per index on some thread; outputs land in disjoint slots,
/// so the result is bit-identical to the serial loop for any thread count.
///
/// `grain` is the minimum number of items worth parallelizing: below it the
/// map runs inline (use it to keep tiny inner loops off the pool).
pub fn parallel_map_indexed<R, F>(n: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if threads() <= 1 || n < grain.max(2) {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: every slot below is written exactly once before assuming init.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let ptr = SendPtr(out.as_mut_ptr());
    let blocks = block_count(n);
    run_blocks(blocks, &|b| {
        for i in block_range(n, blocks, b) {
            // SAFETY: block ranges partition 0..n; slot `i` is written by
            // exactly one task and read only after run_blocks returns.
            unsafe { ptr.write(i, MaybeUninit::new(f(i))) };
        }
    });
    // SAFETY: run_blocks completed every block, so all n slots are
    // initialized. MaybeUninit<R> and R have identical layout.
    unsafe { std::mem::transmute::<Vec<MaybeUninit<R>>, Vec<R>>(out) }
}

/// Maps `f` over a slice, preserving order. See [`parallel_map_indexed`].
pub fn parallel_map<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items.len(), grain, |i| f(&items[i]))
}

/// Runs `f` on contiguous chunks partitioning `0..n`. Chunk boundaries are
/// a pure function of `n` and the current block count, and each chunk is
/// processed by exactly one task — callers must only write state disjoint
/// per index for the result to be schedule-independent.
pub fn parallel_chunks<F>(n: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    if threads() <= 1 || n < grain.max(2) {
        f(0..n);
        return;
    }
    let blocks = block_count(n);
    run_blocks(blocks, &|b| f(block_range(n, blocks, b)));
}

/// Runs `f(chunk_index, range)` over a weight-balanced contiguous
/// partition of `0..weights.len()`. Where [`parallel_chunks`] splits by
/// *count*, this splits by cumulative *weight*: chunk `b` covers the
/// indices whose prefix weight falls in the `b`-th of `k` equal weight
/// spans, so a batch of variable-length sequences (a continuous-batching
/// round's chunks, keyed by token count) spreads evenly instead of one
/// task inheriting every long prompt.
///
/// The partition is a pure function of `(weights, k)` with
/// `k = block_count(n)`; like [`parallel_chunks`], callers must only write
/// per-index state for results to be bit-identical across thread counts.
/// Chunks that end up empty (one weight dwarfing the rest) are skipped,
/// and a zero total weight falls back to the uniform count split.
pub fn parallel_weighted_chunks<F>(weights: &[u64], grain: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let n = weights.len();
    if n == 0 {
        return;
    }
    if threads() <= 1 || n < grain.max(2) {
        f(0, 0..n);
        return;
    }
    let k = block_count(n);
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        run_blocks(k, &|b| f(b, block_range(n, k, b)));
        return;
    }
    // cuts[b] = first index whose prefix weight reaches b/k of the total;
    // computed by one forward sweep, so cuts are monotone and partition
    // 0..n exactly.
    let mut cuts = Vec::with_capacity(k + 1);
    cuts.push(0usize);
    let mut prefix: u128 = 0;
    let mut i = 0usize;
    for b in 1..k {
        let target = total * b as u128;
        while i < n && prefix * (k as u128) < target {
            prefix += u128::from(weights[i]);
            i += 1;
        }
        cuts.push(i);
    }
    cuts.push(n);
    let cuts = &cuts;
    run_blocks(k, &|b| {
        let range = cuts[b]..cuts[b + 1];
        if !range.is_empty() {
            f(b, range);
        }
    });
}

/// Treats `data` as an `n_rows × row_len` row-major buffer and hands
/// disjoint contiguous row blocks to `f(first_row, rows_slice)` in
/// parallel. Each row belongs to exactly one block, so per-row outputs are
/// schedule-independent; `f` must compute rows independently of the block
/// decomposition for results to be bit-identical across thread counts.
///
/// Serial (one inline `f(0, data)` call) when `n_rows < grain_rows` or one
/// thread is effective.
///
/// # Panics
///
/// Panics if `row_len == 0` or `data.len()` is not a multiple of `row_len`.
pub fn parallel_row_blocks<T, F>(data: &mut [T], row_len: usize, grain_rows: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        row_len > 0,
        "parallel_row_blocks needs a positive row length"
    );
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer length {} is not a multiple of row length {row_len}",
        data.len()
    );
    let n_rows = data.len() / row_len;
    if n_rows == 0 {
        return;
    }
    if threads() <= 1 || n_rows < grain_rows.max(2) {
        f(0, data);
        return;
    }
    let blocks = block_count(n_rows);
    let ptr = SendPtr(data.as_mut_ptr());
    run_blocks(blocks, &|b| {
        let rows = block_range(n_rows, blocks, b);
        // SAFETY: block ranges partition 0..n_rows, so the row slices are
        // disjoint; the buffer outlives run_blocks.
        let slice = unsafe { ptr.slice_rows(rows.start * row_len, rows.len() * row_len) };
        f(rows.start, slice);
    });
}

/// Deterministic parallel sum: partials over **fixed-size** blocks of
/// `block` indices (independent of thread count), combined serially in
/// index order. Bit-identical for any thread count, including one.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn tree_reduce_f32<F>(n: usize, block: usize, partial: F) -> f32
where
    F: Fn(Range<usize>) -> f32 + Sync,
{
    assert!(block > 0, "tree_reduce_f32 needs a positive block size");
    if n == 0 {
        return 0.0;
    }
    let n_blocks = n.div_ceil(block);
    let partials = parallel_map_indexed(n_blocks, 2, |b| {
        partial(b * block..((b + 1) * block).min(n))
    });
    // Fixed-order fold: the tree shape is (n, block), never thread count.
    partials.into_iter().fold(0.0f32, |acc, p| acc + p)
}

/// Hands the calling thread its own lazily-created instance of `T` —
/// per-thread workspace plumbing for kernels that run inside the pool's
/// tasks. Pool workers are persistent daemon threads, so a scratch value
/// warms up once per worker and is then reused across every task, layer,
/// and request that lands on that thread: steady-state calls perform no
/// heap allocation beyond what `f` itself does with an already-grown `T`.
///
/// Distinct types get distinct slots (keyed by `TypeId`), so independent
/// subsystems can each keep scratch on the same thread without
/// coordination.
///
/// # Panics
///
/// Panics if `f` re-enters `with_thread_scratch` for the **same** `T` on
/// the same thread (the scratch value is exclusively borrowed while `f`
/// runs). Nesting with a different `T` is fine.
pub fn with_thread_scratch<T, R>(f: impl FnOnce(&mut T) -> R) -> R
where
    T: Default + 'static,
{
    use std::any::{Any, TypeId};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    thread_local! {
        static SCRATCH: RefCell<HashMap<TypeId, Rc<dyn Any>>> = RefCell::new(HashMap::new());
    }
    let slot: Rc<RefCell<T>> = SCRATCH.with(|cell| {
        let mut map = cell.borrow_mut();
        let slot = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Rc::new(RefCell::new(T::default())) as Rc<dyn Any>);
        Rc::clone(slot)
            .downcast::<RefCell<T>>()
            .expect("scratch slot type confusion")
    });
    let mut guard = slot.borrow_mut();
    f(&mut guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn map_preserves_order_at_any_width() {
        for t in [1, 2, 4, 8] {
            set_threads(t);
            let v = parallel_map_indexed(100, 1, |i| i * 3);
            assert_eq!(
                v,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "{t} threads"
            );
        }
        set_threads(1);
    }

    #[test]
    fn thread_scratch_persists_and_separates_types() {
        #[derive(Default)]
        struct A(Vec<u32>);
        #[derive(Default)]
        struct B(String);
        with_thread_scratch(|a: &mut A| a.0.push(7));
        // Different type nests fine while A's slot exists.
        let b_len = with_thread_scratch(|b: &mut B| {
            b.0.push('x');
            with_thread_scratch(|a: &mut A| a.0.push(8));
            b.0.len()
        });
        assert_eq!(b_len, 1);
        // Same thread sees the same instance across calls.
        let a_now = with_thread_scratch(|a: &mut A| a.0.clone());
        assert_eq!(a_now, vec![7, 8]);
        // Another thread gets a fresh instance.
        let other = std::thread::spawn(|| with_thread_scratch(|a: &mut A| a.0.clone()))
            .join()
            .unwrap();
        assert!(other.is_empty());
    }

    #[test]
    fn map_over_slice_borrows() {
        set_threads(3);
        let data = vec![1.5f32, 2.5, 3.5];
        let doubled = parallel_map(&data, 1, |x| x * 2.0);
        assert_eq!(doubled, vec![3.0, 5.0, 7.0]);
        set_threads(1);
    }

    #[test]
    fn chunks_partition_exactly() {
        set_threads(4);
        let hits: Vec<std::sync::atomic::AtomicU32> = (0..1003)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        parallel_chunks(hits.len(), 1, |range| {
            for i in range {
                hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
        set_threads(1);
    }

    #[test]
    fn weighted_chunks_cover_every_index_once() {
        for t in [1, 2, 4, 8] {
            set_threads(t);
            let weights: Vec<u64> = (0..157).map(|i| (i * 37) % 113).collect();
            let hits: Vec<std::sync::atomic::AtomicU32> = (0..weights.len())
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect();
            parallel_weighted_chunks(&weights, 1, |_, range| {
                for i in range {
                    hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter()
                    .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1),
                "{t} threads"
            );
        }
        set_threads(1);
    }

    #[test]
    fn weighted_chunks_balance_skewed_weights() {
        set_threads(4);
        // One 10_000-token prompt among 63 tiny ones: a count split gives
        // some chunk ~10k + neighbors; the weight split isolates it.
        let mut weights = vec![8u64; 64];
        weights[0] = 10_000;
        let total: u64 = weights.iter().sum();
        let max_w = *weights.iter().max().unwrap();
        let chunk_loads = std::sync::Mutex::new(Vec::new());
        parallel_weighted_chunks(&weights, 1, |_, range| {
            let load: u64 = range.map(|i| weights[i]).sum();
            chunk_loads.lock().unwrap().push(load);
        });
        let loads = chunk_loads.into_inner().unwrap();
        let k = loads.len() as u64;
        assert!(k > 1, "the split must actually split");
        // Standard greedy bound: no chunk exceeds an even share plus one
        // item (the indivisible unit).
        for load in loads {
            assert!(
                load <= total / k + max_w,
                "chunk load {load} vs bound {} (total {total}, k {k})",
                total / k + max_w
            );
        }
        set_threads(1);
    }

    #[test]
    fn weighted_chunks_handle_degenerate_weights() {
        set_threads(4);
        // All-zero weights fall back to the uniform split; empty input is
        // a no-op.
        let hits: Vec<std::sync::atomic::AtomicU32> = (0..17)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        parallel_weighted_chunks(&[0u64; 17], 1, |_, range| {
            for i in range {
                hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
        parallel_weighted_chunks(&[], 1, |_, _| panic!("must not run"));
        set_threads(1);
    }

    #[test]
    fn row_blocks_cover_every_row_once() {
        for t in [1, 2, 4, 8] {
            set_threads(t);
            let rows = 37;
            let row_len = 5;
            let mut buf = vec![0u32; rows * row_len];
            parallel_row_blocks(&mut buf, row_len, 1, |first_row, block| {
                for (off, row) in block.chunks_mut(row_len).enumerate() {
                    for (c, slot) in row.iter_mut().enumerate() {
                        *slot += ((first_row + off) * row_len + c) as u32;
                    }
                }
            });
            let want: Vec<u32> = (0..(rows * row_len) as u32).collect();
            assert_eq!(buf, want, "{t} threads");
        }
        set_threads(1);
    }

    #[test]
    fn empty_inputs_are_noops() {
        assert!(parallel_map_indexed(0, 1, |i| i).is_empty());
        parallel_chunks(0, 1, |_| panic!("must not run"));
        assert_eq!(tree_reduce_f32(0, 8, |_| panic!("must not run")), 0.0);
    }

    proptest! {
        /// The reduction is bit-identical across thread counts because the
        /// block decomposition is fixed.
        #[test]
        fn reduce_is_thread_count_invariant(
            xs in proptest::collection::vec(-1e3f32..1e3, 1..500),
            block in 1usize..64,
        ) {
            let gold = {
                set_threads(1);
                tree_reduce_f32(xs.len(), block, |r| r.map(|i| xs[i]).sum())
            };
            for t in [2usize, 4, 8] {
                set_threads(t);
                let got = tree_reduce_f32(xs.len(), block, |r| r.map(|i| xs[i]).sum());
                prop_assert_eq!(got.to_bits(), gold.to_bits());
            }
            set_threads(1);
        }
    }
}
