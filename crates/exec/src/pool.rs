//! The work-stealing thread pool.
//!
//! # Architecture
//!
//! One global pool, initialized lazily on first use. Every worker owns a
//! deque; a parallel call splits its iteration space into block tasks,
//! distributes them round-robin across the deques, and then *participates*:
//! the calling thread executes tasks alongside the workers until its call's
//! outstanding-block latch reaches zero. Workers pop their own deque from
//! the back (LIFO, cache-warm) and steal from other deques from the front
//! (FIFO, oldest first). Because the caller always helps instead of
//! blocking, nested parallel calls (a parallel sweep cell whose forward
//! pass is itself parallel) cannot deadlock: whichever thread waits on a
//! latch keeps draining tasks — its own or anyone else's.
//!
//! # Determinism contract
//!
//! Scheduling is nondeterministic; *results are not allowed to be*. Every
//! task writes only state that no other task of the same call touches
//! (disjoint output blocks), and each block's internal loop order is fixed,
//! so the value produced for a given input is bit-identical no matter how
//! many threads run or which thread executes which block. Reductions go
//! through [`tree_reduce_f32`](crate::tree_reduce_f32), which combines
//! fixed-size block partials in index order — the tree shape depends on the
//! *block size*, never on the thread count. At one effective thread every
//! API degenerates to the plain serial loop over the same blocks.
//!
//! # Panics in tasks
//!
//! A panicking block is caught on the executing worker, the latch is still
//! released, and the panic is re-raised on the calling thread once the call
//! completes (the original payload is replaced by a generic message).
//! Without this, a panicking worker would strand the latch and hang the
//! caller.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a pool mutex, recovering from poisoning.
///
/// A panicking parallel block is caught in [`run_task`] and never holds a
/// pool lock, but a panic at exactly the wrong instant elsewhere (an
/// allocation failure inside `push_back`, a panicking test thread killed
/// mid-call) would poison the mutex it held — and with plain `unwrap()`
/// every worker touching that deque afterwards would panic too, cascading
/// one failure into a dead global pool for the rest of the process. The
/// pool's queue state is a plain `VecDeque` with no invariant that a
/// panic can tear mid-update, so the recovery is sound: take the guard
/// and keep going.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hard cap on pool width; `BAT_THREADS` and [`set_threads`] clamp to it.
pub const MAX_THREADS: usize = 64;

/// State shared by one parallel call: the block closure and its latch.
struct CallCtx {
    /// The block body. Raw pointer because the closure lives on the calling
    /// thread's stack; the latch protocol guarantees it outlives every task.
    f: *const (dyn Fn(usize) + Sync),
    /// Blocks not yet finished. The caller returns only once this is zero,
    /// which is what makes the borrowed `f` sound.
    remaining: AtomicUsize,
    /// Set when any block panicked; re-raised by the caller.
    panicked: AtomicBool,
}

/// One schedulable unit: "run block `block` of call `ctx`".
#[derive(Clone, Copy)]
struct Task {
    ctx: *const CallCtx,
    block: usize,
}

// SAFETY: `Task` crosses threads by design. The pointee `CallCtx` (and the
// closure it references) is kept alive by the latch protocol: the owning
// call blocks until `remaining == 0`, and a task decrements `remaining`
// only after its last access to the context.
unsafe impl Send for Task {}

struct Shared {
    /// Per-worker deques plus one injector slot (index 0) for threads that
    /// are not pool workers (the main thread, serve worker threads, tests).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks currently queued anywhere; the sleep/wake condition.
    queued: AtomicUsize,
    /// Workers park here when every deque is empty.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Number of OS worker threads actually spawned so far.
    spawned: Mutex<usize>,
    /// Effective thread count (callers + workers) used for chunking and the
    /// serial fallback.
    effective: AtomicUsize,
    /// Highest deque slot ever handed tasks; bounds the steal sweep so an
    /// idle probe does not touch all `MAX_THREADS + 1` mutexes.
    live_slots: AtomicUsize,
}

static POOL: OnceLock<&'static Shared> = OnceLock::new();

thread_local! {
    /// Deque slot owned by this thread: worker `i` owns slot `i + 1`;
    /// non-worker threads share the injector slot 0.
    static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Parses a thread-count override, clamping into `1..=MAX_THREADS`.
/// Exposed for the `BAT_THREADS` unit tests.
pub fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim()
        .parse::<usize>()
        .ok()
        .map(|n| n.clamp(1, MAX_THREADS))
}

fn default_threads() -> usize {
    parse_thread_override(std::env::var("BAT_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

fn shared() -> &'static Shared {
    POOL.get_or_init(|| {
        let deques = (0..MAX_THREADS + 1)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        Box::leak(Box::new(Shared {
            deques,
            queued: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            spawned: Mutex::new(0),
            effective: AtomicUsize::new(default_threads()),
            live_slots: AtomicUsize::new(1),
        }))
    })
}

/// The effective thread count: `BAT_THREADS` if set, otherwise the
/// machine's available parallelism, unless overridden by [`set_threads`].
pub fn threads() -> usize {
    shared().effective.load(Ordering::Relaxed)
}

/// Overrides the effective thread count at runtime (the `batctl --threads`
/// plumbing and the determinism tests). Workers are spawned on demand;
/// shrinking only idles them, it never kills threads.
pub fn set_threads(n: usize) {
    let n = n.clamp(1, MAX_THREADS);
    shared().effective.store(n, Ordering::Relaxed);
}

/// Spawns pool workers until at least `target` exist. Workers are detached
/// daemon threads; they park when there is no work.
fn ensure_workers(target: usize) {
    let pool = shared();
    let mut spawned = relock(&pool.spawned);
    while *spawned < target.min(MAX_THREADS) {
        let id = *spawned;
        *spawned += 1;
        std::thread::Builder::new()
            .name(format!("bat-exec-{id}"))
            .spawn(move || worker_loop(pool, id + 1))
            .expect("spawn bat-exec worker");
    }
}

/// Pops a task: own deque from the back, then steal sweep (front of every
/// other deque in fixed rotation).
fn pop_any(pool: &Shared, slot: usize) -> Option<Task> {
    if let Some(t) = relock(&pool.deques[slot]).pop_back() {
        pool.queued.fetch_sub(1, Ordering::AcqRel);
        return Some(t);
    }
    let n = pool.live_slots.load(Ordering::Acquire).max(slot + 1);
    for off in 1..n {
        let victim = (slot + off) % n;
        if let Some(t) = relock(&pool.deques[victim]).pop_front() {
            pool.queued.fetch_sub(1, Ordering::AcqRel);
            return Some(t);
        }
    }
    None
}

/// Runs one task, routing a panic into the call's flag so the latch always
/// releases.
fn run_task(task: Task) {
    // SAFETY: latch protocol (see `Task`).
    let ctx = unsafe { &*task.ctx };
    let f = unsafe { &*ctx.f };
    if catch_unwind(AssertUnwindSafe(|| f(task.block))).is_err() {
        ctx.panicked.store(true, Ordering::Release);
    }
    ctx.remaining.fetch_sub(1, Ordering::Release);
}

fn worker_loop(pool: &'static Shared, slot: usize) {
    SLOT.with(|s| s.set(slot));
    loop {
        if let Some(task) = pop_any(pool, slot) {
            run_task(task);
            continue;
        }
        let guard = relock(&pool.sleep);
        if pool.queued.load(Ordering::Acquire) == 0 {
            // Parking is cheap and wakeups are broadcast; spurious wakes
            // just re-run the steal sweep.
            let _unused = pool
                .wake
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Executes `f(0..n_blocks)` across the pool and returns when every block
/// has run. Blocks may run on any thread in any order; each runs exactly
/// once. With one effective thread (or one block) this is a plain serial
/// loop — same blocks, same order, same results.
pub fn run_blocks(n_blocks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_blocks == 0 {
        return;
    }
    let eff = threads();
    if eff <= 1 || n_blocks == 1 {
        for b in 0..n_blocks {
            f(b);
        }
        return;
    }
    let pool = shared();
    ensure_workers(eff - 1);

    // SAFETY: erases the borrow's lifetime so it can sit in `CallCtx`; the
    // latch protocol guarantees every use of `f` happens before we return.
    let f_erased: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), _>(f) };
    let ctx = CallCtx {
        f: f_erased,
        remaining: AtomicUsize::new(n_blocks),
        panicked: AtomicBool::new(false),
    };
    let my_slot = SLOT.with(|s| s.get());
    // Round-robin blocks across the active deques (ours included) so idle
    // workers find work without contending on a single queue.
    let active = eff.min(pool.deques.len());
    pool.live_slots
        .fetch_max(active.max(my_slot + 1), Ordering::AcqRel);
    for b in 0..n_blocks {
        let slot = (my_slot + b) % active;
        relock(&pool.deques[slot]).push_back(Task {
            ctx: &ctx as *const _,
            block: b,
        });
        pool.queued.fetch_add(1, Ordering::AcqRel);
    }
    {
        let _g = relock(&pool.sleep);
        pool.wake.notify_all();
    }

    // Participate: drain tasks (ours or anyone's) until our latch opens.
    while ctx.remaining.load(Ordering::Acquire) != 0 {
        match pop_any(pool, my_slot) {
            Some(task) => run_task(task),
            None => std::thread::yield_now(),
        }
    }
    if ctx.panicked.load(Ordering::Acquire) {
        panic!("a bat-exec parallel block panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parse_override_clamps_and_rejects_junk() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("garbage")), None);
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_override(Some("0")), Some(1));
        assert_eq!(parse_thread_override(Some("10000")), Some(MAX_THREADS));
    }

    #[test]
    fn every_block_runs_exactly_once() {
        set_threads(4);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        run_blocks(hits.len(), &|b| {
            hits[b].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "block {i}");
        }
        set_threads(1);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        set_threads(4);
        let total = AtomicU64::new(0);
        run_blocks(8, &|_| {
            run_blocks(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
        set_threads(1);
    }

    #[test]
    fn poisoned_pool_locks_recover() {
        // Poison the injector deque and the sleep mutex the hard way: a
        // thread panicking while holding the guard. The pool must shrug —
        // a poisoned lock on plain queue state is recoverable, and one
        // stray panic must not cascade into a dead global pool.
        for poison in [0usize, 1] {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _guard = if poison == 0 {
                    Some(shared().deques[0].lock().unwrap())
                } else {
                    None
                };
                let _sleep = if poison == 1 {
                    Some(shared().sleep.lock().unwrap())
                } else {
                    None
                };
                panic!("poison it");
            }));
        }
        assert!(shared().deques[0].lock().is_err(), "deque must be poisoned");
        assert!(shared().sleep.lock().is_err(), "sleep must be poisoned");
        set_threads(4);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        run_blocks(hits.len(), &|b| {
            hits[b].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "block {i}");
        }
        set_threads(1);
    }

    #[test]
    fn panics_propagate_to_caller() {
        set_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_blocks(4, &|b| {
                if b == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        set_threads(1);
    }
}
