//! The hierarchical tiered KV pool: a quantized cold tier behind the hot
//! user/item cache regions, with an online user/item budget partitioner.
//!
//! The paper keeps KV in flat host memory and defers cheap-but-slow
//! storage tiers to future work (§3.3.2); MTServe-style hierarchies show
//! that a DRAM→NVMe ladder is what makes generative-recommender KV reuse
//! economical at scale, and "One Pool, Two Caches" shows the user/item
//! division of a shared pool should be adapted online by marginal
//! hit-rate gain. This crate supplies both pieces:
//!
//! * [`TieredKvPool`] — the cold tier behind the planner's hot regions.
//!   Entries evicted from the hot user cache *demote* here instead of
//!   vanishing, stored **quantized** ([`ColdFormat`]: f16 halves the
//!   footprint, int8 quarters it), so a fixed byte budget holds 2–4× more
//!   prefixes. Cold hits are served at [`TiersConfig::cold_read_bandwidth`]
//!   and — on the serve side, where real payloads exist — attended
//!   *directly in quantized form* by `bat-tensor`'s dequant-fused kernels,
//!   then promoted back into the hot region. Item recomputes write back
//!   here too, so the brownout ladder's rung 2 can serve faulted items
//!   from local cold storage instead of recomputing them.
//! * [`PartitionController`] — re-divides the cold budget between the
//!   user and item entry classes every rebalance interval, moving a step
//!   of budget toward the class whose recent misses-per-budget-byte (the
//!   marginal hit-rate gain of growing it) is higher.
//!
//! Every decision the pool takes is routed through an embedded
//! [`bat_kvcache::TieredKvCache`] — the same accounting core the
//! simulation oracle uses — so the sim-side and serve-side pools agree on
//! every hit/miss/demotion decision byte-for-byte by construction, and
//! the agreement is checkable end-to-end by comparing
//! [`TieredKvPool::digest`]s. All state advances on *nominal* trace time
//! (the planner's clock), never wall-clock, preserving the repo's
//! bitwise sim/serve equivalence across thread counts.

use bat_kvcache::{CacheKey, EntryClass, FreqEstimator, TieredKvCache, TieredKvConfig};
use bat_metrics::TierStats;
use bat_tensor::{ColBlock, QuantKind, QuantizedColBlock};
use bat_types::Bytes;
use std::collections::HashMap;

/// Storage format of the cold tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdFormat {
    /// Uncompressed f32 — the control arm: tiering without quantization.
    F32,
    /// IEEE-754 half precision: 2× capacity, ≤2⁻¹¹ relative error.
    F16,
    /// Per-plane affine int8: 4× capacity, error bounded by the plane
    /// value range (see `bat_tensor::quant`).
    Int8,
}

impl ColdFormat {
    /// The `bat-tensor` quantization kind, `None` for the f32 control.
    pub fn quant_kind(self) -> Option<QuantKind> {
        match self {
            ColdFormat::F32 => None,
            ColdFormat::F16 => Some(QuantKind::F16),
            ColdFormat::Int8 => Some(QuantKind::Int8),
        }
    }

    /// Cold-resident bytes for an entry whose hot (f32) footprint is
    /// `full`. Integer ceiling division keeps the charge deterministic.
    pub fn cold_bytes(self, full: Bytes) -> Bytes {
        let b = full.as_u64();
        Bytes::new(match self {
            ColdFormat::F32 => b,
            ColdFormat::F16 => b.div_ceil(2),
            ColdFormat::Int8 => b.div_ceil(4),
        })
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ColdFormat::F32 => "f32",
            ColdFormat::F16 => "f16",
            ColdFormat::Int8 => "int8",
        }
    }
}

/// How the cold budget is divided between user and item entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitPolicy {
    /// Online marginal-gain rebalancing (the tentpole policy).
    Adaptive,
    /// Fixed user share in `[0, 1]` (0.5 = the static 50/50 baseline).
    Static(f64),
    /// Entire cold budget to user entries — the old `TieredUserCache`
    /// behaviour, where item KV bypassed tier bookkeeping.
    AllUser,
}

/// Configuration of the tiered pool.
#[derive(Debug, Clone)]
pub struct TiersConfig {
    /// Total cold-tier byte budget (shared by both classes).
    pub cold_capacity: Bytes,
    /// Cold storage read bandwidth, bytes/sec (NVMe-class; well below the
    /// PCIe bandwidth the hot tier loads at).
    pub cold_read_bandwidth: f64,
    /// Storage format of cold entries.
    pub format: ColdFormat,
    /// Budget split policy between user and item entries.
    pub split: SplitPolicy,
    /// Seconds between adaptive rebalances.
    pub rebalance_interval_secs: f64,
    /// Fraction of the total budget shifted per rebalance.
    pub rebalance_step: f64,
    /// Floor on each class's share under [`SplitPolicy::Adaptive`].
    pub min_share: f64,
    /// Hotness admission threshold for demotions: entries accessed fewer
    /// than this many times per window are dropped instead of demoted
    /// (0.0 admits everything).
    pub cold_admit_min_per_window: f64,
    /// Window of the pool's access-frequency estimator, seconds.
    pub freq_window_secs: f64,
}

impl TiersConfig {
    /// A pool with `cold_capacity` of NVMe-modelled storage and the
    /// defaults: f16 format, adaptive split, 2 GB/s reads.
    pub fn new(cold_capacity: Bytes) -> Self {
        TiersConfig {
            cold_capacity,
            cold_read_bandwidth: 2.0e9,
            format: ColdFormat::F16,
            split: SplitPolicy::Adaptive,
            rebalance_interval_secs: 5.0,
            rebalance_step: 0.1,
            min_share: 0.1,
            cold_admit_min_per_window: 0.0,
            freq_window_secs: 60.0,
        }
    }

    /// Sets the cold storage format.
    pub fn with_format(mut self, format: ColdFormat) -> Self {
        self.format = format;
        self
    }

    /// Sets the budget split policy.
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// Validates ranges; returns a message for the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.cold_read_bandwidth.is_finite() && self.cold_read_bandwidth > 0.0) {
            return Err("cold_read_bandwidth must be finite and positive".into());
        }
        if let SplitPolicy::Static(s) = self.split {
            if !(0.0..=1.0).contains(&s) {
                return Err(format!("static user share {s} outside [0, 1]"));
            }
        }
        if !(0.0..0.5).contains(&self.min_share) {
            return Err(format!("min_share {} outside [0, 0.5)", self.min_share));
        }
        if !(self.rebalance_step.is_finite() && self.rebalance_step > 0.0) {
            return Err("rebalance_step must be finite and positive".into());
        }
        if !(self.rebalance_interval_secs.is_finite() && self.rebalance_interval_secs > 0.0) {
            return Err("rebalance_interval_secs must be finite and positive".into());
        }
        Ok(())
    }
}

/// Windowed per-class cold-lookup outcomes since the last rebalance.
/// Misses are weighted by the full (uncompressed) bytes the lookup wanted:
/// the end-to-end hit rate is token-weighted, so a missed 30 MB user
/// prefix is worth ~100 missed 0.3 MB item blocks of budget.
#[derive(Debug, Clone, Copy, Default)]
struct ClassWindow {
    hits: u64,
    missed_bytes: u64,
}

/// The online user/item budget partitioner ("One Pool, Two Caches").
///
/// Every [`TiersConfig::rebalance_interval_secs`] of nominal time it
/// estimates each class's marginal hit-rate gain as its windowed cold
/// *missed bytes per budget byte* — the token-weighted rate at which
/// extra capacity would have converted misses, since the end-to-end hit
/// rate counts tokens, not lookups — and shifts [`TiersConfig::rebalance_step`] of the
/// total budget toward the class with the higher estimate, clamped to
/// [`TiersConfig::min_share`]. Deterministic: driven entirely by nominal
/// time and integer outcome counts.
#[derive(Debug, Clone)]
pub struct PartitionController {
    user_share: f64,
    next_rebalance_at: f64,
    windows: [ClassWindow; 2],
}

impl PartitionController {
    fn new(initial_user_share: f64) -> Self {
        PartitionController {
            user_share: initial_user_share,
            next_rebalance_at: f64::NEG_INFINITY,
            windows: [ClassWindow::default(); 2],
        }
    }

    /// The current user share of the cold budget.
    pub fn user_share(&self) -> f64 {
        self.user_share
    }

    fn record(&mut self, class: EntryClass, hit: bool, full_bytes: Bytes) {
        let w = &mut self.windows[class as usize];
        if hit {
            w.hits += 1;
        } else {
            w.missed_bytes += full_bytes.as_u64();
        }
    }

    /// Re-splits on schedule; returns the new user share if it changed.
    fn maybe_rebalance(&mut self, now: f64, cfg: &TiersConfig, budgets: [Bytes; 2]) -> Option<f64> {
        if self.next_rebalance_at == f64::NEG_INFINITY {
            self.next_rebalance_at = now + cfg.rebalance_interval_secs;
            return None;
        }
        if now < self.next_rebalance_at {
            return None;
        }
        self.next_rebalance_at = now + cfg.rebalance_interval_secs;
        let gain = |w: ClassWindow, budget: Bytes| -> f64 {
            // Missed bytes per budget byte: how starved the class is,
            // weighted by how much reuse each miss forfeited. A class
            // with no budget but any misses is maximally starved.
            w.missed_bytes as f64 / budget.as_u64().max(1) as f64
        };
        let user_gain = gain(self.windows[0], budgets[0]);
        let item_gain = gain(self.windows[1], budgets[1]);
        self.windows = [ClassWindow::default(); 2];
        if user_gain == item_gain {
            return None;
        }
        let direction = if user_gain > item_gain { 1.0 } else { -1.0 };
        let proposed = (self.user_share + direction * cfg.rebalance_step)
            .clamp(cfg.min_share, 1.0 - cfg.min_share);
        if proposed == self.user_share {
            return None;
        }
        self.user_share = proposed;
        Some(proposed)
    }
}

/// The tiered KV pool: the quantized cold tier behind the planner's hot
/// cache regions, with per-class budgets and an optional payload store.
///
/// Accounting (which entries are where, who gets evicted) lives in the
/// embedded [`TieredKvCache`]; this type layers the quantized byte
/// charging, the hotness-gated cold admission, the partition controller,
/// and — when [`TieredKvPool::demote_with_payload`] is used — real
/// [`QuantizedColBlock`] payloads that cold hits can attend over without
/// dequantizing.
#[derive(Debug, Clone)]
pub struct TieredKvPool {
    cfg: TiersConfig,
    core: TieredKvCache,
    hotness: FreqEstimator<CacheKey>,
    controller: PartitionController,
    brownout_cold_serves: u64,
    payloads: HashMap<CacheKey, QuantizedColBlock>,
    /// Full (f32) sizes of entries resident in the *external* hot region,
    /// registered at admission — an evicted victim's size is no longer
    /// queryable from the hot cache by the time its demotion is planned.
    hot_sizes: HashMap<CacheKey, Bytes>,
    /// Running total of `hot_sizes` (the hot-occupancy snapshot).
    hot_registered: Bytes,
}

impl TieredKvPool {
    /// A pool whose hot tier is managed externally (the planner's
    /// `UserCache` / item placement): only the cold side of the embedded
    /// core is used.
    pub fn new(cfg: TiersConfig) -> Self {
        let user_share = match cfg.split {
            SplitPolicy::Adaptive => 0.5,
            SplitPolicy::Static(s) => s,
            SplitPolicy::AllUser => 1.0,
        };
        let total = cfg.cold_capacity.as_u64();
        let user_budget = (total as f64 * user_share).round() as u64;
        let core = TieredKvCache::new(TieredKvConfig {
            // The hot tier lives outside the pool; the core's DRAM side
            // stays empty and only its cold regions are exercised.
            dram_capacity: Bytes::ZERO,
            cold_user_budget: Bytes::new(user_budget),
            cold_item_budget: Bytes::new(total - user_budget),
        });
        TieredKvPool {
            hotness: FreqEstimator::new(cfg.freq_window_secs),
            controller: PartitionController::new(user_share),
            brownout_cold_serves: 0,
            payloads: HashMap::new(),
            hot_sizes: HashMap::new(),
            hot_registered: Bytes::ZERO,
            core,
            cfg,
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &TiersConfig {
        &self.cfg
    }

    /// The embedded decision core (tests, invariant checks).
    pub fn core(&self) -> &TieredKvCache {
        &self.core
    }

    /// The decision digest: FNV-1a over every decision the pool has taken.
    pub fn digest(&self) -> u64 {
        self.core.digest()
    }

    /// The partition controller (current split inspection).
    pub fn controller(&self) -> &PartitionController {
        &self.controller
    }

    /// Cold-resident bytes for a hot footprint of `full` under the pool's
    /// format.
    pub fn cold_bytes(&self, full: Bytes) -> Bytes {
        self.cfg.format.cold_bytes(full)
    }

    /// Seconds to stream `bytes` from cold storage.
    pub fn cold_load_secs(&self, bytes: Bytes) -> f64 {
        bytes.as_u64() as f64 / self.cfg.cold_read_bandwidth
    }

    /// Records a hit served by the external hot region, keeping the
    /// ledger's lookup stream complete and the key's hotness fresh.
    pub fn note_hot_hit(&mut self, key: CacheKey, bytes: Bytes, now: f64) {
        self.hotness.record(key, now);
        self.core.note_hot_hit(key, bytes);
        self.tick(now);
    }

    /// Registers an entry the external hot region just admitted, with its
    /// full resident size — the size [`Self::demote_hot`] will charge when
    /// the hot region later evicts it.
    pub fn register_hot(&mut self, key: CacheKey, bytes: Bytes) {
        if let Some(old) = self.hot_sizes.insert(key, bytes) {
            self.hot_registered -= old;
        }
        self.hot_registered += bytes;
    }

    /// Demotes a victim the external hot region evicted, at the size it
    /// registered with. Unregistered victims are ignored (the hot region
    /// predates the pool, or the entry was invalidated).
    pub fn demote_hot(&mut self, key: CacheKey, now: f64) -> bool {
        match self.hot_sizes.remove(&key) {
            Some(bytes) => {
                self.hot_registered -= bytes;
                self.demote_inner(key, bytes, now, None)
            }
            None => false,
        }
    }

    /// Drops hot-size registrations for user entries of a crashed worker's
    /// partition (`user % num_workers == worker`), mirroring the hot
    /// region's fault invalidation. The cold tier is durable local storage
    /// and keeps its copies.
    pub fn forget_hot_partition(&mut self, worker: usize, num_workers: usize) {
        let mut freed = Bytes::ZERO;
        self.hot_sizes.retain(|key, bytes| {
            let dead = key
                .as_user()
                .is_some_and(|u| u.as_u64() % num_workers as u64 == worker as u64);
            if dead {
                freed += *bytes;
            }
            !dead
        });
        self.hot_registered -= freed;
    }

    /// Looks `key` up in the cold tier without promoting it, returning its
    /// cold-resident (quantized) size — the bytes actually streamed, since
    /// the dequant-fused kernels read the quantized planes directly.
    /// Counts a cold hit or a miss and feeds the partition controller;
    /// `full_bytes` is the uncompressed size the caller wanted, used to
    /// weight misses in the controller's marginal-gain windows.
    pub fn cold_lookup(&mut self, key: CacheKey, full_bytes: Bytes, now: f64) -> Option<Bytes> {
        self.hotness.record(key, now);
        let served = self.core.cold_serve(key);
        self.controller
            .record(EntryClass::of(key), served.is_some(), full_bytes);
        self.tick(now);
        served
    }

    /// Completes a cold hit's promotion into the external hot region: the
    /// cold copy (and its payload) is released. Call after the hot region
    /// actually admitted the entry; a rejected admission leaves the entry
    /// cold and this is simply not called.
    pub fn promote(&mut self, key: CacheKey) -> Option<Bytes> {
        let freed = self.core.promote_external(key);
        if freed.is_some() {
            self.payloads.remove(&key);
        }
        freed
    }

    /// Demotes an entry evicted from the hot region (or writes back a
    /// recomputed item) into the cold tier at its quantized size, subject
    /// to the hotness admission gate. Accounting only — the serve side
    /// uses [`Self::demote_with_payload`].
    pub fn demote(&mut self, key: CacheKey, full_bytes: Bytes, now: f64) -> bool {
        self.demote_inner(key, full_bytes, now, None)
    }

    /// [`Self::demote`] carrying the real block: quantized into the
    /// pool's format and stored, so a later cold hit can attend over it
    /// directly. Decisions are identical to the accounting-only path.
    pub fn demote_with_payload(
        &mut self,
        key: CacheKey,
        full_bytes: Bytes,
        now: f64,
        block: &ColBlock,
    ) -> bool {
        self.demote_inner(key, full_bytes, now, Some(block))
    }

    fn demote_inner(
        &mut self,
        key: CacheKey,
        full_bytes: Bytes,
        now: f64,
        block: Option<&ColBlock>,
    ) -> bool {
        if self.cfg.cold_admit_min_per_window > 0.0
            && self.hotness.per_window(&key, now) < self.cfg.cold_admit_min_per_window
        {
            self.core.drop_demotion(key, self.cold_bytes(full_bytes));
            return false;
        }
        let (entered, victims) = self.core.demote_external(key, self.cold_bytes(full_bytes));
        for victim in victims {
            self.payloads.remove(&victim);
        }
        if entered {
            if let (Some(block), Some(kind)) = (block, self.cfg.format.quant_kind()) {
                self.payloads
                    .insert(key, QuantizedColBlock::quantize(block, kind));
            }
        } else {
            self.payloads.remove(&key);
        }
        entered
    }

    /// The stored quantized payload of a cold-resident entry, for the
    /// dequant-fused attend path. `None` for accounting-only entries, the
    /// f32 control format, or keys no longer cold-resident.
    pub fn payload(&self, key: CacheKey) -> Option<&QuantizedColBlock> {
        self.core.cold_peek(key)?;
        self.payloads.get(&key)
    }

    /// Brownout rung-2 serve: the bytes of a cold-resident entry, served
    /// without promotion, counted separately so reports can show how often
    /// the ladder fell back to cold storage instead of recomputing.
    pub fn brownout_cold_serve(
        &mut self,
        key: CacheKey,
        full_bytes: Bytes,
        now: f64,
    ) -> Option<Bytes> {
        let served = self.cold_lookup(key, full_bytes, now);
        if served.is_some() {
            self.brownout_cold_serves += 1;
        }
        served
    }

    /// Advances the partition controller to `now`, applying a rebalance if
    /// one is due. Called implicitly by every lookup/hit note; exposed for
    /// idle-time advancement.
    pub fn tick(&mut self, now: f64) {
        if !matches!(self.cfg.split, SplitPolicy::Adaptive) {
            return;
        }
        let budgets = [
            self.core.cold_budget(EntryClass::User),
            self.core.cold_budget(EntryClass::Item),
        ];
        if let Some(share) = self.controller.maybe_rebalance(now, &self.cfg, budgets) {
            let total = self.cfg.cold_capacity.as_u64();
            let user = (total as f64 * share).round() as u64;
            let victims = self
                .core
                .set_cold_budgets(Bytes::new(user), Bytes::new(total - user));
            for victim in victims {
                self.payloads.remove(&victim);
            }
        }
    }

    /// The pool's ledger in the shared metrics schema.
    pub fn stats(&self) -> TierStats {
        let c = self.core.counters();
        TierStats {
            hot_hits: c.hot_hits,
            cold_hits: c.cold_hits,
            misses: c.misses,
            promotions: c.promotions,
            demotions: c.demotions,
            cold_evictions: c.cold_evictions,
            brownout_cold_serves: self.brownout_cold_serves,
            // In planner mode the hot tier is external (registered sizes);
            // in standalone mode it is the core's DRAM side. Exactly one
            // of the two is nonzero.
            hot_occupancy_bytes: (self.core.dram_used() + self.hot_registered).as_u64(),
            cold_occupancy_bytes: self.core.cold_used().as_u64(),
            user_budget_bytes: self.core.cold_budget(EntryClass::User).as_u64(),
            item_budget_bytes: self.core.cold_budget(EntryClass::Item).as_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::{ItemId, UserId};

    fn ukey(i: u64) -> CacheKey {
        CacheKey::User(UserId::new(i))
    }

    fn ikey(i: u64) -> CacheKey {
        CacheKey::Item(ItemId::new(i))
    }

    fn pool(cold: u64, split: SplitPolicy, format: ColdFormat) -> TieredKvPool {
        TieredKvPool::new(
            TiersConfig::new(Bytes::new(cold))
                .with_split(split)
                .with_format(format),
        )
    }

    #[test]
    fn quantized_formats_charge_less_cold_space() {
        let full = Bytes::new(1000);
        assert_eq!(ColdFormat::F32.cold_bytes(full), Bytes::new(1000));
        assert_eq!(ColdFormat::F16.cold_bytes(full), Bytes::new(500));
        assert_eq!(ColdFormat::Int8.cold_bytes(full), Bytes::new(250));
    }

    #[test]
    fn quantization_raises_effective_cold_capacity() {
        // Four 1000-byte entries into a 2000-byte cold tier: f32 keeps 2,
        // int8 keeps all 4.
        for (format, expect_hits) in [(ColdFormat::F32, 2), (ColdFormat::Int8, 4)] {
            let mut p = pool(2000, SplitPolicy::AllUser, format);
            for i in 0..4 {
                p.demote(ukey(i), Bytes::new(1000), 0.0);
            }
            let hits = (0..4)
                .filter(|&i| p.cold_lookup(ukey(i), Bytes::new(1000), 1.0).is_some())
                .count();
            assert_eq!(hits, expect_hits, "{format:?}");
        }
    }

    #[test]
    fn all_user_split_drops_item_demotions() {
        let mut p = pool(1000, SplitPolicy::AllUser, ColdFormat::F32);
        assert!(!p.demote(ikey(1), Bytes::new(100), 0.0));
        assert!(p.demote(ukey(1), Bytes::new(100), 0.0));
        assert_eq!(p.cold_lookup(ikey(1), Bytes::new(100), 1.0), None);
        assert!(p.cold_lookup(ukey(1), Bytes::new(100), 1.0).is_some());
    }

    #[test]
    fn static_split_divides_the_budget() {
        let p = pool(1000, SplitPolicy::Static(0.3), ColdFormat::F32);
        assert_eq!(p.core().cold_budget(EntryClass::User), Bytes::new(300));
        assert_eq!(p.core().cold_budget(EntryClass::Item), Bytes::new(700));
    }

    #[test]
    fn adaptive_split_moves_budget_toward_the_starved_class() {
        let mut p = pool(1000, SplitPolicy::Adaptive, ColdFormat::F32);
        // Window 1 (arms the schedule), then a window of pure item misses.
        p.cold_lookup(ikey(1), Bytes::new(100), 0.0);
        for t in 0..20 {
            p.cold_lookup(ikey(t), Bytes::new(100), 6.0 + t as f64 * 0.01);
        }
        // Crossing the next interval boundary applies the rebalance.
        p.tick(12.0);
        let user_budget = p.core().cold_budget(EntryClass::User);
        assert!(
            user_budget < Bytes::new(500),
            "item misses should pull budget from the user class, got {user_budget}"
        );
        assert_eq!(
            user_budget + p.core().cold_budget(EntryClass::Item),
            Bytes::new(1000),
            "budget is conserved"
        );
    }

    #[test]
    fn adaptive_split_respects_the_min_share_floor() {
        let mut p = pool(1000, SplitPolicy::Adaptive, ColdFormat::F32);
        let mut now = 0.0;
        for round in 0..20 {
            for t in 0..10 {
                p.cold_lookup(ikey(round * 10 + t), Bytes::new(100), now + t as f64 * 0.01);
            }
            now += 6.0;
            p.tick(now);
        }
        let share = p.controller().user_share();
        assert!(
            (share - 0.1).abs() < 1e-9,
            "clamped to min_share, got {share}"
        );
    }

    #[test]
    fn hotness_gate_drops_cold_demotions() {
        let mut cfg = TiersConfig::new(Bytes::new(1000)).with_format(ColdFormat::F32);
        cfg.cold_admit_min_per_window = 2.0;
        cfg.split = SplitPolicy::AllUser;
        let mut p = TieredKvPool::new(cfg);
        // One access: below the 2-per-window threshold → dropped.
        p.note_hot_hit(ukey(1), Bytes::new(100), 0.0);
        assert!(!p.demote(ukey(1), Bytes::new(100), 0.1));
        // Three rapid accesses: above threshold → admitted.
        for t in 0..3 {
            p.note_hot_hit(ukey(2), Bytes::new(100), 0.2 + t as f64 * 0.1);
        }
        assert!(p.demote(ukey(2), Bytes::new(100), 0.6));
        let stats = p.stats();
        assert_eq!(stats.demotions, 2);
        assert_eq!(stats.cold_evictions, 1);
    }

    #[test]
    fn payloads_follow_the_accounting_decisions() {
        // 1000 full bytes charge 250 cold bytes under int8; a 600-byte
        // cold tier holds two entries and evicts the LRU on the third.
        let mut p = pool(600, SplitPolicy::AllUser, ColdFormat::Int8);
        let mut block = ColBlock::new(2);
        for c in 0..8 {
            block.push_col(&[c as f32, -(c as f32)]);
        }
        assert!(p.demote_with_payload(ukey(1), Bytes::new(1000), 0.0, &block));
        let q = p.payload(ukey(1)).expect("payload stored");
        let back = q.dequantize();
        for r in 0..2 {
            for (x, y) in block.plane(r).iter().zip(back.plane(r)) {
                assert!((x - y).abs() <= q.error_bound(r));
            }
        }
        // Evicting the entry (capacity pressure) drops the payload.
        assert!(p.demote_with_payload(ukey(2), Bytes::new(1000), 1.0, &block));
        assert!(p.demote_with_payload(ukey(3), Bytes::new(1000), 2.0, &block));
        assert!(p.payload(ukey(1)).is_none(), "evicted with its accounting");
        // Promotion releases the cold copy and payload.
        assert!(p.cold_lookup(ukey(3), Bytes::new(1000), 3.0).is_some());
        p.promote(ukey(3));
        assert!(p.payload(ukey(3)).is_none());
        assert_eq!(p.core().cold_peek(ukey(3)), None);
    }

    #[test]
    fn accounting_only_and_payload_pools_share_one_digest() {
        let mut block = ColBlock::new(2);
        for c in 0..4 {
            block.push_col(&[c as f32, 0.5]);
        }
        let mut a = pool(2000, SplitPolicy::Static(0.5), ColdFormat::F16);
        let mut b = pool(2000, SplitPolicy::Static(0.5), ColdFormat::F16);
        for i in 0..30u64 {
            let key = if i % 3 == 0 { ikey(i % 7) } else { ukey(i % 5) };
            let now = i as f64 * 0.25;
            a.demote(key, Bytes::new(300), now);
            b.demote_with_payload(key, Bytes::new(300), now, &block);
            assert_eq!(
                a.cold_lookup(ukey(i % 4), Bytes::new(300), now + 0.1),
                b.cold_lookup(ukey(i % 4), Bytes::new(300), now + 0.1)
            );
        }
        assert_eq!(a.digest(), b.digest(), "payloads must not change decisions");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn brownout_cold_serves_are_counted_separately() {
        let mut p = pool(1000, SplitPolicy::Static(0.5), ColdFormat::F16);
        p.demote(ikey(1), Bytes::new(400), 0.0);
        assert!(p
            .brownout_cold_serve(ikey(1), Bytes::new(400), 1.0)
            .is_some());
        assert_eq!(p.brownout_cold_serve(ikey(2), Bytes::new(400), 1.1), None);
        let stats = p.stats();
        assert_eq!(stats.brownout_cold_serves, 1);
        assert_eq!(stats.cold_hits, 1);
        assert!(stats.conserved());
    }

    #[test]
    fn config_validation_rejects_bad_ranges() {
        let ok = TiersConfig::new(Bytes::new(1000));
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.split = SplitPolicy::Static(1.5);
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.min_share = 0.5;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.cold_read_bandwidth = 0.0;
        assert!(bad.validate().is_err());
    }
}
