//! SLO-aware admission control and brownout ladder.
//!
//! [`OverloadController`] is the control plane both execution paths share.
//! It keeps a *virtual backlog*: an analytic model of how many seconds of
//! work have been admitted but not yet drained, fed only by nominal arrival
//! times and planner cost estimates — never wall-clock readings — so
//! `bat-sim` and `bat-serve` make bit-identical admission decisions for the
//! same trace, schedule, and seed.
//!
//! The backlog drains at the cluster's live capacity (workers weighted by
//! any straggler slowdown). Pressure = estimated queueing delay divided by
//! the configured bound. Three decisions fall out of it:
//!
//! 1. **Reject-on-arrival** — a request whose estimated wait already blows
//!    the queue bound ([`RejectReason::QueueFull`]) or whose wait + service
//!    cannot meet its deadline ([`RejectReason::DeadlineInfeasible`]) is
//!    refused before any cache state is touched.
//! 2. **Brownout ladder** — sustained pressure escalates through three
//!    rungs with hysteresis: (1) suspend background re-warm/refresh work,
//!    (2) degrade cold remote KV pulls to local recompute, (3) shed
//!    [`Priority::Low`](bat_types::Priority) requests at admission
//!    ([`RejectReason::BrownoutShed`]).
//! 3. **Goodput protection** — everything admitted is work the cluster can
//!    actually finish, so deadline-miss rates stay bounded under overload
//!    instead of collapsing the whole latency distribution.

use bat_types::{Priority, RejectReason};
use serde::{Deserialize, Serialize};

/// Configuration of the overload control plane. `None` of these values
/// depend on the run; the controller's state does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Maximum tolerated estimated queueing delay, seconds. Arrivals whose
    /// estimated wait exceeds this are rejected with
    /// [`RejectReason::QueueFull`].
    pub max_backlog_secs: f64,
    /// Pressure (estimated wait / `max_backlog_secs`) at which rung 1
    /// engages: background re-warm/refresh work is suspended.
    pub rung1_pressure: f64,
    /// Pressure at which rung 2 engages: cold remote pulls degrade to
    /// local recompute — or, when the tiered KV pool is enabled, are
    /// served from the local quantized cold tier, which costs neither
    /// fabric nor recompute.
    pub rung2_pressure: f64,
    /// Pressure at which rung 3 engages: `Priority::Low` requests shed.
    pub rung3_pressure: f64,
    /// Hysteresis gap: a rung engaged at pressure `p` only releases below
    /// `p - hysteresis`, so the ladder doesn't flap at a threshold.
    pub hysteresis: f64,
    /// Base backoff delay for retried remote pulls, seconds.
    pub retry_backoff_secs: f64,
    /// Seed for the jittered-backoff RNG (drawn in arrival order, so the
    /// jitter stream is identical across execution paths).
    pub retry_seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_backlog_secs: 1.0,
            rung1_pressure: 0.5,
            rung2_pressure: 0.7,
            rung3_pressure: 0.85,
            hysteresis: 0.15,
            retry_backoff_secs: 0.002,
            retry_seed: 0x510_B0FF,
        }
    }
}

impl OverloadConfig {
    /// Validates threshold ordering and positivity.
    ///
    /// # Errors
    ///
    /// Returns [`bat_types::BatError::InvalidConfig`] naming the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), bat_types::BatError> {
        let invalid = |msg: &str| Err(bat_types::BatError::InvalidConfig(msg.to_owned()));
        if !(self.max_backlog_secs.is_finite() && self.max_backlog_secs > 0.0) {
            return invalid("overload max_backlog_secs must be finite and > 0");
        }
        if !(0.0 < self.rung1_pressure
            && self.rung1_pressure <= self.rung2_pressure
            && self.rung2_pressure <= self.rung3_pressure
            && self.rung3_pressure <= 1.0)
        {
            return invalid("overload rung pressures must satisfy 0 < r1 <= r2 <= r3 <= 1");
        }
        if !(self.hysteresis.is_finite() && self.hysteresis >= 0.0) {
            return invalid("overload hysteresis must be finite and >= 0");
        }
        if !(self.retry_backoff_secs.is_finite() && self.retry_backoff_secs >= 0.0) {
            return invalid("overload retry_backoff_secs must be finite and >= 0");
        }
        Ok(())
    }
}

/// What the controller decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Do the work.
    Admit,
    /// Refuse it, for the given reason.
    Reject(RejectReason),
}

impl AdmitDecision {
    /// The decision as a typed result, so every shed point surfaces the
    /// same [`bat_types::BatError::Rejected`] error.
    ///
    /// # Errors
    ///
    /// Returns the rejection as an error when the decision was `Reject`.
    pub fn into_result(self) -> Result<(), bat_types::BatError> {
        match self {
            AdmitDecision::Admit => Ok(()),
            AdmitDecision::Reject(reason) => Err(bat_types::BatError::Rejected { reason }),
        }
    }
}

/// Deterministic admission + brownout state machine (see module docs).
#[derive(Debug, Clone)]
pub struct OverloadController {
    cfg: OverloadConfig,
    /// Admitted-but-undrained work, in service-seconds.
    backlog_secs: f64,
    /// Nominal time of the last backlog update.
    last_update: f64,
    /// Live drain rate: service-seconds retired per second of trace time
    /// (live workers weighted by straggler slowdown).
    capacity: f64,
    /// Service-seconds actually queued or seated in the slot-based batch
    /// scheduler (0 when continuous batching is off). A floor under the
    /// analytic backlog: the drain model assumes work retires at capacity
    /// from the moment it is admitted, but slot occupancy is ground truth.
    slot_backlog_secs: f64,
    rung: u8,
    transitions: u64,
    max_rung: u8,
}

impl OverloadController {
    /// A controller starting idle at `capacity` (see
    /// [`OverloadController::set_capacity`]).
    pub fn new(cfg: OverloadConfig, capacity: f64) -> Self {
        OverloadController {
            cfg,
            backlog_secs: 0.0,
            last_update: 0.0,
            capacity: capacity.max(f64::MIN_POSITIVE),
            slot_backlog_secs: 0.0,
            rung: 0,
            transitions: 0,
            max_rung: 0,
        }
    }

    /// The configuration the controller runs under.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Updates the drain rate after a membership change: the sum over live
    /// workers of `1 / slowdown`, so one 5x straggler in a 4-node cluster
    /// contributes 0.2 workers of capacity, not 1.
    pub fn set_capacity(&mut self, capacity: f64) {
        self.capacity = capacity.max(f64::MIN_POSITIVE);
    }

    /// Drains the virtual backlog up to nominal time `now`. Time never runs
    /// backwards (out-of-order arrivals clamp to the last update).
    fn drain_to(&mut self, now: f64) {
        let dt = (now - self.last_update).max(0.0);
        self.backlog_secs = (self.backlog_secs - dt * self.capacity).max(0.0);
        self.last_update = self.last_update.max(now);
    }

    /// Feeds the slot scheduler's occupancy (queued + seated priced
    /// service, seconds) into the wait estimate. Both engines call this
    /// with the machine's nominal ledger immediately before each
    /// [`OverloadController::on_arrival`], so admission decisions stay
    /// bit-identical across execution paths. Calling it with `0.0` (or
    /// never) reproduces the pre-batching controller exactly.
    pub fn set_slot_backlog(&mut self, secs: f64) {
        self.slot_backlog_secs = secs.max(0.0);
    }

    /// Estimated queueing delay an arrival would see right now, seconds:
    /// the analytic backlog floored by observed slot occupancy.
    pub fn estimated_wait_secs(&self) -> f64 {
        self.backlog_secs.max(self.slot_backlog_secs) / self.capacity
    }

    /// Current pressure: estimated wait over the configured bound.
    pub fn pressure(&self) -> f64 {
        self.estimated_wait_secs() / self.cfg.max_backlog_secs
    }

    /// Re-evaluates the brownout rung under hysteresis at current pressure.
    fn update_rung(&mut self) {
        let p = self.pressure();
        let engage = [
            self.cfg.rung1_pressure,
            self.cfg.rung2_pressure,
            self.cfg.rung3_pressure,
        ];
        let mut rung = 0u8;
        for (i, &threshold) in engage.iter().enumerate() {
            let r = (i + 1) as u8;
            // A rung already held only releases below threshold - hysteresis.
            let bar = if self.rung >= r {
                threshold - self.cfg.hysteresis
            } else {
                threshold
            };
            if p >= bar {
                rung = r;
            }
        }
        if rung != self.rung {
            self.rung = rung;
            self.transitions += 1;
            self.max_rung = self.max_rung.max(rung);
        }
    }

    /// Decides one arrival at nominal time `now` with estimated service
    /// cost `est_service_secs`. On `Admit` the cost is charged to the
    /// backlog; on `Reject` nothing is.
    pub fn on_arrival(
        &mut self,
        now: f64,
        est_service_secs: f64,
        deadline_secs: Option<f64>,
        priority: Priority,
    ) -> AdmitDecision {
        self.drain_to(now);
        self.update_rung();
        let wait = self.estimated_wait_secs();
        if wait > self.cfg.max_backlog_secs {
            return AdmitDecision::Reject(RejectReason::QueueFull);
        }
        if self.rung >= 3 && priority == Priority::Low {
            return AdmitDecision::Reject(RejectReason::BrownoutShed);
        }
        if let Some(d) = deadline_secs {
            // Admitting work that cannot finish in time only wastes the
            // capacity other requests need; refuse it up front. High
            // priority doesn't override physics.
            if wait + est_service_secs > d {
                return AdmitDecision::Reject(RejectReason::DeadlineInfeasible);
            }
        }
        self.backlog_secs += est_service_secs;
        self.update_rung();
        AdmitDecision::Admit
    }

    /// Current brownout rung (0 = nominal … 3 = shedding).
    pub fn rung(&self) -> u8 {
        self.rung
    }

    /// Rung transitions so far (escalations and relaxations).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Deepest rung reached so far.
    pub fn max_rung(&self) -> u8 {
        self.max_rung
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(capacity: f64) -> OverloadController {
        OverloadController::new(OverloadConfig::default(), capacity)
    }

    #[test]
    fn idle_controller_admits_everything() {
        let mut c = ctl(1.0);
        for i in 0..10 {
            let d = c.on_arrival(i as f64, 0.01, Some(0.5), Priority::Normal);
            assert_eq!(d, AdmitDecision::Admit);
        }
        assert_eq!(c.rung(), 0);
        assert_eq!(c.transitions(), 0);
    }

    #[test]
    fn saturation_rejects_queue_full() {
        let mut c = ctl(1.0);
        // Offered load far beyond capacity at one instant: the backlog
        // cannot drain, so admissions stop at the bound.
        let mut admitted = 0;
        let mut rejected = 0;
        for _ in 0..100 {
            match c.on_arrival(0.0, 0.05, None, Priority::Normal) {
                AdmitDecision::Admit => admitted += 1,
                AdmitDecision::Reject(RejectReason::QueueFull) => rejected += 1,
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert!(admitted > 0 && rejected > 0);
        // Bound holds: ~max_backlog_secs of work at 0.05s each, +1 for the
        // arrival that crossed the line.
        assert!(admitted <= 21, "admitted {admitted} past the bound");
    }

    #[test]
    fn infeasible_deadlines_are_rejected_before_queue_full() {
        let mut c = ctl(1.0);
        assert_eq!(
            c.on_arrival(0.0, 0.4, Some(0.3), Priority::High),
            AdmitDecision::Reject(RejectReason::DeadlineInfeasible)
        );
        // Feasible deadline admits fine.
        assert_eq!(
            c.on_arrival(0.0, 0.2, Some(0.3), Priority::High),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn brownout_ladder_escalates_and_releases_with_hysteresis() {
        let mut c = ctl(1.0);
        // Push pressure to ~0.9: rung 3 engages.
        c.on_arrival(0.0, 0.9, None, Priority::Normal);
        c.on_arrival(0.0, 0.0, None, Priority::Normal);
        assert_eq!(c.rung(), 3);
        assert_eq!(
            c.on_arrival(0.0, 0.0, None, Priority::Low),
            AdmitDecision::Reject(RejectReason::BrownoutShed)
        );
        // Normal priority still admitted under rung 3.
        assert_eq!(
            c.on_arrival(0.0, 0.0, None, Priority::Normal),
            AdmitDecision::Admit
        );
        // Drain to pressure ~0.75: above rung3 - hysteresis (0.70) so rung 3
        // holds; then below it, the ladder steps down.
        c.on_arrival(0.15, 0.0, None, Priority::Normal);
        assert_eq!(c.rung(), 3, "hysteresis holds the rung");
        c.on_arrival(0.35, 0.0, None, Priority::Normal);
        assert!(c.rung() < 3, "draining releases the rung");
        assert_eq!(c.max_rung(), 3);
        assert!(c.transitions() >= 2);
    }

    #[test]
    fn straggler_weighted_capacity_slows_drain() {
        let mut fast = ctl(4.0);
        let mut slow = ctl(3.2); // 4 workers, one at 5x: 3 + 1/5
        fast.on_arrival(0.0, 2.0, None, Priority::Normal);
        slow.on_arrival(0.0, 2.0, None, Priority::Normal);
        fast.on_arrival(0.4, 0.0, None, Priority::Normal);
        slow.on_arrival(0.4, 0.0, None, Priority::Normal);
        assert!(fast.estimated_wait_secs() < slow.estimated_wait_secs());
    }

    #[test]
    fn slot_backlog_floors_the_wait_estimate() {
        let mut c = ctl(1.0);
        // Analytic backlog drained long ago, but the slot machine still
        // holds 0.9s of seated work: the wait estimate must see it.
        c.set_slot_backlog(0.9);
        assert!((c.estimated_wait_secs() - 0.9).abs() < 1e-12);
        assert_eq!(
            c.on_arrival(10.0, 0.3, Some(1.0), Priority::Normal),
            AdmitDecision::Reject(RejectReason::DeadlineInfeasible)
        );
        // Clearing the slot signal restores the analytic-only estimate.
        c.set_slot_backlog(0.0);
        assert_eq!(
            c.on_arrival(10.0, 0.3, Some(1.0), Priority::Normal),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn config_validation_catches_misordered_rungs() {
        let mut cfg = OverloadConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.rung1_pressure = 0.9;
        cfg.rung2_pressure = 0.5;
        assert!(cfg.validate().is_err());
        let bad = OverloadConfig {
            max_backlog_secs: 0.0,
            ..OverloadConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn decisions_are_deterministic_in_inputs() {
        let run = || {
            let mut c = ctl(2.0);
            (0..200)
                .map(|i| {
                    let now = i as f64 * 0.01;
                    let pri = match i % 3 {
                        0 => Priority::Low,
                        1 => Priority::Normal,
                        _ => Priority::High,
                    };
                    c.on_arrival(now, 0.03, Some(0.2), pri)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
