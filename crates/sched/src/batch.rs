//! The max-batched-tokens batch former.
//!
//! §5.1: "To meet the latency SLA, we enforce a *max-batched-tokens* limit,
//! e.g. 4000 tokens, with the value determined via offline profiling."
//! Inference workers process the prefill queue in batches whose **newly
//! computed** token counts sum to at most the limit; a single request whose
//! suffix alone exceeds the limit still runs (alone) — the limit bounds
//! batching, it does not reject work.

use bat_types::RequestId;

/// Forms batches under a token budget, preserving arrival order (FIFO — the
/// paper's scheduler dispatches load-balanced FIFO batches).
///
/// ```
/// use bat_sched::BatchFormer;
/// use bat_types::RequestId;
///
/// let former = BatchFormer::new(4000);
/// let queue = [(RequestId::new(1), 2500), (RequestId::new(2), 1200),
///              (RequestId::new(3), 900)];
/// let batches = former.form(&queue);
/// // 2500 + 1200 fits; 900 starts the next batch.
/// assert_eq!(batches.len(), 2);
/// assert_eq!(batches[0].len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchFormer {
    max_tokens: u32,
}

impl BatchFormer {
    /// Creates a former with the given per-batch token budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_tokens` is zero.
    pub fn new(max_tokens: u32) -> Self {
        assert!(max_tokens > 0, "token budget must be positive");
        BatchFormer { max_tokens }
    }

    /// The configured budget.
    pub fn max_tokens(&self) -> u32 {
        self.max_tokens
    }

    /// Greedily packs `(request, computed_tokens)` pairs into consecutive
    /// batches: a request joins the current batch if it fits, otherwise it
    /// starts a new one. Oversized requests form singleton batches.
    pub fn form(&self, queue: &[(RequestId, u32)]) -> Vec<Vec<(RequestId, u32)>> {
        let mut batches: Vec<Vec<(RequestId, u32)>> = Vec::new();
        let mut current: Vec<(RequestId, u32)> = Vec::new();
        let mut current_tokens = 0u32;
        for &(id, tokens) in queue {
            if !current.is_empty() && current_tokens.saturating_add(tokens) > self.max_tokens {
                batches.push(std::mem::take(&mut current));
                current_tokens = 0;
            }
            current.push((id, tokens));
            current_tokens += tokens;
        }
        if !current.is_empty() {
            batches.push(current);
        }
        batches
    }

    /// Takes as many leading requests as fit one batch from a FIFO queue,
    /// returning how many to pop (at least 1 if non-empty: oversized heads
    /// run alone).
    pub fn take_batch(&self, queue: &[u32]) -> usize {
        let mut total = 0u32;
        let mut n = 0usize;
        for &tokens in queue {
            if n > 0 && total.saturating_add(tokens) > self.max_tokens {
                break;
            }
            total = total.saturating_add(tokens);
            n += 1;
            if total >= self.max_tokens {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rid(i: u64) -> RequestId {
        RequestId::new(i)
    }

    #[test]
    fn packs_under_budget() {
        let f = BatchFormer::new(100);
        let q = [(rid(1), 40), (rid(2), 50), (rid(3), 30)];
        let batches = f.form(&q);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 2); // 40 + 50
        assert_eq!(batches[1].len(), 1); // 30
    }

    #[test]
    fn oversized_request_runs_alone() {
        let f = BatchFormer::new(100);
        let q = [(rid(1), 250), (rid(2), 10)];
        let batches = f.form(&q);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], vec![(rid(1), 250)]);
    }

    #[test]
    fn order_is_preserved() {
        let f = BatchFormer::new(50);
        let q: Vec<_> = (0..10).map(|i| (rid(i), 20u32)).collect();
        let flat: Vec<u64> = f
            .form(&q)
            .into_iter()
            .flatten()
            .map(|(id, _)| id.as_u64())
            .collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn take_batch_matches_form_head() {
        let f = BatchFormer::new(100);
        let tokens = [40u32, 50, 30, 90];
        assert_eq!(f.take_batch(&tokens), 2);
        assert_eq!(f.take_batch(&tokens[2..]), 1);
        assert_eq!(f.take_batch(&[]), 0);
        assert_eq!(f.take_batch(&[500]), 1, "oversized head still runs");
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = BatchFormer::new(0);
    }

    proptest! {
        /// No batch except singletons exceeds the budget, and every request
        /// appears exactly once.
        #[test]
        fn batches_respect_budget(tokens in proptest::collection::vec(1u32..3000, 0..50), budget in 1u32..5000) {
            let f = BatchFormer::new(budget);
            let q: Vec<_> = tokens.iter().enumerate().map(|(i, &t)| (rid(i as u64), t)).collect();
            let batches = f.form(&q);
            let mut count = 0;
            for b in &batches {
                prop_assert!(!b.is_empty());
                let sum: u32 = b.iter().map(|&(_, t)| t).sum();
                if b.len() > 1 {
                    prop_assert!(sum <= budget);
                }
                count += b.len();
            }
            prop_assert_eq!(count, q.len());
        }
    }
}
