//! Continuous cross-request batching: a slot-based, nominal-time batch
//! scheduler shared verbatim by `bat-sim` and `bat-serve`.
//!
//! The PR-2 batch former ([`crate::BatchFormer`]) fuses work *within* one
//! worker's arrival-time queue: a request is pinned to a worker when it
//! arrives, and a fused batch runs to completion monolithically. Between
//! request boundaries the pool drains and the SIMD kernels starve. This
//! module replaces that with iteration-level scheduling in the style of
//! vLLM / xGR:
//!
//! * Every worker owns a fixed number of **seats**
//!   ([`BatchingConfig::slots_per_worker`]). A seated request contributes
//!   one **chunk** (up to [`BatchingConfig::chunk_tokens`] tokens) to each
//!   of the worker's **rounds**; one round fuses one chunk from every
//!   seated request under a single batch overhead.
//! * Requests wait in one **global FIFO**, not per-worker queues. The
//!   moment any request retires its last chunk, its seat is refilled from
//!   the global queue *at that same round boundary* — the worker never
//!   idles between requests while work is pending, and load imbalance
//!   cannot strand work behind a busy worker.
//! * Chunks inherit their request's `SloBudget`: a request whose deadline
//!   expires while waiting in the global queue is shed at the next seating
//!   attempt, exactly like the PR-5 queue sweep, so the conservation law
//!   `submitted == completed + shed + rejected` carries over unchanged.
//!
//! **Determinism rule.** The scheduler is a pure state machine over
//! *nominal* times: admissions carry trace arrival timestamps, round
//! finish times are computed from priced service costs, and the internal
//! event heap is keyed on `(nanoseconds, worker, generation)` exactly like
//! the simulator's heap. Neither engine feeds it a wall-clock reading, so
//! the simulator and the threaded runtime form bit-identical batches — the
//! round/chunk/refill counters are folded into `RunStats::digest` and
//! pinned across engines and thread counts by the integration suite.
//!
//! Round service is priced like the engine's monolithic batches: each
//! chunk costs its request's priced service scaled by the chunk's token
//! share, and a round costs `(batch_overhead + Σ chunk costs) ×
//! straggler_factor(worker)` — so continuous batching amortizes the fixed
//! overhead over every seated request instead of paying it per request.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bat_metrics::BatchStats;

/// Configuration of the slot-based continuous batch scheduler.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchingConfig {
    /// Seats per worker: the maximum number of requests fused into one
    /// round. More seats amortize the batch overhead further but grow the
    /// per-round latency of every seated request.
    pub slots_per_worker: usize,
    /// Maximum tokens a seated request contributes per round. Smaller
    /// chunks interleave requests more finely (lower head-of-line
    /// blocking) at the cost of more rounds.
    pub chunk_tokens: u64,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            slots_per_worker: 4,
            chunk_tokens: 64,
        }
    }
}

impl BatchingConfig {
    /// Validates positivity of both knobs.
    ///
    /// # Errors
    ///
    /// Returns [`bat_types::BatError::InvalidConfig`] naming the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), bat_types::BatError> {
        let invalid = |msg: &str| Err(bat_types::BatError::InvalidConfig(msg.to_owned()));
        if self.slots_per_worker == 0 {
            return invalid("batching slots_per_worker must be >= 1");
        }
        if self.chunk_tokens == 0 {
            return invalid("batching chunk_tokens must be >= 1");
        }
        Ok(())
    }
}

/// One fused round the scheduler started: the unit the serving runtime
/// physically dispatches to a worker thread/process.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Monotone round sequence number (dispatch/ack correlation key).
    pub seq: u64,
    /// Worker the round runs on.
    pub worker: usize,
    /// Nominal start time, seconds.
    pub start: f64,
    /// Nominal finish time, seconds.
    pub finish: f64,
    /// Priced round service (overhead + chunks, straggler-scaled), seconds.
    pub service_secs: f64,
    /// Tokens fused into the round.
    pub tokens: u64,
    /// Trace indices of the requests contributing a chunk, in seat order.
    pub requests: Vec<usize>,
}

/// A request that retired its final chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCompletion {
    /// Trace index of the request.
    pub idx: usize,
    /// Nominal completion time, seconds.
    pub at: f64,
}

/// A request shed from the global queue (deadline expired before it could
/// be seated, or no live worker remained at drain time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchShed {
    /// Trace index of the request.
    pub idx: usize,
    /// Nominal shed time, seconds.
    pub at: f64,
}

/// A request's remaining work while queued or seated.
#[derive(Debug, Clone, Copy)]
struct SlotReq {
    idx: usize,
    total_tokens: u64,
    done_tokens: u64,
    service_secs: f64,
    deadline: Option<f64>,
    /// When the request entered the global queue (arrival, or the crash
    /// that re-queued it) — the reference point for idle-gap attribution.
    queued_at: f64,
}

impl SlotReq {
    fn remaining_tokens(&self) -> u64 {
        self.total_tokens - self.done_tokens
    }

    /// Priced cost of the request's next `chunk` tokens: the total priced
    /// service scaled by the chunk's token share. Summing over a request's
    /// chunks telescopes back to exactly its token-proportional split of
    /// `service_secs`, so chunking redistributes cost over time without
    /// inventing or losing any.
    fn chunk_service(&self, chunk: u64) -> f64 {
        self.service_secs * (chunk as f64 / self.total_tokens as f64)
    }
}

/// A round in flight on one worker.
#[derive(Debug, Clone)]
struct InflightRound {
    finish: f64,
    /// Chunk sizes, parallel to the worker's seat order at round start.
    chunks: Vec<u64>,
}

#[derive(Debug, Clone)]
struct WorkerSlots {
    seated: Vec<SlotReq>,
    inflight: Option<InflightRound>,
    alive: bool,
    /// Planned departure in progress: the in-flight round runs to
    /// completion, then the remaining seated work migrates and the worker
    /// retires. No new seats fill and no new rounds start meanwhile.
    draining: bool,
    /// Bumped on crash so stale finish events are recognized and dropped.
    gen: u64,
    last_finish: f64,
}

/// The slot-based continuous batch scheduler (see module docs).
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    cfg: BatchingConfig,
    batch_overhead_secs: f64,
    /// Per-worker service multiplier (1.0 nominal, >1 for stragglers).
    speeds: Vec<f64>,
    now: f64,
    pending: VecDeque<SlotReq>,
    workers: Vec<WorkerSlots>,
    /// Min-heap of round finish events: `(finish_ns, worker, generation)`.
    events: BinaryHeap<Reverse<(u64, usize, u64)>>,
    round_seq: u64,
    stats: BatchStats,
    completions: Vec<BatchCompletion>,
    sheds: Vec<BatchShed>,
    rounds: Vec<RoundRecord>,
}

/// Nominal seconds → integer event key, the simulator's convention.
#[inline]
fn time_key(t: f64) -> u64 {
    (t * 1e9) as u64
}

impl BatchScheduler {
    /// A scheduler over `speeds.len()` live workers, each seat-limited by
    /// `cfg`, pricing every round under `batch_overhead_secs` and the
    /// worker's straggler multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `speeds` is empty or `cfg` fails validation.
    pub fn new(cfg: BatchingConfig, batch_overhead_secs: f64, speeds: Vec<f64>) -> Self {
        cfg.validate().expect("invalid batching config");
        assert!(!speeds.is_empty(), "batch scheduler needs >= 1 worker");
        let workers = speeds
            .iter()
            .map(|_| WorkerSlots {
                seated: Vec::new(),
                inflight: None,
                alive: true,
                draining: false,
                gen: 0,
                last_finish: 0.0,
            })
            .collect();
        BatchScheduler {
            cfg,
            batch_overhead_secs,
            speeds,
            now: 0.0,
            pending: VecDeque::new(),
            workers,
            events: BinaryHeap::new(),
            round_seq: 0,
            stats: BatchStats::default(),
            completions: Vec::new(),
            sheds: Vec::new(),
            rounds: Vec::new(),
        }
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &BatchingConfig {
        &self.cfg
    }

    /// Current nominal time (last event or admission processed).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of currently-live workers.
    pub fn alive_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Un-retired priced service currently queued or seated, seconds
    /// (pre-straggler, overhead excluded). This is the slot-occupancy
    /// signal the overload controller folds into its admission backlog
    /// estimate: it reflects work the analytic drain model may have
    /// already written off.
    pub fn outstanding_service_secs(&self) -> f64 {
        let queued: f64 = self
            .pending
            .iter()
            .map(|r| r.chunk_service(r.remaining_tokens()))
            .sum();
        let seated: f64 = self
            .workers
            .iter()
            .flat_map(|w| w.seated.iter())
            .map(|r| r.chunk_service(r.remaining_tokens()))
            .sum();
        queued + seated
    }

    /// The batch-formation ledger so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Requests completed since the last drain, in completion order.
    pub fn drain_completions(&mut self) -> Vec<BatchCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Requests shed since the last drain, in shed order.
    pub fn drain_sheds(&mut self) -> Vec<BatchShed> {
        std::mem::take(&mut self.sheds)
    }

    /// Rounds started since the last drain, in start order. The serving
    /// runtime dispatches each as one physical worker task.
    pub fn drain_rounds(&mut self) -> Vec<RoundRecord> {
        std::mem::take(&mut self.rounds)
    }

    /// Advances nominal time to `now`, retiring every round that finishes
    /// at or before it (ties resolve in `(time, worker, generation)` key
    /// order, matching the simulator's heap discipline).
    pub fn advance(&mut self, now: f64) {
        let key = time_key(now);
        while let Some(&Reverse((t, w, gen))) = self.events.peek() {
            if t > key {
                break;
            }
            self.events.pop();
            self.process_finish(w, gen);
        }
        self.now = self.now.max(now);
    }

    /// Retires one popped finish event, dropping stale entries from
    /// cancelled (crashed) rounds.
    fn process_finish(&mut self, w: usize, gen: u64) {
        if self.workers[w].gen != gen || !self.workers[w].alive {
            return;
        }
        let Some(round) = self.workers[w].inflight.take() else {
            return;
        };
        self.retire_round(w, round);
    }

    /// Admits one priced request at nominal time `now`: it joins the
    /// global FIFO and is seated immediately if any live worker has a free
    /// seat and no round in flight (otherwise it waits for the next round
    /// boundary anywhere in the cluster).
    ///
    /// `service_secs` is the request's full priced service (the planner's
    /// compute + load + net); `tokens` its total prompt tokens.
    pub fn admit(
        &mut self,
        now: f64,
        idx: usize,
        tokens: u64,
        service_secs: f64,
        deadline: Option<f64>,
    ) {
        self.advance(now);
        self.pending.push_back(SlotReq {
            idx,
            total_tokens: tokens.max(1),
            done_tokens: 0,
            service_secs,
            deadline,
            queued_at: now,
        });
        self.seat_idle_workers();
    }

    /// Kills worker `w` at nominal time `now`. The round in flight (if
    /// any) is cancelled — its chunk work is lost — and every seated
    /// request returns to the *front* of the global queue in seat order,
    /// keeping chunks already retired in earlier rounds. No request is
    /// dropped, so the conservation law survives mid-batch crashes.
    pub fn crash(&mut self, now: f64, w: usize) {
        self.advance(now);
        let worker = &mut self.workers[w];
        if !worker.alive {
            return;
        }
        worker.alive = false;
        worker.draining = false;
        worker.gen += 1;
        worker.inflight = None;
        for req in worker.seated.drain(..).rev() {
            let mut req = req;
            req.queued_at = now;
            self.stats.migrated_requests += 1;
            self.stats.migrated_tokens += req.remaining_tokens();
            self.pending.push_front(req);
        }
        self.seat_idle_workers();
    }

    /// Restarts worker `w` at nominal time `now` with empty seats; it
    /// immediately refills from the global queue.
    pub fn restart(&mut self, now: f64, w: usize) {
        self.advance(now);
        let worker = &mut self.workers[w];
        if worker.alive {
            return;
        }
        worker.alive = true;
        worker.draining = false;
        worker.gen += 1;
        worker.last_finish = now;
        self.seat_idle_workers();
    }

    /// Begins a *planned* departure of worker `w` at nominal time `now`.
    /// Unlike [`BatchScheduler::crash`], nothing in flight is lost: the
    /// round already running completes normally, no new chunks are seated
    /// meanwhile, and at the boundary every still-unfinished seated
    /// request migrates to the *front* of the global queue in seat order
    /// (chunks retired in earlier rounds stay retired). With no round in
    /// flight the worker retires immediately.
    pub fn drain(&mut self, now: f64, w: usize) {
        self.advance(now);
        let worker = &mut self.workers[w];
        if !worker.alive || worker.draining {
            return;
        }
        self.stats.drains += 1;
        if self.workers[w].inflight.is_some() {
            self.workers[w].draining = true;
        } else {
            self.retire_worker(w, now);
        }
    }

    /// A fresh worker takes over slot `w` at nominal time `now` (planned
    /// scale-out). It joins with empty seats and immediately refills from
    /// the global queue, exactly like a restart — but the ledger counts it
    /// as a join, and the serving runtime hands the slot a brand-new
    /// process with a bumped incarnation.
    pub fn join(&mut self, now: f64, w: usize) {
        self.advance(now);
        let worker = &mut self.workers[w];
        if worker.alive {
            return;
        }
        worker.alive = true;
        worker.draining = false;
        worker.gen += 1;
        worker.last_finish = now;
        self.stats.joins += 1;
        self.seat_idle_workers();
    }

    /// Completes a drain: migrates worker `w`'s remaining seated work to
    /// the front of the global queue (seat order preserved) and removes
    /// the worker from the membership.
    fn retire_worker(&mut self, w: usize, at: f64) {
        let worker = &mut self.workers[w];
        debug_assert!(worker.inflight.is_none(), "retire with a round in flight");
        worker.alive = false;
        worker.draining = false;
        worker.gen += 1;
        for req in worker.seated.drain(..).rev() {
            let mut req = req;
            req.queued_at = at;
            self.stats.migrated_requests += 1;
            self.stats.migrated_tokens += req.remaining_tokens();
            self.pending.push_front(req);
        }
        self.seat_idle_workers();
    }

    /// Runs the machine dry: retires every outstanding round (seating and
    /// starting successors as seats free up) until no work remains. If
    /// requests are still queued with no live worker to run them, they are
    /// shed (the engine counts them with the deadline-expired sheds — the
    /// cluster provably cannot serve them). Returns the nominal time of
    /// the last processed event.
    pub fn finish(&mut self) -> f64 {
        while let Some(Reverse((_, w, gen))) = self.events.pop() {
            self.process_finish(w, gen);
        }
        if self.alive_workers() == 0 {
            let now = self.now;
            while let Some(req) = self.pending.pop_front() {
                self.sheds.push(BatchShed {
                    idx: req.idx,
                    at: now,
                });
            }
        }
        debug_assert!(self.pending.is_empty(), "pending work with live workers");
        debug_assert!(self.workers.iter().all(|w| w.seated.is_empty()));
        self.now
    }

    /// Retires one finished round on worker `w`: applies chunk progress,
    /// records completions, refills freed seats from the global queue at
    /// this same boundary, and starts the next round if anyone is seated.
    fn retire_round(&mut self, w: usize, round: InflightRound) {
        let finish = round.finish;
        self.now = self.now.max(finish);
        self.stats.rounds += 1;
        let mut still_seated = Vec::with_capacity(self.workers[w].seated.len());
        for (mut req, chunk) in self.workers[w]
            .seated
            .drain(..)
            .zip(round.chunks.iter().copied())
        {
            req.done_tokens += chunk;
            self.stats.chunks += 1;
            self.stats.batched_tokens += chunk;
            if req.remaining_tokens() == 0 {
                self.completions.push(BatchCompletion {
                    idx: req.idx,
                    at: finish,
                });
            } else {
                still_seated.push(req);
            }
        }
        self.workers[w].seated = still_seated;
        self.workers[w].last_finish = finish;
        if self.workers[w].draining {
            // Planned departure: the round that was in flight when the
            // drain landed has now retired; migrate what remains instead
            // of refilling.
            self.retire_worker(w, finish);
            return;
        }
        self.fill_seats(w, finish, true);
        self.start_round(w, finish);
    }

    /// Seats pending requests on every live, idle worker (index order) and
    /// starts their rounds. Called after any admission, crash re-queue, or
    /// restart — the only situations where pending work can coexist with
    /// an idle worker.
    fn seat_idle_workers(&mut self) {
        let now = self.now;
        for w in 0..self.workers.len() {
            if self.pending.is_empty() {
                break;
            }
            if !self.workers[w].alive
                || self.workers[w].draining
                || self.workers[w].inflight.is_some()
            {
                continue;
            }
            self.fill_seats(w, now, false);
            self.start_round(w, now);
        }
    }

    /// Fills worker `w`'s free seats from the global FIFO at nominal time
    /// `now`, shedding queue-expired requests on the way (the PR-5 sweep,
    /// applied at seating time). `at_boundary` marks refills that happen
    /// at a round boundary — the continuous-batching events the ledger
    /// counts (a seat handed to a fresh request on an idle worker is a
    /// cold start, not a refill).
    fn fill_seats(&mut self, w: usize, now: f64, at_boundary: bool) {
        while self.workers[w].seated.len() < self.cfg.slots_per_worker {
            let Some(req) = self.pending.pop_front() else {
                break;
            };
            if let Some(d) = req.deadline {
                if d < now {
                    self.sheds.push(BatchShed {
                        idx: req.idx,
                        at: now,
                    });
                    continue;
                }
            }
            // Idle-gap attribution: the worker could have run this request
            // from the moment both it and the request were free. With
            // boundary refills and idle seating both immediate this is
            // structurally zero; the ablation gate asserts it stays so.
            let waited_since = self.workers[w].last_finish.max(req.queued_at);
            let gap = now - waited_since;
            if gap > 0.0 {
                let mean_chunk = self.mean_chunk_service(w);
                if mean_chunk > 0.0 {
                    let over = gap / mean_chunk;
                    if over > self.stats.max_idle_gap_over_chunk {
                        self.stats.max_idle_gap_over_chunk = over;
                    }
                }
            }
            self.workers[w].seated.push(req);
            if at_boundary {
                self.stats.seat_refills += 1;
            }
        }
        let seated_total: usize = self.workers.iter().map(|ws| ws.seated.len()).sum();
        if seated_total > self.stats.peak_seated {
            self.stats.peak_seated = seated_total;
        }
    }

    /// Mean priced chunk service on worker `w`'s current seats (straggler
    /// scaled) — the yardstick for the idle-gap stat.
    fn mean_chunk_service(&self, w: usize) -> f64 {
        let ws = &self.workers[w];
        if ws.seated.is_empty() {
            return 0.0;
        }
        let sum: f64 = ws
            .seated
            .iter()
            .map(|r| r.chunk_service(r.remaining_tokens().min(self.cfg.chunk_tokens)))
            .sum();
        sum / ws.seated.len() as f64 * self.speeds[w]
    }

    /// Starts the next round on worker `w` at nominal time `start` if any
    /// request is seated: one chunk per seat, one shared batch overhead,
    /// straggler-scaled.
    fn start_round(&mut self, w: usize, start: f64) {
        if self.workers[w].seated.is_empty() || self.workers[w].inflight.is_some() {
            return;
        }
        let mut chunks = Vec::with_capacity(self.workers[w].seated.len());
        let mut tokens = 0u64;
        let mut service = self.batch_overhead_secs;
        let mut requests = Vec::with_capacity(self.workers[w].seated.len());
        for req in &self.workers[w].seated {
            let chunk = req.remaining_tokens().min(self.cfg.chunk_tokens);
            service += req.chunk_service(chunk);
            tokens += chunk;
            chunks.push(chunk);
            requests.push(req.idx);
        }
        let service = service * self.speeds[w];
        let finish = start + service;
        let gen = self.workers[w].gen;
        self.workers[w].inflight = Some(InflightRound { finish, chunks });
        self.events.push(Reverse((time_key(finish), w, gen)));
        self.rounds.push(RoundRecord {
            seq: self.round_seq,
            worker: w,
            start,
            finish,
            service_secs: service,
            tokens,
            requests,
        });
        self.round_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sched(workers: usize, seats: usize, chunk: u64) -> BatchScheduler {
        BatchScheduler::new(
            BatchingConfig {
                slots_per_worker: seats,
                chunk_tokens: chunk,
            },
            0.003,
            vec![1.0; workers],
        )
    }

    #[test]
    fn single_request_runs_in_token_chunks() {
        let mut s = sched(1, 4, 64);
        s.admit(0.0, 0, 200, 0.2, None);
        s.finish();
        let done = s.drain_completions();
        assert_eq!(done.len(), 1);
        // ceil(200/64) = 4 rounds of one chunk each.
        assert_eq!(s.stats().rounds, 4);
        assert_eq!(s.stats().chunks, 4);
        assert_eq!(s.stats().batched_tokens, 200);
        // Service telescopes: 0.2 of work + 4 × 3ms overhead.
        assert!((done[0].at - 0.212).abs() < 1e-9, "at {}", done[0].at);
    }

    #[test]
    fn concurrent_requests_share_rounds_and_amortize_overhead() {
        let mut s = sched(1, 4, 64);
        for i in 0..4 {
            s.admit(0.0, i, 64, 0.064, None);
        }
        s.finish();
        // Request 0 seats alone and starts a 1-wide round at t=0; the
        // other three wait for the boundary, then fuse into one 3-wide
        // round — 2 rounds, 4 chunks, not 4 rounds.
        assert_eq!(s.stats().rounds, 2);
        assert_eq!(s.stats().chunks, 4);
        assert_eq!(s.stats().seat_refills, 3);
        assert_eq!(s.drain_completions().len(), 4);
        // 4 requests, 2 overheads: cheaper than 4 sequential batches.
        assert!(s.now() < 4.0 * (0.064 + 0.003));
    }

    #[test]
    fn seat_freed_mid_stream_is_refilled_at_the_boundary() {
        let mut s = sched(1, 2, 64);
        // Request 0 (1 chunk) seats alone and starts; 1 (3 chunks) and 2
        // (1 chunk) wait in the global queue.
        s.admit(0.0, 0, 64, 0.064, None);
        s.admit(0.0, 1, 192, 0.192, None);
        s.admit(0.0, 2, 64, 0.064, None);
        s.finish();
        let done = s.drain_completions();
        assert_eq!(done.len(), 3);
        // At request 0's boundary both seats refill; request 2 rides one
        // round alongside the long request and must finish before it —
        // a per-request batcher would have serialized it behind all of 1.
        let at = |idx: usize| done.iter().find(|c| c.idx == idx).unwrap().at;
        assert!(at(2) < at(1), "refilled request overtakes the long one");
        assert!(s.stats().seat_refills >= 1);
    }

    #[test]
    fn deadline_expired_in_queue_is_shed_at_seating() {
        let mut s = sched(1, 1, 64);
        s.admit(0.0, 0, 640, 0.64, None); // hog the only seat
        s.admit(0.0, 1, 64, 0.064, Some(0.05)); // will expire while queued
        s.finish();
        let sheds = s.drain_sheds();
        assert_eq!(sheds.len(), 1);
        assert_eq!(sheds[0].idx, 1);
        assert_eq!(s.drain_completions().len(), 1);
    }

    #[test]
    fn crash_requeues_seated_work_without_losing_requests() {
        let mut s = sched(2, 2, 64);
        for i in 0..4 {
            s.admit(0.0, i, 128, 0.128, None);
        }
        // Kill worker 0 mid-round: its two seated requests re-queue and
        // drain through worker 1.
        s.crash(0.01, 0);
        s.finish();
        let done = s.drain_completions();
        assert_eq!(done.len(), 4, "no request may vanish in a crash");
        assert!(s.drain_sheds().is_empty());
    }

    #[test]
    fn all_workers_dead_sheds_the_queue_for_conservation() {
        let mut s = sched(1, 1, 64);
        s.admit(0.0, 0, 64, 0.064, None);
        s.admit(0.0, 1, 64, 0.064, None);
        s.crash(0.001, 0);
        s.finish();
        assert_eq!(s.drain_completions().len(), 0);
        assert_eq!(s.drain_sheds().len(), 2);
    }

    #[test]
    fn restart_rejoins_and_drains_the_queue() {
        let mut s = sched(1, 2, 64);
        s.admit(0.0, 0, 64, 0.064, None);
        s.crash(0.001, 0);
        s.admit(0.002, 1, 64, 0.064, None);
        s.restart(0.01, 0);
        s.finish();
        assert_eq!(s.drain_completions().len(), 2);
        assert!(s.drain_sheds().is_empty());
    }

    #[test]
    fn drain_finishes_the_inflight_round_then_migrates_the_rest() {
        let mut s = sched(2, 2, 64);
        for i in 0..4 {
            s.admit(0.0, i, 192, 0.192, None);
        }
        // Requests 0/1 start 1-wide rounds; at the t≈0.067 boundary each
        // worker refills its second seat (2 and 3) into a 2-wide round.
        // A planned departure of worker 0 lands mid-round-2: unlike a
        // crash, that round retires normally; only the *remaining* chunks
        // of its two seats migrate to the surviving worker.
        s.drain(0.1, 0);
        s.finish();
        let done = s.drain_completions();
        assert_eq!(done.len(), 4, "no request may vanish in a drain");
        assert!(s.drain_sheds().is_empty());
        let st = s.stats();
        assert_eq!(st.drains, 1);
        assert_eq!(st.joins, 0);
        // At the drain boundary request 0 has retired two chunks (64 left)
        // and request 2 one chunk (128 left): two migrations, 192 tokens
        // of remaining work — retired chunks stay retired.
        assert_eq!(st.migrated_requests, 2);
        assert_eq!(st.migrated_tokens, 192);
        // Every token was still batched exactly once.
        assert_eq!(st.batched_tokens, 4 * 192);
        assert_eq!(s.alive_workers(), 1);
    }

    #[test]
    fn drain_of_an_idle_worker_retires_it_immediately() {
        let mut s = sched(2, 1, 64);
        s.drain(0.0, 0);
        assert_eq!(s.alive_workers(), 1);
        assert_eq!(s.stats().drains, 1);
        assert_eq!(s.stats().migrated_requests, 0);
        // Draining again (or draining a retired worker) is a no-op.
        s.drain(0.1, 0);
        assert_eq!(s.stats().drains, 1);
        s.admit(0.2, 0, 64, 0.064, None);
        s.finish();
        assert_eq!(s.drain_completions().len(), 1);
        let rounds = s.drain_rounds();
        assert!(
            rounds.iter().all(|r| r.worker == 1),
            "a drained worker must not be seated"
        );
    }

    #[test]
    fn join_reoccupies_the_slot_and_serves_new_work() {
        let mut s = sched(2, 1, 64);
        s.drain(0.0, 0);
        s.join(1.0, 0);
        assert_eq!(s.alive_workers(), 2);
        assert_eq!(s.stats().joins, 1);
        // Joining an occupied slot is a no-op.
        s.join(1.1, 0);
        assert_eq!(s.stats().joins, 1);
        s.admit(1.2, 0, 64, 0.064, None);
        s.admit(1.2, 1, 64, 0.064, None);
        s.finish();
        assert_eq!(s.drain_completions().len(), 2);
        let rounds = s.drain_rounds();
        assert!(
            rounds.iter().any(|r| r.worker == 0),
            "the joined worker must pull its share of the queue"
        );
    }

    #[test]
    fn draining_the_last_worker_sheds_like_a_dead_cluster() {
        // The schedule validator refuses this; the machine itself must
        // still conserve if driven here directly.
        let mut s = sched(1, 1, 64);
        s.admit(0.0, 0, 128, 0.128, None);
        s.admit(0.0, 1, 64, 0.064, None);
        s.drain(0.01, 0);
        s.finish();
        assert_eq!(s.drain_completions().len(), 0);
        assert_eq!(s.drain_sheds().len(), 2);
        assert_eq!(s.alive_workers(), 0);
    }

    #[test]
    fn rounds_log_matches_ledger_and_is_dispatchable() {
        let mut s = sched(2, 2, 32);
        for i in 0..5 {
            s.admit(i as f64 * 0.001, i, 96, 0.096, None);
        }
        s.finish();
        let rounds = s.drain_rounds();
        assert_eq!(rounds.len() as u64, s.stats().rounds);
        let chunk_count: usize = rounds.iter().map(|r| r.requests.len()).sum();
        assert_eq!(chunk_count as u64, s.stats().chunks);
        let tokens: u64 = rounds.iter().map(|r| r.tokens).sum();
        assert_eq!(tokens, s.stats().batched_tokens);
        for r in &rounds {
            assert!(r.finish > r.start);
            assert!(r.service_secs > 0.0);
        }
        // Sequence numbers are dense and start-ordered.
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn outstanding_service_tracks_admissions_and_drains_to_zero() {
        let mut s = sched(1, 1, 64);
        assert_eq!(s.outstanding_service_secs(), 0.0);
        s.admit(0.0, 0, 128, 0.128, None);
        s.admit(0.0, 1, 64, 0.064, None);
        let outstanding = s.outstanding_service_secs();
        assert!((outstanding - 0.192).abs() < 1e-9, "got {outstanding}");
        s.finish();
        assert_eq!(s.outstanding_service_secs(), 0.0);
    }

    #[test]
    fn saturated_worker_never_idles_longer_than_a_chunk() {
        let mut s = sched(2, 4, 64);
        // 3x-burst shape: sustained load with a dense burst in the middle.
        let mut idx = 0;
        for step in 0..200 {
            let t = step as f64 * 0.005;
            let n = if (50..100).contains(&step) { 3 } else { 1 };
            for _ in 0..n {
                s.admit(t, idx, 128, 0.02, None);
                idx += 1;
            }
        }
        s.finish();
        assert_eq!(s.drain_completions().len(), idx);
        assert!(
            s.stats().max_idle_gap_over_chunk <= 1.0,
            "idle gap {} chunks",
            s.stats().max_idle_gap_over_chunk
        );
        assert!(s.stats().seat_refills > 0);
        assert!(s.stats().peak_seated >= 4);
    }

    #[test]
    fn identical_inputs_give_identical_ledgers() {
        let run = || {
            let mut s = sched(3, 2, 48);
            for i in 0..50 {
                let t = (i % 7) as f64 * 0.013 + i as f64 * 0.001;
                s.admit(t, i, 32 + (i as u64 * 37) % 200, 0.01, Some(t + 0.5));
                if i == 20 {
                    s.crash(t, 1);
                }
                if i == 35 {
                    s.restart(t, 1);
                }
            }
            s.finish();
            (s.stats(), s.drain_completions(), s.drain_sheds())
        };
        let (a_stats, a_done, a_shed) = run();
        let (b_stats, b_done, b_shed) = run();
        assert_eq!(a_stats, b_stats);
        assert_eq!(a_done, b_done);
        assert_eq!(a_shed, b_shed);
    }

    proptest! {
        /// Satellite 3, machine level: under random chunk sizes, burst
        /// schedules, and mid-batch worker crashes, every admitted request
        /// reaches exactly one terminal outcome —
        /// `admitted == completed + shed`, the slot half of the PR-5
        /// conservation law.
        #[test]
        fn conservation_under_chunks_bursts_and_crashes(
            seats in 1usize..5,
            chunk in 1u64..200,
            n_workers in 1usize..5,
            jobs in proptest::collection::vec((1u64..500, 1u32..50, proptest::bool::ANY), 1..60),
            crash_at in 1usize..40,
            restart_after in 0usize..10,
        ) {
            let mut s = BatchScheduler::new(
                BatchingConfig { slots_per_worker: seats, chunk_tokens: chunk },
                0.002,
                vec![1.0; n_workers],
            );
            let mut t = 0.0f64;
            let mut admitted = 0usize;
            for (i, (tokens, gap_ms, tight)) in jobs.iter().enumerate() {
                t += *gap_ms as f64 * 1e-4; // bursty: gaps of 0.1ms..5ms
                let deadline = if *tight { Some(t + 0.05) } else { None };
                s.admit(t, i, *tokens, *tokens as f64 * 1e-4, deadline);
                admitted += 1;
                if i == crash_at {
                    s.crash(t, crash_at % n_workers);
                }
                if i == crash_at + restart_after {
                    s.restart(t, crash_at % n_workers);
                }
            }
            // Make sure at least one worker survives to drain the queue
            // (the all-dead case is covered by a unit test above).
            if s.alive_workers() == 0 {
                s.restart(t, 0);
            }
            s.finish();
            let done = s.drain_completions().len();
            let shed = s.drain_sheds().len();
            prop_assert_eq!(done + shed, admitted, "lost or duplicated requests");
            // The ledger is consistent with itself.
            let st = s.stats();
            prop_assert!(st.chunks >= st.rounds);
            let total_tokens: u64 = jobs.iter().map(|(tk, _, _)| *tk).sum();
            prop_assert!(st.batched_tokens <= total_tokens, "over-counted tokens");
        }

        /// Tentpole conservation extension: random *membership* schedules —
        /// interleaved drains, joins, crashes, and restarts at arbitrary
        /// points in a bursty arrival stream — never lose or double-count a
        /// request, and the migration ledger stays self-consistent (every
        /// migrated request carried at least one remaining token).
        #[test]
        fn conservation_under_random_membership_churn(
            seats in 1usize..4,
            chunk in 16u64..200,
            n_workers in 2usize..6,
            jobs in proptest::collection::vec((1u64..500, 1u32..50, proptest::bool::ANY), 1..60),
            churn in proptest::collection::vec(
                (0usize..60, 0u8..4, 0usize..6),
                0..12,
            ),
        ) {
            let mut s = BatchScheduler::new(
                BatchingConfig { slots_per_worker: seats, chunk_tokens: chunk },
                0.002,
                vec![1.0; n_workers],
            );
            // Membership events keyed by arrival index. Invalid transitions
            // (drain a dead worker, join an occupied slot, …) are no-ops in
            // the machine, so the random stream needs no pre-validation.
            let mut t = 0.0f64;
            let mut admitted = 0usize;
            for (i, (tokens, gap_ms, tight)) in jobs.iter().enumerate() {
                t += *gap_ms as f64 * 1e-4;
                for (at, kind, target) in &churn {
                    if *at == i {
                        let w = *target % n_workers;
                        match kind {
                            0 => s.drain(t, w),
                            1 => s.join(t, w),
                            2 => s.crash(t, w),
                            _ => s.restart(t, w),
                        }
                    }
                }
                let deadline = if *tight { Some(t + 0.05) } else { None };
                s.admit(t, i, *tokens, *tokens as f64 * 1e-4, deadline);
                admitted += 1;
            }
            s.finish();
            let done = s.drain_completions().len();
            let shed = s.drain_sheds().len();
            prop_assert_eq!(done + shed, admitted, "lost or duplicated requests");
            let st = s.stats();
            // Migration moves only unfinished work: at least one token per
            // move, and never more than the trace offered per move.
            prop_assert!(st.migrated_tokens >= st.migrated_requests);
            let max_tokens = jobs.iter().map(|(tk, _, _)| *tk).max().unwrap_or(0);
            prop_assert!(st.migrated_tokens <= st.migrated_requests * max_tokens);
            let total_tokens: u64 = jobs.iter().map(|(tk, _, _)| *tk).sum();
            prop_assert!(st.batched_tokens <= total_tokens, "over-counted tokens");
        }
    }
}
