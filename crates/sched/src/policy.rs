//! Prefix-selection policies.
//!
//! §5.3 formalizes the decision: for a request `r` with user token length
//! `τ_u(r)` and item token length `τ_i(r)`,
//!
//! ```text
//! prefix(r) = user,  if τ_u(r) ≥ τ_i(r) ∧ f_u(r) > min_{p ∈ C_u} f_p
//!             item,  otherwise
//! ```
//!
//! where `C_u` is the set of cached user entries and `f` the sliding-window
//! frequency estimate maintained by the cache meta service.

use bat_kvcache::UserCache;
use bat_types::{PrefixKind, RankRequest};

/// A prefix-selection policy consulted once per request.
///
/// Policies may inspect (and sample from) the user cache, but admission and
/// eviction are performed by the serving engine after the decision — the
/// policy only chooses the attention pattern.
pub trait PromptPolicy: Send {
    /// Chooses the prompt prefix for `req` at time `now`.
    fn decide(&self, req: &RankRequest, user_cache: &mut UserCache, now: f64) -> PrefixKind;

    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;

    /// Degraded-mode hook (fault recovery): the fraction of the item pool
    /// currently reachable, in `[0, 1]`. The serving engine calls this on
    /// every cluster-membership change; policies that account for item
    /// availability ([`DegradedModePolicy`]) react, the rest ignore it.
    fn set_item_availability(&self, _frac: f64) {}

    /// Meta-service hook: the replicated view epoch the availability signal
    /// was computed at. Placement reads flow through the cache-meta client,
    /// and the epoch stamps *which* membership view the policy is acting
    /// on — a fenced (stale-epoch) signal must never overwrite a newer one.
    /// Policies that don't track membership ignore it.
    fn set_view_epoch(&self, _epoch: u64) {}
}

/// Always the same prefix: the UP and IP baselines of §6.1.
#[derive(Debug, Clone, Copy)]
pub struct StaticPolicy(pub PrefixKind);

impl PromptPolicy for StaticPolicy {
    fn decide(&self, _req: &RankRequest, _cache: &mut UserCache, _now: f64) -> PrefixKind {
        self.0
    }

    fn name(&self) -> &'static str {
        match self.0 {
            PrefixKind::User => "UP",
            PrefixKind::Item => "IP",
        }
    }
}

/// The cache-agnostic greedy baseline (§5.3, Figure 8): pick whichever
/// block is longer, ignoring cache state entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheAgnosticPolicy;

impl PromptPolicy for CacheAgnosticPolicy {
    fn decide(&self, req: &RankRequest, _cache: &mut UserCache, _now: f64) -> PrefixKind {
        if req.user_tokens >= req.item_tokens() {
            PrefixKind::User
        } else {
            PrefixKind::Item
        }
    }

    fn name(&self) -> &'static str {
        "cache-agnostic"
    }
}

/// BAT's hotness-aware policy (§5.3).
///
/// Chooses *User-as-prefix* when the user block is the longer one and the
/// user is already cached (free reuse). For an uncached user, going UP
/// means recomputing the whole prompt *now* (forgoing the shared item
/// cache's τ_i reused tokens) to save τ_u tokens on each near-future
/// repeat — worthwhile only if the predicted window frequency covers the
/// cost (`f_u · τ_u > τ_i`) and, when the cache is full, the user is
/// hotter than the coldest residents (`f_u > min_{p∈C_u} f_p`). This is
/// the paper's rule with the miss-side opportunity cost made explicit
/// ("maximize access frequency per unit of cache space", §5.3).
#[derive(Debug, Clone, Copy)]
pub struct HotnessAwarePolicy {
    /// KV bytes per token of the served model, used to size the incoming
    /// user entry against free cache space.
    pub kv_bytes_per_token: u64,
}

impl HotnessAwarePolicy {
    /// Creates the policy for a model storing `kv_bytes_per_token` per
    /// token.
    pub fn new(kv_bytes_per_token: u64) -> Self {
        HotnessAwarePolicy { kv_bytes_per_token }
    }
}

impl PromptPolicy for HotnessAwarePolicy {
    fn decide(&self, req: &RankRequest, user_cache: &mut UserCache, now: f64) -> PrefixKind {
        let tau_u = req.user_tokens as f64;
        let tau_i = req.item_tokens() as f64;
        if tau_u < tau_i {
            return PrefixKind::Item;
        }
        // A cached user's prefix is free to reuse: always take it.
        if user_cache.contains(req.user) {
            return PrefixKind::User;
        }
        // Miss side: expected near-future reuse must beat the item reuse
        // foregone on this request.
        let f_u = user_cache.freq_per_window(req.user, now);
        if f_u * tau_u <= tau_i {
            return PrefixKind::Item;
        }
        // Admission without eviction pollutes nothing; otherwise the user
        // must be hotter than the coldest cached residents.
        let entry = bat_types::Bytes::new(req.user_tokens as u64 * self.kv_bytes_per_token);
        if user_cache.capacity().saturating_sub(user_cache.used()) >= entry {
            return PrefixKind::User;
        }
        match user_cache.min_cached_freq(now) {
            None => PrefixKind::User,
            Some((_, min_f)) => {
                if f_u > min_f {
                    PrefixKind::User
                } else {
                    PrefixKind::Item
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "hotness-aware"
    }
}

/// [`HotnessAwarePolicy`] adjusted for a degraded item pool (fault
/// recovery).
///
/// The hotness-aware rule weighs the item reuse foregone on a UP miss
/// (`τ_i`) against the user's predicted repeats. When cache workers are
/// down, part of the item pool is unreachable: an IP request would reuse
/// only the *available* fraction of its item tokens, so the foregone reuse
/// shrinks to `availability · τ_i` and User-as-prefix becomes
/// correspondingly more attractive. At full availability this is exactly
/// the base rule.
#[derive(Debug)]
pub struct DegradedModePolicy {
    inner: HotnessAwarePolicy,
    /// Reachable fraction of the item pool, updated by the engine on every
    /// membership change. `Cell`: policies are consulted through a shared
    /// reference, and the planner is externally synchronized (the threaded
    /// runtime locks it).
    item_availability: std::cell::Cell<f64>,
    /// Replicated view epoch the availability signal was computed at; a
    /// stale-epoch update is rejected (the meta service fences deposed
    /// leaders the same way).
    view_epoch: std::cell::Cell<u64>,
}

impl DegradedModePolicy {
    /// Wraps the base hotness-aware rule at full availability.
    pub fn new(inner: HotnessAwarePolicy) -> Self {
        DegradedModePolicy {
            inner,
            item_availability: std::cell::Cell::new(1.0),
            view_epoch: std::cell::Cell::new(0),
        }
    }

    /// The current reachable fraction of the item pool.
    pub fn item_availability(&self) -> f64 {
        self.item_availability.get()
    }

    /// The replicated view epoch the current availability was computed at.
    pub fn view_epoch(&self) -> u64 {
        self.view_epoch.get()
    }
}

impl PromptPolicy for DegradedModePolicy {
    fn decide(&self, req: &RankRequest, user_cache: &mut UserCache, now: f64) -> PrefixKind {
        let tau_u = req.user_tokens as f64;
        let tau_i = req.item_tokens() as f64 * self.item_availability.get();
        if tau_u < tau_i {
            return PrefixKind::Item;
        }
        if user_cache.contains(req.user) {
            return PrefixKind::User;
        }
        let f_u = user_cache.freq_per_window(req.user, now);
        if f_u * tau_u <= tau_i {
            return PrefixKind::Item;
        }
        let entry = bat_types::Bytes::new(req.user_tokens as u64 * self.inner.kv_bytes_per_token);
        if user_cache.capacity().saturating_sub(user_cache.used()) >= entry {
            return PrefixKind::User;
        }
        match user_cache.min_cached_freq(now) {
            None => PrefixKind::User,
            Some((_, min_f)) => {
                if f_u > min_f {
                    PrefixKind::User
                } else {
                    PrefixKind::Item
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "hotness-aware-degraded"
    }

    fn set_item_availability(&self, frac: f64) {
        self.item_availability.set(frac.clamp(0.0, 1.0));
    }

    fn set_view_epoch(&self, epoch: u64) {
        // Monotone: a fenced writer replaying an old membership view must
        // not roll the recorded epoch back.
        if epoch >= self.view_epoch.get() {
            self.view_epoch.set(epoch);
        }
    }
}

/// A clairvoyant upper bound for the scheduling ablation: decides with the
/// user's *true* future request count in the window (read from the trace)
/// instead of the estimator's prediction. Not realizable online — it bounds
/// how much the hotness-aware policy leaves on the table.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    arrivals: std::collections::HashMap<bat_types::UserId, Vec<f64>>,
    window_secs: f64,
    kv_bytes_per_token: u64,
}

impl OraclePolicy {
    /// Builds the oracle from the trace's `(arrival_secs, user)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive.
    pub fn from_arrivals(
        arrivals: impl IntoIterator<Item = (f64, bat_types::UserId)>,
        window_secs: f64,
        kv_bytes_per_token: u64,
    ) -> Self {
        assert!(window_secs > 0.0, "window must be positive");
        let mut map: std::collections::HashMap<bat_types::UserId, Vec<f64>> =
            std::collections::HashMap::new();
        for (t, u) in arrivals {
            map.entry(u).or_default().push(t);
        }
        for v in map.values_mut() {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        OraclePolicy {
            arrivals: map,
            window_secs,
            kv_bytes_per_token,
        }
    }

    /// The user's true request count in `(now, now + window]`.
    pub fn future_requests(&self, user: bat_types::UserId, now: f64) -> usize {
        match self.arrivals.get(&user) {
            None => 0,
            Some(times) => {
                let lo = times.partition_point(|&t| t <= now);
                let hi = times.partition_point(|&t| t <= now + self.window_secs);
                hi - lo
            }
        }
    }
}

impl PromptPolicy for OraclePolicy {
    fn decide(&self, req: &RankRequest, user_cache: &mut UserCache, now: f64) -> PrefixKind {
        let tau_u = req.user_tokens as f64;
        let tau_i = req.item_tokens() as f64;
        if tau_u < tau_i {
            return PrefixKind::Item;
        }
        if user_cache.contains(req.user) {
            return PrefixKind::User;
        }
        // Differential analysis with perfect knowledge: admitting as UP
        // forgoes τ_i of item reuse now, and each of the k true future
        // requests saves τ_u instead of the τ_i it would have reused under
        // IP — worthwhile iff k·(τ_u − τ_i) > τ_i.
        let f_true = self.future_requests(req.user, now) as f64;
        if f_true * (tau_u - tau_i) <= tau_i {
            return PrefixKind::Item;
        }
        let entry = bat_types::Bytes::new(req.user_tokens as u64 * self.kv_bytes_per_token);
        if user_cache.capacity().saturating_sub(user_cache.used()) >= entry {
            return PrefixKind::User;
        }
        match user_cache.min_cached_freq(now) {
            None => PrefixKind::User,
            Some((_, min_f)) => {
                if f_true > min_f {
                    PrefixKind::User
                } else {
                    PrefixKind::Item
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_kvcache::UserCacheConfig;
    use bat_types::{Bytes, ItemId, RequestId, SimTime, UserId};

    fn req(user: u64, user_tokens: u32, item_tokens_each: u32, n_items: usize) -> RankRequest {
        RankRequest {
            id: RequestId::new(0),
            user: UserId::new(user),
            user_tokens,
            candidates: (0..n_items as u64).map(ItemId::new).collect(),
            candidate_tokens: vec![item_tokens_each; n_items],
            instruction_tokens: 32,
            arrival: SimTime::ZERO,
            slo: Default::default(),
        }
    }

    fn cache(capacity: u64) -> UserCache {
        UserCache::new(UserCacheConfig {
            capacity: Bytes::new(capacity),
            freq_window_secs: 60.0,
            min_freq_sample: 4,
            page_bytes: 1,
        })
    }

    #[test]
    fn static_policies_ignore_everything() {
        let mut c = cache(100);
        let r = req(1, 10, 100, 10);
        assert_eq!(
            StaticPolicy(PrefixKind::User).decide(&r, &mut c, 0.0),
            PrefixKind::User
        );
        assert_eq!(
            StaticPolicy(PrefixKind::Item).decide(&r, &mut c, 0.0),
            PrefixKind::Item
        );
        assert_eq!(StaticPolicy(PrefixKind::User).name(), "UP");
        assert_eq!(StaticPolicy(PrefixKind::Item).name(), "IP");
    }

    #[test]
    fn cache_agnostic_picks_longer_block() {
        let mut c = cache(100);
        let long_user = req(1, 2000, 10, 100); // 2000 vs 1000
        let short_user = req(1, 500, 10, 100); // 500 vs 1000
        assert_eq!(
            CacheAgnosticPolicy.decide(&long_user, &mut c, 0.0),
            PrefixKind::User
        );
        assert_eq!(
            CacheAgnosticPolicy.decide(&short_user, &mut c, 0.0),
            PrefixKind::Item
        );
    }

    #[test]
    fn hotness_aware_short_profile_goes_item() {
        let mut c = cache(1000);
        let r = req(1, 500, 10, 100);
        assert_eq!(
            HotnessAwarePolicy::new(1).decide(&r, &mut c, 0.0),
            PrefixKind::Item
        );
    }

    #[test]
    fn hotness_aware_cached_user_stays_user() {
        let mut c = cache(1000);
        c.admit_lru(UserId::new(1), Bytes::new(100));
        let r = req(1, 2000, 10, 100);
        assert_eq!(
            HotnessAwarePolicy::new(1).decide(&r, &mut c, 0.0),
            PrefixKind::User
        );
    }

    #[test]
    fn hotness_aware_empty_cache_admits_predicted_returner() {
        let mut c = cache(100_000);
        // A user with no history has no predicted reuse: even an empty
        // cache schedules them Item-as-prefix.
        let r = req(7, 2000, 10, 100);
        assert_eq!(
            HotnessAwarePolicy::new(1).decide(&r, &mut c, 0.0),
            PrefixKind::Item
        );
        // Once the window frequency predicts enough repeats to beat the
        // foregone item reuse, the empty cache admits them.
        for t in 0..5 {
            c.record_access(UserId::new(7), t as f64 * 10.0);
        }
        assert_eq!(
            HotnessAwarePolicy::new(1).decide(&r, &mut c, 50.0),
            PrefixKind::User
        );
    }

    #[test]
    fn hotness_aware_cold_user_deflects_to_item() {
        let mut c = cache(100);
        // Resident hot user.
        for t in 0..30 {
            c.record_access(UserId::new(1), t as f64);
        }
        c.admit_lru(UserId::new(1), Bytes::new(100));
        // Newcomer with one access: colder than the resident.
        c.record_access(UserId::new(2), 30.0);
        let r = req(2, 2000, 10, 100);
        assert_eq!(
            HotnessAwarePolicy::new(1).decide(&r, &mut c, 30.0),
            PrefixKind::Item
        );
    }

    #[test]
    fn oracle_counts_future_requests_in_window() {
        let arrivals = vec![
            (1.0, UserId::new(7)),
            (5.0, UserId::new(7)),
            (50.0, UserId::new(7)),
            (2.0, UserId::new(8)),
        ];
        let oracle = OraclePolicy::from_arrivals(arrivals, 10.0, 1);
        assert_eq!(oracle.future_requests(UserId::new(7), 0.0), 2);
        assert_eq!(oracle.future_requests(UserId::new(7), 5.0), 0);
        assert_eq!(oracle.future_requests(UserId::new(7), 45.0), 1);
        assert_eq!(oracle.future_requests(UserId::new(9), 0.0), 0);
    }

    #[test]
    fn oracle_schedules_returning_user_up_and_oneshot_item() {
        let mut c = cache(100_000);
        let returning = req(7, 2000, 10, 100);
        let oneshot = req(8, 2000, 10, 100);
        let oracle = OraclePolicy::from_arrivals(
            vec![
                (0.0, UserId::new(7)),
                (3.0, UserId::new(7)),
                (6.0, UserId::new(7)),
                (0.0, UserId::new(8)),
            ],
            60.0,
            1,
        );
        assert_eq!(oracle.decide(&returning, &mut c, 0.0), PrefixKind::User);
        assert_eq!(oracle.decide(&oneshot, &mut c, 0.5), PrefixKind::Item);
        assert_eq!(oracle.name(), "oracle");
    }

    #[test]
    fn degraded_mode_biases_toward_user_prefix() {
        let mut c = cache(100_000);
        // Profile barely shorter than the item block: base rule goes Item.
        let r = req(7, 900, 10, 100); // τ_u = 900, τ_i = 1000
        for t in 0..5 {
            c.record_access(UserId::new(7), t as f64 * 10.0);
        }
        let policy = DegradedModePolicy::new(HotnessAwarePolicy::new(1));
        assert_eq!(policy.item_availability(), 1.0);
        assert_eq!(policy.decide(&r, &mut c, 50.0), PrefixKind::Item);
        // Half the item pool dies: the foregone item reuse halves and the
        // same request flips to User-as-prefix.
        policy.set_item_availability(0.5);
        assert_eq!(policy.decide(&r, &mut c, 50.0), PrefixKind::User);
        // Recovery restores the base decision; other policies ignore the hook.
        policy.set_item_availability(1.0);
        assert_eq!(policy.decide(&r, &mut c, 50.0), PrefixKind::Item);
        StaticPolicy(PrefixKind::Item).set_item_availability(0.0);
    }

    #[test]
    fn degraded_mode_view_epoch_is_monotone() {
        let policy = DegradedModePolicy::new(HotnessAwarePolicy::new(1));
        assert_eq!(policy.view_epoch(), 0);
        policy.set_view_epoch(3);
        assert_eq!(policy.view_epoch(), 3);
        // A fenced stale writer cannot roll the epoch back.
        policy.set_view_epoch(1);
        assert_eq!(policy.view_epoch(), 3);
        policy.set_view_epoch(4);
        assert_eq!(policy.view_epoch(), 4);
        // Epoch-less policies ignore the hook entirely.
        StaticPolicy(PrefixKind::User).set_view_epoch(9);
    }

    #[test]
    fn hotness_aware_hot_user_displaces() {
        let mut c = cache(100);
        c.record_access(UserId::new(1), 0.0);
        c.admit_lru(UserId::new(1), Bytes::new(100));
        // Newcomer far hotter than the stale resident.
        for t in 0..30 {
            c.record_access(UserId::new(2), 600.0 + t as f64);
        }
        let r = req(2, 2000, 10, 100);
        assert_eq!(
            HotnessAwarePolicy::new(1).decide(&r, &mut c, 630.0),
            PrefixKind::User
        );
    }
}
