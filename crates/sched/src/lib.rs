//! The hotness-aware prompt scheduler (§5.3).
//!
//! Bipartite Attention turns prefix selection into a per-request decision:
//! *User-as-prefix* saves more tokens for long-profile users whose cache
//! entry will be reused soon; *Item-as-prefix* reuses the shared item pool
//! and is the safe default for cold or short-profile users. This crate
//! implements the paper's decision policies ([`policy`]) and the
//! max-batched-tokens batch former used by the inference workers
//! ([`batch`]).

pub mod batch;
pub mod policy;

pub use batch::BatchFormer;
pub use policy::{
    CacheAgnosticPolicy, DegradedModePolicy, HotnessAwarePolicy, OraclePolicy, PromptPolicy,
    StaticPolicy,
};
