//! The hotness-aware prompt scheduler (§5.3).
//!
//! Bipartite Attention turns prefix selection into a per-request decision:
//! *User-as-prefix* saves more tokens for long-profile users whose cache
//! entry will be reused soon; *Item-as-prefix* reuses the shared item pool
//! and is the safe default for cold or short-profile users. This crate
//! implements the paper's decision policies ([`policy`]), the
//! max-batched-tokens batch former used by the inference workers
//! ([`batch`]), the slot-based continuous cross-request batch scheduler
//! ([`slots`]), and the SLO-aware admission/brownout control plane
//! ([`overload`]).

pub mod batch;
pub mod overload;
pub mod policy;
pub mod slots;

pub use batch::BatchFormer;
pub use overload::{AdmitDecision, OverloadConfig, OverloadController};
pub use policy::{
    CacheAgnosticPolicy, DegradedModePolicy, HotnessAwarePolicy, OraclePolicy, PromptPolicy,
    StaticPolicy,
};
pub use slots::{BatchCompletion, BatchScheduler, BatchShed, BatchingConfig, RoundRecord};
