//! The discrete-event serving-cluster simulator.
//!
//! GPUs, PCIe links and the inter-node network are replaced by analytic
//! cost models ([`compute`]); everything else — the scheduler's prefix
//! decisions, the user-cache admission/eviction churn, the item placement
//! and its network transfers, per-worker FIFO queues with
//! max-batched-tokens batching — runs for real, event by event
//! ([`engine`]). This is the substrate behind Figures 5–11 and Table 4.
//!
//! # Example
//!
//! ```
//! use bat_sim::{EngineConfig, ServingEngine, SystemKind};
//! use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
//! use bat_workload::{TraceGenerator, Workload};
//!
//! let ds = DatasetConfig::games();
//! let cfg = EngineConfig::for_system(
//!     SystemKind::Bat,
//!     ModelConfig::qwen2_1_5b(),
//!     ClusterConfig::a100_4node(),
//!     &ds,
//! );
//! let mut traces = TraceGenerator::new(Workload::new(ds, 1), 2);
//! let trace = traces.generate(5.0, 20.0);
//! let stats = ServingEngine::new(cfg).unwrap().run(&trace);
//! assert_eq!(stats.completed, trace.len());
//! ```

pub mod compute;
pub mod engine;
pub mod planner;
pub mod stats;

pub use bat_faults::{AppliedFault, FaultEvent, FaultKind, FaultReport, FaultSchedule};
pub use bat_metrics::{SloStats, TierStats};
pub use bat_sched::{
    BatchCompletion, BatchScheduler, BatchShed, BatchingConfig, OverloadConfig, OverloadController,
    RoundRecord,
};
pub use bat_tiers::{ColdFormat, SplitPolicy, TieredKvPool, TiersConfig};
pub use compute::ComputeModel;
pub use engine::{AdmissionKind, EngineConfig, PolicyKind, ServingEngine, SystemKind};
pub use planner::{MetaBackend, PlannedJob, RequestPlanner};
pub use stats::{breakdown_by_prefix, RequestRecord, RunStats};
