//! Request planning: the scheduler's per-request cache transaction.
//!
//! [`RequestPlanner`] encapsulates what the centralized scheduler does for
//! one arriving request (§5.1): consult the policy for the prefix decision,
//! perform the user-cache lookup/admission, resolve item placement, and
//! emit the resulting compute job (suffix tokens, context size, KV bytes to
//! load locally and to pull over the network). Both the discrete-event
//! engine (`bat-sim`) and the threaded runtime (`bat-serve`) drive the same
//! planner, so their cache behavior is identical by construction.

use crate::compute::ComputeModel;
use crate::engine::{AdmissionKind, EngineConfig, PolicyKind};
use bat_faults::{AppliedFault, ClusterView, FaultCursor, FaultReport};
use bat_kvcache::{AdmitOutcome, LocalMetaIndex, MetaIndex, UserCache, UserCacheConfig};
use bat_meta::MetaClient;
use bat_placement::{DegradedLocation, DegradedPlacement, ItemLocation, ItemPlacementPlan};
use bat_sched::{
    CacheAgnosticPolicy, DegradedModePolicy, HotnessAwarePolicy, PromptPolicy, StaticPolicy,
};
use bat_tiers::TieredKvPool;
use bat_types::{Bytes, ItemId, PrefixKind, RankRequest, WorkerId};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

/// Width of the windowed hit-rate buckets behind the availability curve.
const FAULT_WINDOW_SECS: f64 = 0.5;
/// Recovery means the windowed hit rate is back within this absolute
/// tolerance of the pre-fault steady state.
const RECOVERY_TOLERANCE: f64 = 0.05;

/// The planned compute job for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJob {
    /// Prefix decision taken (meaningless when caching is disabled).
    pub prefix: PrefixKind,
    /// Tokens that must be computed.
    pub suffix_tokens: u64,
    /// Total attention context (= prompt length).
    pub context_tokens: u64,
    /// KV bytes loaded from local host memory over PCIe.
    pub local_load: Bytes,
    /// KV bytes pulled from remote cache workers.
    pub remote_bytes: Bytes,
    /// Extra network-path seconds beyond the nominal transfer time:
    /// slowed-link inflation after hedging picked the fastest holder,
    /// seeded-jittered backoff delays spent on retried pulls, and the
    /// cold-tier streaming time of quantized KV served by the tiered pool.
    /// Zero on every run without `SlowLink` faults or a tiered pool.
    pub net_extra_secs: f64,
}

impl PlannedJob {
    /// Tokens reused from cache.
    pub fn reused_tokens(&self) -> u64 {
        self.context_tokens - self.suffix_tokens
    }
}

/// Where an item lookup lands when a fault schedule is active.
enum FaultedLocation {
    /// Served from the request's (live, warm) affinity worker.
    LocalHit,
    /// Served from another live, warm worker over the network.
    RemoteHit {
        /// True when a surviving HRCS replica covered for the dead or cold
        /// affinity worker.
        from_replica: bool,
        /// The worker the pull is issued to.
        holder: WorkerId,
        /// A second reachable warm holder (replicated items only) the
        /// planner can hedge the pull against when the primary's link is
        /// slow.
        alt: Option<WorkerId>,
    },
    /// Entry unreachable under the current membership: recompute.
    Recompute,
    /// Outside the cached corpus (same as the fault-free case).
    Uncached,
}

/// All planner-side fault machinery, present only when the engine config
/// carries a [`bat_faults::FaultSchedule`].
///
/// Everything in here advances on *nominal* trace time (request arrivals and
/// scheduled fault instants), never on wall-clock readings, so `bat-sim` and
/// `bat-serve` walk through identical states for the same trace + schedule.
struct FaultState {
    cursor: FaultCursor,
    view: ClusterView,
    report: FaultReport,
    first_crash_at: Option<f64>,
    /// Per worker: the incarnation whose cache contents are warm. A
    /// restarted worker carries a newer incarnation until its re-warm
    /// completes, and serves nothing in between.
    warm_incarnation: Vec<u64>,
    /// Per worker: nominal time at which a pending re-warm completes.
    rewarm_ready_at: Vec<f64>,
    /// Seconds to stream one worker's item region over the interconnect.
    rewarm_secs: f64,
    /// Item-region byte budget per worker, bounding shard adoption.
    per_worker_budget: Bytes,
    /// Membership-aware re-plan; present while any worker is down.
    degraded: Option<DegradedPlacement>,
    /// Adopted entries already recomputed once and written back.
    warmed_adopted: HashSet<u64>,
    /// Windowed (reused, total) token counts keyed by time bucket.
    buckets: BTreeMap<u64, (u64, u64)>,
    bucket_secs: f64,
    /// Jitter source for backoff-retried pulls. Drawn only when a pull
    /// actually crosses a slowed link, in arrival order, so runs without
    /// `SlowLink` events never touch it and stay bit-identical to before.
    retry_rng: SmallRng,
    /// Base backoff delay for retried pulls, seconds.
    retry_backoff_secs: f64,
}

impl FaultState {
    /// Whether worker `w` is alive *and* its cache contents are warm.
    fn is_warm(&self, w: usize) -> bool {
        let id = WorkerId::new(w as u64);
        self.view.is_alive(id) && self.warm_incarnation[w] == self.view.incarnation(id)
    }

    /// Whether a remote KV pull from worker `w` can reach the request's
    /// affinity worker (worker 0) under the current partition view. When
    /// the affinity worker itself is down the request is served from some
    /// other node we don't model, so partition gating only applies while
    /// worker 0 is up.
    fn pull_reachable(&self, w: WorkerId) -> bool {
        let local = WorkerId::new(0);
        !self.view.is_alive(local) || self.view.reachable(local, w)
    }

    /// Item lookup under the current membership and warmth. Mirrors
    /// [`ItemPlacementPlan::locate`] with affinity worker 0 when everyone is
    /// warm, and degrades per the re-plan otherwise.
    fn locate(&mut self, plan: &ItemPlacementPlan, item: ItemId) -> FaultedLocation {
        let id = item.as_u64();
        if id >= plan.cached_items() {
            return FaultedLocation::Uncached;
        }
        let n = plan.num_workers();
        if plan.is_replicated(item) {
            if self.is_warm(0) {
                return FaultedLocation::LocalHit;
            }
            // The affinity worker's copy is gone; replication means any
            // surviving warm worker can serve the hot item — but a remote
            // pull only works if the requester can actually reach that
            // worker under the current partition view. Skip cut-off
            // holders and fall back to the next reachable one; remember a
            // second reachable holder as the hedge target.
            let mut skipped_unreachable = false;
            let mut holder: Option<WorkerId> = None;
            let mut alt: Option<WorkerId> = None;
            for w in 0..n {
                if !self.is_warm(w) {
                    continue;
                }
                let id = WorkerId::new(w as u64);
                if self.pull_reachable(id) {
                    if holder.is_none() {
                        holder = Some(id);
                    } else {
                        alt = Some(id);
                        break;
                    }
                } else if holder.is_none() {
                    skipped_unreachable = true;
                }
            }
            if skipped_unreachable {
                self.report.unreachable_kv_fallbacks += 1;
            }
            return match holder {
                Some(h) => FaultedLocation::RemoteHit {
                    from_replica: true,
                    holder: h,
                    alt,
                },
                None => FaultedLocation::Recompute,
            };
        }
        let owner = (id % n as u64) as usize;
        if self.is_warm(owner) {
            if owner == 0 {
                return FaultedLocation::LocalHit;
            }
            if self.pull_reachable(WorkerId::new(owner as u64)) {
                return FaultedLocation::RemoteHit {
                    from_replica: false,
                    holder: WorkerId::new(owner as u64),
                    alt: None,
                };
            }
            // The owner is warm but cut off by a partition: same degraded
            // path as a dead owner — an adopter may hold the entry, and
            // recompute covers the rest.
            self.report.unreachable_kv_fallbacks += 1;
        }
        // Cold-shard miss: the owner is dead, not yet re-warmed, or
        // unreachable. A live worker may have adopted the entry; adopted
        // entries start cold, so the first access recomputes and writes
        // back, and later accesses hit the adopter. The write-back (and any
        // later hit) also requires the adopter to be reachable.
        if let Some(d) = &self.degraded {
            if let DegradedLocation::Adopted(target) = d.locate(item) {
                if self.pull_reachable(target) {
                    if self.warmed_adopted.contains(&id) {
                        return if target.index() == 0 {
                            FaultedLocation::LocalHit
                        } else {
                            FaultedLocation::RemoteHit {
                                from_replica: false,
                                holder: target,
                                alt: None,
                            }
                        };
                    }
                    self.warmed_adopted.insert(id);
                } else {
                    self.report.unreachable_kv_fallbacks += 1;
                }
            }
        }
        FaultedLocation::Recompute
    }
}

/// The cache-meta service behind the planner: either the single-node
/// reference index or the replicated group's client. Both implement
/// [`bat_kvcache::MetaIndex`], and the planner mirrors every cache
/// mutation through whichever backend is configured — so the replicated
/// index provably never diverges from what a local meta service records
/// ([`MetaIndex::digest`] is comparable across the two).
pub enum MetaBackend {
    /// Single-node meta service (`meta_replicas == 0`).
    Local(LocalMetaIndex),
    /// Leader/follower replicated group behind the retry/redirect client.
    Replicated(MetaClient),
}

impl MetaBackend {
    /// The backend as the common meta-index interface.
    pub fn as_index(&self) -> &dyn MetaIndex {
        match self {
            MetaBackend::Local(m) => m,
            MetaBackend::Replicated(c) => c,
        }
    }

    fn as_index_mut(&mut self) -> &mut dyn MetaIndex {
        match self {
            MetaBackend::Local(m) => m,
            MetaBackend::Replicated(c) => c,
        }
    }
}

/// Stateful per-request planner shared by the simulator and the runtime.
pub struct RequestPlanner {
    compute: ComputeModel,
    user_cache: UserCache,
    policy: Box<dyn PromptPolicy>,
    placement: Option<ItemPlacementPlan>,
    admission: AdmissionKind,
    caching: bool,
    /// The cache-meta service; `None` only when caching is disabled (RE has
    /// no cache state to index).
    meta: Option<MetaBackend>,
    /// Item access-frequency estimator for the §5.2 Step 3 background
    /// refresh; populated only when tracking is enabled.
    item_freq: Option<bat_kvcache::FreqEstimator<bat_types::ItemId>>,
    /// Fault-schedule machinery; `None` for fault-free runs.
    faults: Option<FaultState>,
    /// Current brownout ladder rung (0 = healthy). Set by the engine's
    /// overload controller before each plan; rung 1 suspends background
    /// replication refresh, rung 2 degrades cold remote pulls to recompute
    /// (or, with a tiered pool, serves them from the local cold tier).
    brownout_rung: u8,
    /// The tiered KV pool: a quantized cold tier behind the hot cache
    /// regions. `None` keeps the flat cache, byte-identical to before.
    /// Decisions are driven on nominal arrival times through the same
    /// accounting core as the simulation oracle, so sim and serve pools
    /// agree on every hit/miss/demotion bitwise.
    tiers: Option<TieredKvPool>,
}

impl RequestPlanner {
    /// Builds a planner from an engine configuration (assumed validated).
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let compute = ComputeModel::new(cfg.model.clone(), cfg.cluster.node.clone());
        let user_cache = UserCache::new(UserCacheConfig {
            capacity: cfg.user_cache_capacity,
            freq_window_secs: cfg.freq_window_secs,
            min_freq_sample: 8,
            page_bytes: 16 * cfg.model.kv_bytes_per_token(),
        });
        let policy: Box<dyn PromptPolicy> = match cfg.policy {
            PolicyKind::StaticUser => Box::new(StaticPolicy(PrefixKind::User)),
            PolicyKind::StaticItem => Box::new(StaticPolicy(PrefixKind::Item)),
            PolicyKind::CacheAgnostic => Box::new(CacheAgnosticPolicy),
            PolicyKind::HotnessAware => {
                let base = HotnessAwarePolicy::new(cfg.model.kv_bytes_per_token());
                if cfg.faults.is_some() {
                    // Under a fault schedule the hotness rule must discount
                    // τ_i by the reachable item fraction (degraded mode).
                    Box::new(DegradedModePolicy::new(base))
                } else {
                    Box::new(base)
                }
            }
        };
        let faults = cfg.faults.as_ref().map(|schedule| {
            let n = schedule.num_workers();
            // Re-warming a returned worker streams its item region back
            // over the pool interconnect.
            let rewarm_secs = cfg.placement.as_ref().map_or(0.0, |plan| {
                compute.net_transfer_secs(plan.per_worker_bytes())
            });
            FaultState {
                first_crash_at: schedule.first_crash_at(),
                cursor: FaultCursor::new(schedule.clone()),
                view: ClusterView::new(n),
                report: FaultReport::default(),
                warm_incarnation: vec![0; n],
                rewarm_ready_at: vec![f64::NEG_INFINITY; n],
                rewarm_secs,
                per_worker_budget: Bytes::new(cfg.cluster.node.kv_cache_capacity.as_u64() * 4 / 5),
                degraded: None,
                warmed_adopted: HashSet::new(),
                buckets: BTreeMap::new(),
                bucket_secs: FAULT_WINDOW_SECS,
                retry_rng: SmallRng::seed_from_u64(cfg.slo.unwrap_or_default().retry_seed),
                retry_backoff_secs: cfg.slo.unwrap_or_default().retry_backoff_secs,
            }
        });
        let meta = cfg.caching.then(|| {
            if cfg.meta_replicas == 0 {
                MetaBackend::Local(LocalMetaIndex::new())
            } else {
                MetaBackend::Replicated(MetaClient::new(
                    cfg.meta_replicas,
                    cfg.meta_seed,
                    cfg.cluster.num_nodes,
                ))
            }
        });
        RequestPlanner {
            compute,
            user_cache,
            policy,
            placement: cfg.placement.clone(),
            admission: cfg.admission,
            caching: cfg.caching,
            meta,
            item_freq: cfg
                .track_item_hotness
                .then(|| bat_kvcache::FreqEstimator::new(cfg.freq_window_secs)),
            faults,
            brownout_rung: 0,
            tiers: cfg.tiers.clone().map(TieredKvPool::new),
        }
    }

    /// The tiered pool's ledger, `None` when the pool is disabled.
    pub fn tier_stats(&self) -> Option<bat_metrics::TierStats> {
        self.tiers.as_ref().map(TieredKvPool::stats)
    }

    /// The tiered pool itself (tests, oracle digest comparison).
    pub fn tiers(&self) -> Option<&TieredKvPool> {
        self.tiers.as_ref()
    }

    /// Moves the planner onto a brownout ladder rung. Rung transitions are
    /// recorded in the fault report so ablation runs can show when the
    /// ladder engaged and how high it climbed.
    pub fn set_brownout_rung(&mut self, rung: u8) {
        if rung == self.brownout_rung {
            return;
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.report.brownout_transitions += 1;
            fs.report.max_brownout_rung = fs.report.max_brownout_rung.max(rung);
        }
        self.brownout_rung = rung;
    }

    /// The admission controller's cost estimate for a request: the no-cache
    /// prefill time for its full prompt. Deliberately pessimistic (cache
    /// hits make the real job cheaper), so admission errs toward capacity
    /// headroom rather than accepted work it cannot finish.
    pub fn admission_estimate_secs(&self, req: &RankRequest) -> f64 {
        let total = u64::from(req.total_tokens());
        self.compute.prefill_secs(total, total)
    }

    /// Re-replicates the hottest observed items into the placement plan's
    /// replicated area (§5.2 Step 3's background update). No-op unless item
    /// hotness tracking is enabled and an item placement exists.
    ///
    /// This is also the recovery path's re-warm hook: a worker returning
    /// from a crash has its shard and replica contents streamed back, and
    /// becomes warm once the transfer completes ([`Self::settle_rewarms`]).
    pub fn refresh_item_replication(&mut self, now: f64) {
        self.settle_rewarms(now);
        if self.brownout_rung >= 1 {
            // Brownout rung 1: background replication churn is the first
            // thing to go under pressure — re-warms still settle (they free
            // capacity), but the hotness-driven refresh is deferred.
            if let Some(fs) = self.faults.as_mut() {
                fs.report.suspended_refreshes += 1;
            }
            return;
        }
        let (Some(freq), Some(plan)) = (&self.item_freq, &mut self.placement) else {
            return;
        };
        let cap = plan.replicated_items() as usize;
        if cap == 0 {
            return;
        }
        let mut rates: Vec<(bat_types::ItemId, f64)> = freq
            .iter_keys()
            .map(|&item| (item, freq.rate(&item, now)))
            .collect();
        // Total order (rate desc, id asc): the estimator iterates in hash
        // order, so ties must not be left to insertion luck or two runs of
        // the same seed could replicate different members.
        rates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("rates are finite")
                .then_with(|| a.0.as_u64().cmp(&b.0.as_u64()))
        });
        // Hottest observed items first; any leftover area capacity keeps the
        // offline plan's rank-prefix members (unobserved ≠ cold — the
        // offline CDF put them there for a reason).
        let mut members: Vec<bat_types::ItemId> =
            rates.into_iter().take(cap).map(|(i, _)| i).collect();
        let chosen: std::collections::HashSet<bat_types::ItemId> =
            members.iter().copied().collect();
        let mut fill = 0u64;
        while members.len() < cap && fill < plan.num_items() {
            let candidate = bat_types::ItemId::new(fill);
            if !chosen.contains(&candidate) {
                members.push(candidate);
            }
            fill += 1;
        }
        plan.refresh_replicated(members);
    }

    /// Applies every scheduled fault with `at_secs <= now`, returning what
    /// fired. Both execution paths call this with *nominal* times (request
    /// arrivals, scheduled fault instants), which is what keeps their fault
    /// handling identical. [`Self::plan`] calls it implicitly; the engines
    /// call it directly when a fault instant needs side effects (rerouting
    /// queued work, killing a thread) beyond cache accounting.
    pub fn advance_faults(&mut self, now: f64) -> Vec<AppliedFault> {
        if self.faults.is_none() {
            return Vec::new();
        }
        let mut applied: Vec<(f64, AppliedFault)> = Vec::new();
        {
            let fs = self.faults.as_mut().expect("checked above");
            fs.cursor
                .advance_to(now, &mut fs.view, |e, a| applied.push((e.at_secs, a)));
        }
        let mut membership_changed = false;
        let mut reach_changed = false;
        for &(at, a) in &applied {
            match a {
                AppliedFault::Crashed(w) => {
                    // The meta service invalidates every user entry the dead
                    // worker held; those users miss and re-admit elsewhere.
                    let n = self
                        .faults
                        .as_ref()
                        .expect("checked above")
                        .view
                        .num_workers();
                    let (entries, bytes) = self.user_cache.invalidate_partition(w.index(), n);
                    if let Some(pool) = &mut self.tiers {
                        // The hot copies died with the worker; the cold tier
                        // is durable local storage and keeps its entries.
                        pool.forget_hot_partition(w.index(), n);
                    }
                    if let Some(meta) = &mut self.meta {
                        // The replicated index drops the same partition; the
                        // counts must agree or the mirror has diverged.
                        let dropped = meta.as_index_mut().drop_user_partition(w.index(), n, at);
                        debug_assert_eq!(
                            dropped, entries,
                            "meta service and user cache disagree on worker {w}'s partition"
                        );
                    }
                    let fs = self.faults.as_mut().expect("checked above");
                    fs.report.crashes += 1;
                    fs.report.invalidated_entries += entries;
                    fs.report.invalidated_bytes += bytes.as_u64();
                    membership_changed = true;
                    reach_changed = true;
                }
                AppliedFault::Drained(w) => {
                    // A drain is graceful for *work* (queued chunks migrate)
                    // but the process still exits, so its cache partition
                    // leaves with it — same invalidation as a crash, counted
                    // separately so reports distinguish planned scale-in.
                    let n = self
                        .faults
                        .as_ref()
                        .expect("checked above")
                        .view
                        .num_workers();
                    let (entries, bytes) = self.user_cache.invalidate_partition(w.index(), n);
                    if let Some(pool) = &mut self.tiers {
                        pool.forget_hot_partition(w.index(), n);
                    }
                    if let Some(meta) = &mut self.meta {
                        let dropped = meta.as_index_mut().drop_user_partition(w.index(), n, at);
                        debug_assert_eq!(
                            dropped, entries,
                            "meta service and user cache disagree on worker {w}'s partition"
                        );
                    }
                    let fs = self.faults.as_mut().expect("checked above");
                    fs.report.drains += 1;
                    fs.report.invalidated_entries += entries;
                    fs.report.invalidated_bytes += bytes.as_u64();
                    membership_changed = true;
                    reach_changed = true;
                }
                AppliedFault::Joined(w, _incarnation) => {
                    if let Some(meta) = &mut self.meta {
                        meta.as_index_mut().note_worker_restart(w.index(), at);
                    }
                    let fs = self.faults.as_mut().expect("checked above");
                    fs.report.joins += 1;
                    // The joined worker is a fresh process: empty until the
                    // re-warm stream completes, exactly like a restart.
                    fs.rewarm_ready_at[w.index()] = at + fs.rewarm_secs;
                    membership_changed = true;
                    reach_changed = true;
                }
                AppliedFault::Restarted(w, _incarnation) => {
                    if let Some(meta) = &mut self.meta {
                        meta.as_index_mut().note_worker_restart(w.index(), at);
                    }
                    let fs = self.faults.as_mut().expect("checked above");
                    fs.report.restarts += 1;
                    // The worker rejoins empty: it serves nothing until the
                    // re-warm stream completes (settle_rewarms).
                    fs.rewarm_ready_at[w.index()] = at + fs.rewarm_secs;
                    membership_changed = true;
                    reach_changed = true;
                }
                AppliedFault::LinkFactor(factor) => {
                    if factor > 1.0 {
                        self.faults
                            .as_mut()
                            .expect("checked above")
                            .report
                            .link_degrades += 1;
                    }
                }
                AppliedFault::MetaStalledUntil(_) => {
                    self.faults
                        .as_mut()
                        .expect("checked above")
                        .report
                        .meta_stalls += 1;
                }
                AppliedFault::MetaCrashed(m) => {
                    self.faults
                        .as_mut()
                        .expect("checked above")
                        .report
                        .meta_crashes += 1;
                    if let Some(MetaBackend::Replicated(client)) = &mut self.meta {
                        client.crash_replica(m, at);
                    }
                }
                AppliedFault::MetaRestarted(m) => {
                    self.faults
                        .as_mut()
                        .expect("checked above")
                        .report
                        .meta_restarts += 1;
                    if let Some(MetaBackend::Replicated(client)) = &mut self.meta {
                        client.restart_replica(m, at);
                    }
                }
                AppliedFault::LinkCut(..) => {
                    self.faults
                        .as_mut()
                        .expect("checked above")
                        .report
                        .link_partitions += 1;
                    reach_changed = true;
                }
                AppliedFault::LinkHealed(..) => {
                    reach_changed = true;
                }
                AppliedFault::LinkSlowed(_, _, factor) => {
                    // The pair stays reachable; only the pull latency model
                    // changes, so no membership or reach rebuild is needed.
                    if factor > 1.0 {
                        self.faults
                            .as_mut()
                            .expect("checked above")
                            .report
                            .slow_links += 1;
                    }
                }
            }
        }
        if reach_changed {
            self.update_meta_reachability();
        }
        if membership_changed {
            self.rebuild_degraded();
        }
        self.settle_rewarms(now);
        applied.into_iter().map(|(_, a)| a).collect()
    }

    /// Recomputes which meta replicas the client can reach over the worker
    /// fabric, from the current membership + link-cut matrix. A leader
    /// behind a cut link is as good as down: the client will force an
    /// election among the replicas it can still reach.
    fn update_meta_reachability(&mut self) {
        let Some(MetaBackend::Replicated(client)) = &mut self.meta else {
            return;
        };
        let Some(fs) = &self.faults else {
            return;
        };
        let view = &fs.view;
        client.update_reachability(|from, to| {
            view.reachable(WorkerId::new(from as u64), WorkerId::new(to as u64))
        });
    }

    /// Rebuilds the membership-aware re-plan after an epoch change and
    /// refreshes the policy's degraded-mode availability signal.
    fn rebuild_degraded(&mut self) {
        if let Some(fs) = self.faults.as_mut() {
            fs.warmed_adopted.clear();
            fs.degraded = if fs.view.n_alive() < fs.view.num_workers() {
                self.placement.as_ref().map(|plan| {
                    DegradedPlacement::new(plan, fs.view.alive_mask(), fs.per_worker_budget)
                })
            } else {
                None
            };
        }
        let frac = self.item_availability();
        self.policy.set_item_availability(frac);
        // Stamp the availability signal with the meta service's replicated
        // view epoch: placement reads flow through the client, and the
        // policy records which membership view it is acting on.
        if let Some(meta) = &self.meta {
            self.policy.set_view_epoch(meta.as_index().view_epoch());
        }
    }

    /// Completes any due re-warms: a restarted worker becomes warm once its
    /// item region has streamed back over the interconnect.
    fn settle_rewarms(&mut self, now: f64) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        let mut any = false;
        for w in 0..fs.view.num_workers() {
            let id = WorkerId::new(w as u64);
            if fs.view.is_alive(id)
                && fs.warm_incarnation[w] != fs.view.incarnation(id)
                && now >= fs.rewarm_ready_at[w]
            {
                fs.warm_incarnation[w] = fs.view.incarnation(id);
                if let Some(plan) = &self.placement {
                    let w_total = plan.num_workers() as u64;
                    let sharded = plan.cached_items() - plan.replicated_items();
                    fs.report.rewarmed_items += plan.replicated_items() + sharded.div_ceil(w_total);
                }
                any = true;
            }
        }
        if any {
            let frac = self.item_availability();
            self.policy.set_item_availability(frac);
        }
    }

    /// Fraction of the cached item corpus currently reachable: replicated
    /// items survive while any warm worker does, sharded items in
    /// proportion to warm membership. 1.0 without faults or placement.
    pub fn item_availability(&self) -> f64 {
        let (Some(fs), Some(plan)) = (&self.faults, &self.placement) else {
            return 1.0;
        };
        let n = plan.num_workers();
        let n_warm = (0..n).filter(|&w| fs.is_warm(w)).count();
        let cached = plan.cached_items();
        if cached == 0 {
            return 1.0;
        }
        let repl = plan.replicated_items() as f64;
        let sharded = (cached - plan.replicated_items()) as f64;
        let repl_avail = if n_warm > 0 { repl } else { 0.0 };
        ((repl_avail + sharded * n_warm as f64 / n as f64) / cached as f64).clamp(0.0, 1.0)
    }

    /// The fault subsystem's membership view, if a schedule is active.
    pub fn cluster_view(&self) -> Option<&ClusterView> {
        self.faults.as_ref().map(|fs| &fs.view)
    }

    /// Whether `worker` can accept dispatches under the current membership
    /// (always true without a fault schedule).
    pub fn is_worker_alive(&self, worker: usize) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|fs| fs.view.is_alive(WorkerId::new(worker as u64)))
    }

    /// The windowed hit-rate timeline `(window_end_secs, hit_rate)` the
    /// fault report's recovery metrics derive from (the availability curve).
    /// Empty without a fault schedule.
    pub fn fault_timeline(&self) -> Vec<(f64, f64)> {
        self.faults
            .as_ref()
            .map(|fs| {
                fs.buckets
                    .iter()
                    .filter(|(_, (_, total))| *total > 0)
                    .map(|(&b, &(reused, total))| {
                        (
                            (b + 1) as f64 * fs.bucket_secs,
                            reused as f64 / total as f64,
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Applies any still-pending fault events and returns the finalized
    /// [`FaultReport`] with recovery metrics computed from the hit-rate
    /// timeline. `None` when the planner runs without a fault schedule.
    pub fn finish_faults(&mut self) -> Option<FaultReport> {
        self.faults.as_ref()?;
        self.advance_faults(f64::INFINITY);
        // Fold the replicated meta service's consensus counters into the
        // report. Elections and epochs are driven by logical ticks off
        // nominal trace time, so both execution paths land on identical
        // numbers.
        if let Some(MetaBackend::Replicated(client)) = &self.meta {
            let group = client.group().stats();
            let fs = self.faults.as_mut().expect("checked above");
            fs.report.meta_elections = group.elections;
            fs.report.meta_final_epoch = client.group().epoch();
            fs.report.meta_fenced_appends = group.fenced_appends;
            fs.report.meta_snapshot_installs = group.snapshot_installs;
            fs.report.meta_unreachable_leader_elections = client.stats().forced_elections;
        }
        let timeline = self.fault_timeline();
        let fs = self.faults.as_mut().expect("checked above");
        let mut report = fs.report.clone();
        report.compute_recovery(&timeline, fs.first_crash_at, RECOVERY_TOLERANCE);
        Some(report)
    }

    /// Records one planned request into the windowed hit-rate timeline.
    fn record_fault_window(&mut self, now: f64, reused: u64, total: u64) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        let bucket = (now.max(0.0) / fs.bucket_secs) as u64;
        let entry = fs.buckets.entry(bucket).or_insert((0, 0));
        entry.0 += reused;
        entry.1 += total;
    }

    /// The cost model the planner prices jobs with.
    pub fn compute(&self) -> &ComputeModel {
        &self.compute
    }

    /// Read access to the user cache (tests, reporting).
    pub fn user_cache(&self) -> &UserCache {
        &self.user_cache
    }

    /// The cache-meta service backend (`None` only when caching is
    /// disabled).
    pub fn meta(&self) -> Option<&MetaBackend> {
        self.meta.as_ref()
    }

    /// The replicated meta client, when the planner runs one
    /// (`meta_replicas > 0`).
    pub fn meta_client(&self) -> Option<&MetaClient> {
        match &self.meta {
            Some(MetaBackend::Replicated(c)) => Some(c),
            _ => None,
        }
    }

    /// Replaces the prefix-selection policy (e.g. with the clairvoyant
    /// [`bat_sched::OraclePolicy`] for the scheduling ablation).
    pub fn set_policy(&mut self, policy: Box<dyn PromptPolicy>) {
        self.policy = policy;
    }

    /// Plans one request arriving at `now` (seconds).
    ///
    /// The prefix decision is made on the *pre-access* frequency estimate:
    /// `f_u` predicts the user's future rate from past behavior (§5.3), so
    /// the current arrival must not count toward its own admission —
    /// otherwise every first-time user looks hot and pollutes the cache
    /// with compulsory misses, the precise failure §5.3 attributes to
    /// cache-agnostic scheduling.
    pub fn plan(&mut self, req: &RankRequest, now: f64) -> PlannedJob {
        self.advance_faults(now);
        let total = req.total_tokens() as u64;
        let mut job = PlannedJob {
            prefix: PrefixKind::User,
            suffix_tokens: total,
            context_tokens: total,
            local_load: Bytes::ZERO,
            remote_bytes: Bytes::ZERO,
            net_extra_secs: 0.0,
        };
        if !self.caching {
            return job;
        }
        // A stalled meta service answers no lookups: the request cannot
        // locate any cached prefix and recomputes everything. Accesses are
        // not recorded either — the stalled service is the frequency book.
        if self
            .faults
            .as_ref()
            .is_some_and(|fs| fs.view.meta_stalled(now))
        {
            let fs = self.faults.as_mut().expect("checked above");
            fs.report.stall_forced_recomputes += 1;
            job.prefix = PrefixKind::Item;
            self.record_fault_window(now, 0, total);
            return job;
        }
        let kind = self.policy.decide(req, &mut self.user_cache, now);
        self.user_cache.record_access(req.user, now);
        if let Some(meta) = &mut self.meta {
            // The meta service is the frequency book: every access lands in
            // its replicated hotness table.
            meta.as_index_mut().touch(req.user.into(), now);
        }
        job.prefix = kind;
        match kind {
            PrefixKind::User => {
                let user_bytes = self.compute.kv_bytes(req.user_tokens as u64);
                if self.user_cache.lookup(req.user, now).is_some() {
                    // Prefix hit: only items + instructions are computed.
                    job.suffix_tokens = total - req.user_tokens as u64;
                    job.local_load = user_bytes;
                    if let Some(pool) = &mut self.tiers {
                        pool.note_hot_hit(req.user.into(), user_bytes, now);
                    }
                } else {
                    // Hot miss: probe the cold tier before recomputing. A
                    // cold hit streams the quantized prefix from local
                    // storage (priced as extra network-path time) instead
                    // of recomputing it.
                    let mut cold_hit = false;
                    if let Some(pool) = &mut self.tiers {
                        if let Some(cold_bytes) = pool.cold_lookup(req.user.into(), user_bytes, now)
                        {
                            cold_hit = true;
                            job.suffix_tokens = total - req.user_tokens as u64;
                            job.net_extra_secs += pool.cold_load_secs(cold_bytes);
                        }
                    }
                    // Admit the (recomputed or cold-served) prefix into the
                    // hot region under the configured discipline.
                    let outcome = match self.admission {
                        AdmissionKind::Lru => self.user_cache.admit_lru(req.user, user_bytes),
                        AdmissionKind::HotnessAware => {
                            self.user_cache.admit_if_hotter(req.user, user_bytes, now)
                        }
                    };
                    if let AdmitOutcome::Admitted { evicted } = outcome {
                        if let Some(meta) = &mut self.meta {
                            // Mirror the admission churn into the meta index:
                            // evictions unregister, the new resident registers
                            // its page-rounded footprint.
                            let meta = meta.as_index_mut();
                            for victim in &evicted {
                                meta.evict((*victim).into(), now);
                            }
                            let resident = self
                                .user_cache
                                .entry_bytes(req.user)
                                .expect("entry was just admitted");
                            meta.register(req.user.into(), resident.as_u64(), now);
                        }
                        if let Some(pool) = &mut self.tiers {
                            // Evicted residents demote into the cold tier at
                            // their quantized size; a cold-served entry now
                            // lives hot, so its cold copy is released.
                            for victim in evicted {
                                pool.demote_hot(victim.into(), now);
                            }
                            if cold_hit {
                                pool.promote(req.user.into());
                            }
                            let resident = self
                                .user_cache
                                .entry_bytes(req.user)
                                .expect("entry was just admitted");
                            pool.register_hot(req.user.into(), resident);
                        }
                    } else if let Some(pool) = &mut self.tiers {
                        // The hot region rejected the prefix (not hot
                        // enough to evict a resident). Park the freshly
                        // recomputed KV in the quantized cold tier rather
                        // than discarding the work; a cold-served entry
                        // is already there.
                        if !cold_hit {
                            pool.demote(req.user.into(), user_bytes, now);
                        }
                    }
                }
            }
            PrefixKind::Item => {
                if let Some(freq) = &mut self.item_freq {
                    for &item in &req.candidates {
                        freq.record(item, now);
                    }
                }
                if let Some(plan) = &self.placement {
                    let mut reused = 0u64;
                    if let Some(fs) = self.faults.as_mut() {
                        // Membership- and warmth-aware lookups. With every
                        // worker warm this reduces to the fault-free path.
                        for (i, &item) in req.candidates.iter().enumerate() {
                            let tokens = req.candidate_tokens[i] as u64;
                            let bytes = self.compute.kv_bytes(tokens);
                            match fs.locate(plan, item) {
                                FaultedLocation::LocalHit => {
                                    reused += tokens;
                                    job.local_load += bytes;
                                }
                                FaultedLocation::RemoteHit {
                                    from_replica,
                                    holder,
                                    alt,
                                } => {
                                    if !from_replica && self.brownout_rung >= 2 {
                                        // Brownout rung 2: a cold sharded
                                        // pull is cheaper to recompute than
                                        // to fetch while the fabric is the
                                        // bottleneck — unless the tiered
                                        // pool holds a local cold copy,
                                        // which costs no fabric at all.
                                        if let Some(pool) = &mut self.tiers {
                                            if let Some(cold) =
                                                pool.brownout_cold_serve(item.into(), bytes, now)
                                            {
                                                reused += tokens;
                                                job.net_extra_secs += pool.cold_load_secs(cold);
                                                continue;
                                            }
                                        }
                                        fs.report.brownout_recomputes += 1;
                                        continue;
                                    }
                                    reused += tokens;
                                    job.remote_bytes += bytes;
                                    if from_replica {
                                        fs.report.replica_hits_during_outage += 1;
                                    }
                                    let local = WorkerId::new(0);
                                    let f1 = fs.view.link_slow_factor(local, holder);
                                    if f1 > 1.0 {
                                        let transfer = self.compute.net_transfer_secs(bytes);
                                        if let Some(alt_w) = alt {
                                            // Hedge: dual-issue against the
                                            // alternate replica holder; the
                                            // first response wins, so the
                                            // effective slowdown is the min
                                            // of the two link factors.
                                            fs.report.hedged_pulls += 1;
                                            let f2 = fs.view.link_slow_factor(local, alt_w);
                                            if f2 < f1 {
                                                fs.report.hedge_wins += 1;
                                            }
                                            job.net_extra_secs += transfer * (f1.min(f2) - 1.0);
                                        } else {
                                            // Single-holder pull: retry with
                                            // seeded jittered backoff when
                                            // waiting out a transient beats
                                            // enduring the slow link, bounded
                                            // by the deadline slack.
                                            let jitter = fs.retry_rng.gen::<f64>();
                                            let backoff = fs.retry_backoff_secs * (1.0 + jitter);
                                            let slow_extra = transfer * (f1 - 1.0);
                                            let slack =
                                                req.slo.deadline_secs.unwrap_or(f64::INFINITY);
                                            if backoff < slow_extra && backoff + transfer <= slack {
                                                fs.report.backoff_retries += 1;
                                                job.net_extra_secs += backoff;
                                            } else {
                                                job.net_extra_secs += slow_extra;
                                            }
                                        }
                                    }
                                }
                                FaultedLocation::Recompute => {
                                    // The entry is unreachable in the hot
                                    // placement, but the cold tier is
                                    // durable local storage: serve from it
                                    // if resident, else recompute and
                                    // write the result back cold so later
                                    // accesses during the outage hit.
                                    let mut served = false;
                                    if let Some(pool) = &mut self.tiers {
                                        if let Some(cold) =
                                            pool.cold_lookup(item.into(), bytes, now)
                                        {
                                            reused += tokens;
                                            job.net_extra_secs += pool.cold_load_secs(cold);
                                            served = true;
                                        } else {
                                            pool.demote(item.into(), bytes, now);
                                        }
                                    }
                                    if !served {
                                        fs.report.recompute_fallbacks += 1;
                                    }
                                }
                                FaultedLocation::Uncached => {
                                    // Outside the hot corpus: the cold tier
                                    // extends coverage — serve a resident
                                    // copy, or write back the recompute.
                                    if let Some(pool) = &mut self.tiers {
                                        if let Some(cold) =
                                            pool.cold_lookup(item.into(), bytes, now)
                                        {
                                            reused += tokens;
                                            job.net_extra_secs += pool.cold_load_secs(cold);
                                        } else {
                                            pool.demote(item.into(), bytes, now);
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        // Affinity view: locations are owner-relative to the
                        // worker the request will land on; worker 0 is
                        // representative because sharding is round-robin.
                        let local = WorkerId::new(0);
                        for (i, &item) in req.candidates.iter().enumerate() {
                            let tokens = req.candidate_tokens[i] as u64;
                            let bytes = self.compute.kv_bytes(tokens);
                            match plan.locate(item, local) {
                                ItemLocation::LocalReplica | ItemLocation::LocalShard => {
                                    reused += tokens;
                                    job.local_load += bytes;
                                }
                                ItemLocation::Remote(_) => {
                                    reused += tokens;
                                    job.remote_bytes += bytes;
                                }
                                ItemLocation::Uncached => {
                                    // Outside the hot corpus: the cold tier
                                    // extends coverage — serve a resident
                                    // copy, or write back the recompute.
                                    if let Some(pool) = &mut self.tiers {
                                        if let Some(cold) =
                                            pool.cold_lookup(item.into(), bytes, now)
                                        {
                                            reused += tokens;
                                            job.net_extra_secs += pool.cold_load_secs(cold);
                                        } else {
                                            pool.demote(item.into(), bytes, now);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    job.suffix_tokens = total - reused;
                }
            }
        }
        self.record_fault_window(now, job.reused_tokens(), total);
        job
    }

    /// Prices a planned job: `(compute_secs, pcie_load_secs, net_secs)`.
    /// Network time reflects the fault view's current link factor, plus the
    /// job's per-pull slow-link extras (post-hedge inflation and backoff
    /// delays).
    pub fn price(&self, job: &PlannedJob) -> (f64, f64, f64) {
        let (c, l, n) = self.price_components(
            job.suffix_tokens,
            job.context_tokens,
            job.local_load,
            job.remote_bytes,
        );
        (c, l, n + job.net_extra_secs)
    }

    /// [`Self::price`] from raw components (the simulator prices batches
    /// from its own job records).
    pub fn price_components(
        &self,
        suffix_tokens: u64,
        context_tokens: u64,
        local_load: Bytes,
        remote_bytes: Bytes,
    ) -> (f64, f64, f64) {
        let link = self.faults.as_ref().map_or(1.0, |fs| fs.view.link_factor());
        (
            self.compute.prefill_secs(suffix_tokens, context_tokens),
            self.compute.kv_load_secs(local_load),
            self.compute.net_transfer_secs(remote_bytes) * link,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SystemKind};
    use bat_types::{
        ClusterConfig, DatasetConfig, ItemId, ModelConfig, RequestId, SimTime, UserId,
    };

    fn req(user: u64, user_tokens: u32) -> RankRequest {
        RankRequest {
            id: RequestId::new(0),
            user: UserId::new(user),
            user_tokens,
            candidates: (0..100).map(ItemId::new).collect(),
            candidate_tokens: vec![10; 100],
            instruction_tokens: 32,
            arrival: SimTime::ZERO,
            slo: Default::default(),
        }
    }

    fn planner(kind: SystemKind) -> RequestPlanner {
        let ds = DatasetConfig::industry();
        let cfg = EngineConfig::for_system(
            kind,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        );
        RequestPlanner::from_config(&cfg)
    }

    #[test]
    fn recompute_plans_full_suffix() {
        let mut p = planner(SystemKind::Recompute);
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        assert_eq!(job.suffix_tokens, r.total_tokens() as u64);
        assert_eq!(job.reused_tokens(), 0);
    }

    #[test]
    fn up_miss_then_hit() {
        let mut p = planner(SystemKind::UserPrefix);
        let r = req(1, 1500);
        let miss = p.plan(&r, 0.0);
        assert_eq!(miss.reused_tokens(), 0, "first request misses");
        let hit = p.plan(&r, 1.0);
        assert_eq!(
            hit.reused_tokens(),
            1500,
            "second request hits the user prefix"
        );
        assert!(hit.local_load > Bytes::ZERO);
    }

    #[test]
    fn ip_reuses_hot_items_immediately() {
        let mut p = planner(SystemKind::ItemPrefix);
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        // Candidates 0..100 are the hottest (replicated) items: all reused.
        assert_eq!(job.reused_tokens(), 1000);
        assert_eq!(job.prefix, PrefixKind::Item);
    }

    #[test]
    fn bat_first_timer_goes_item_returning_user_goes_user() {
        // Constrain the user region to two entries so admission must choose.
        let ds = DatasetConfig::industry();
        let cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        )
        .with_user_cache_capacity(bat_types::Bytes::from_mb(120));
        let mut p = RequestPlanner::from_config(&cfg);

        // Warm the cache to capacity with returning residents (free space
        // admits anyone — there is nothing to pollute).
        for user in [1u64, 2] {
            let resident = req(user, 2000);
            for i in 0..4 {
                let _ = p.plan(&resident, i as f64 * 5.0 + user as f64);
            }
            assert!(p.user_cache().contains(resident.user));
        }

        // A first-time user has a zero pre-access frequency estimate: it
        // must not displace the residents, and falls back to Item-as-prefix.
        let newcomer = req(42, 2000);
        let first = p.plan(&newcomer, 20.0);
        assert_eq!(
            first.prefix,
            PrefixKind::Item,
            "unknown user must not pollute the cache"
        );
        // The newcomer returns repeatedly: prediction rises, UP gets chosen.
        let mut kinds = Vec::new();
        for i in 1..6 {
            kinds.push(p.plan(&newcomer, 20.0 + i as f64 * 10.0).prefix);
        }
        assert!(
            kinds.contains(&PrefixKind::User),
            "a frequently returning user should eventually be scheduled UP: {kinds:?}"
        );
    }

    #[test]
    fn item_refresh_replicates_observed_hotspot() {
        let ds = DatasetConfig::industry();
        let mut cfg = EngineConfig::for_system(
            SystemKind::ItemPrefix,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        );
        cfg.track_item_hotness = true;
        let mut p = RequestPlanner::from_config(&cfg);
        // Burst hotspot: a request repeatedly hitting a cold-band item.
        let cold_item = ItemId::new(900_000);
        let mut r = req(1, 1500);
        r.candidates[0] = cold_item;
        let before = p.plan(&r, 0.0);
        for t in 1..50 {
            let _ = p.plan(&r, t as f64);
        }
        p.refresh_item_replication(50.0);
        let after = p.plan(&r, 51.0);
        // The hot cold-band item moved into the replicated area: remote
        // traffic cannot be higher than before the refresh.
        assert!(after.remote_bytes <= before.remote_bytes);
    }

    fn fault_state(n: usize) -> FaultState {
        let schedule = bat_faults::FaultSchedule::new(n, vec![]).expect("empty schedule is valid");
        FaultState {
            first_crash_at: None,
            cursor: FaultCursor::new(schedule),
            view: ClusterView::new(n),
            report: FaultReport::default(),
            warm_incarnation: vec![0; n],
            rewarm_ready_at: vec![f64::NEG_INFINITY; n],
            rewarm_secs: 0.0,
            per_worker_budget: Bytes::new(u64::MAX / 2),
            degraded: None,
            warmed_adopted: HashSet::new(),
            buckets: BTreeMap::new(),
            bucket_secs: FAULT_WINDOW_SECS,
            retry_rng: SmallRng::seed_from_u64(0x510_B0FF),
            retry_backoff_secs: 0.002,
        }
    }

    fn cut(view: &mut ClusterView, a: u64, b: u64) {
        view.apply(&bat_faults::FaultEvent {
            at_secs: 0.0,
            kind: bat_faults::FaultKind::CutLink {
                a: WorkerId::new(a),
                b: WorkerId::new(b),
            },
        });
    }

    #[test]
    fn replicated_lookup_skips_unreachable_holders() {
        use bat_placement::PlacementStrategy;
        let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 1000, 4, 0.1, 1 << 20);
        let mut fs = fault_state(4);
        // Affinity worker 0 is alive but its cache is cold (e.g. pending
        // re-warm), so the replicated hit must come from another holder.
        fs.warm_incarnation[0] = u64::MAX;
        cut(&mut fs.view, 0, 1);
        cut(&mut fs.view, 0, 2);
        let hot = ItemId::new(5);
        assert!(plan.is_replicated(hot));
        assert!(matches!(
            fs.locate(&plan, hot),
            FaultedLocation::RemoteHit {
                from_replica: true,
                ..
            }
        ));
        assert_eq!(
            fs.report.unreachable_kv_fallbacks, 1,
            "workers 1 and 2 were warm but cut off; worker 3 served"
        );
        // Cutting the last link leaves no reachable holder: recompute.
        cut(&mut fs.view, 0, 3);
        assert!(matches!(fs.locate(&plan, hot), FaultedLocation::Recompute));
        assert_eq!(fs.report.unreachable_kv_fallbacks, 2);
    }

    #[test]
    fn sharded_lookup_respects_partition() {
        use bat_placement::PlacementStrategy;
        let plan = ItemPlacementPlan::new(PlacementStrategy::HashShard, 1000, 4, 0.0, 1 << 20);
        let mut fs = fault_state(4);
        let item = ItemId::new(9); // owner = 9 % 4 = 1
        assert!(matches!(
            fs.locate(&plan, item),
            FaultedLocation::RemoteHit {
                from_replica: false,
                ..
            }
        ));
        cut(&mut fs.view, 0, 1);
        assert!(
            matches!(fs.locate(&plan, item), FaultedLocation::Recompute),
            "a warm owner behind a cut link must not serve a remote hit"
        );
        assert_eq!(fs.report.unreachable_kv_fallbacks, 1);
    }

    #[test]
    fn adoption_waits_for_reachable_adopter() {
        use bat_placement::PlacementStrategy;
        let plan = ItemPlacementPlan::new(PlacementStrategy::HashShard, 1000, 4, 0.0, 1 << 20);
        let mut fs = fault_state(4);
        // Crash the owner of item 9 (worker 1) and re-plan around it.
        fs.view.apply(&bat_faults::FaultEvent {
            at_secs: 0.0,
            kind: bat_faults::FaultKind::WorkerCrash(WorkerId::new(1)),
        });
        let alive = fs.view.alive_mask().to_vec();
        fs.degraded = Some(DegradedPlacement::new(
            &plan,
            &alive,
            Bytes::new(u64::MAX / 2),
        ));
        let item = ItemId::new(9);
        let DegradedLocation::Adopted(target) = fs.degraded.as_ref().unwrap().locate(item) else {
            panic!("dead owner's entry should be adopted");
        };
        assert_ne!(target.index(), 1, "dead worker cannot adopt");
        if target.index() != 0 {
            // While the adopter is cut off, every access recomputes and the
            // write-back is withheld (it could not reach the adopter).
            cut(&mut fs.view, 0, target.as_u64());
            assert!(matches!(fs.locate(&plan, item), FaultedLocation::Recompute));
            assert!(matches!(fs.locate(&plan, item), FaultedLocation::Recompute));
            assert!(!fs.warmed_adopted.contains(&item.as_u64()));
            assert_eq!(fs.report.unreachable_kv_fallbacks, 2);
            // Heal the link: the first access warms the adopter, the next
            // one hits it remotely.
            fs.view.apply(&bat_faults::FaultEvent {
                at_secs: 1.0,
                kind: bat_faults::FaultKind::HealLink {
                    a: WorkerId::new(0),
                    b: target,
                },
            });
        }
        assert!(matches!(fs.locate(&plan, item), FaultedLocation::Recompute));
        assert!(fs.warmed_adopted.contains(&item.as_u64()));
        assert!(!matches!(
            fs.locate(&plan, item),
            FaultedLocation::Recompute | FaultedLocation::Uncached
        ));
    }

    #[test]
    fn pricing_is_consistent_with_cost_model() {
        let mut p = planner(SystemKind::Recompute);
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        let (c, l, n) = p.price(&job);
        assert!(c > 0.0);
        assert_eq!(l, 0.0);
        assert_eq!(n, 0.0);
        let direct = p
            .compute()
            .prefill_secs(job.suffix_tokens, job.context_tokens);
        assert_eq!(c, direct);
    }

    fn faulted_planner(kind: SystemKind, events: Vec<bat_faults::FaultEvent>) -> RequestPlanner {
        let ds = DatasetConfig::industry();
        let cfg = EngineConfig::for_system(
            kind,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        )
        .with_faults(Some(
            bat_faults::FaultSchedule::new(4, events).expect("valid schedule"),
        ));
        RequestPlanner::from_config(&cfg)
    }

    fn slow(a: u64, b: u64, factor: f64) -> bat_faults::FaultEvent {
        bat_faults::FaultEvent {
            at_secs: 0.0,
            kind: bat_faults::FaultKind::SlowLink {
                a: WorkerId::new(a),
                b: WorkerId::new(b),
                factor,
            },
        }
    }

    /// Request whose candidates are all cold-band sharded items owned by
    /// worker 1 (`id % 4 == 1`): single-holder remote pulls, no hedge target.
    fn sharded_req() -> RankRequest {
        let mut r = req(1, 1500);
        for (i, c) in r.candidates.iter_mut().enumerate() {
            *c = ItemId::new(900_001 + 4 * i as u64);
        }
        r
    }

    #[test]
    fn slow_link_hedges_replicated_pulls() {
        let mut p = faulted_planner(SystemKind::ItemPrefix, vec![slow(0, 1, 4.0)]);
        p.advance_faults(0.0);
        // Cold affinity worker (re-warm pending indefinitely): the replicated
        // hits must be served remotely, and holder order makes worker 1 (slow
        // link) primary, worker 2 the hedge target.
        {
            let fs = p.faults.as_mut().unwrap();
            fs.warm_incarnation[0] = u64::MAX;
            fs.rewarm_ready_at[0] = f64::INFINITY;
        }
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        let report = &p.faults.as_ref().unwrap().report;
        assert_eq!(report.hedged_pulls, 100, "every replicated pull hedged");
        assert_eq!(
            report.hedge_wins, 100,
            "the alternate holder rides an unaffected link and always wins"
        );
        assert_eq!(report.backoff_retries, 0);
        assert_eq!(
            job.net_extra_secs, 0.0,
            "a winning hedge pays no slow-link surcharge"
        );
    }

    #[test]
    fn slow_link_single_holder_retries_with_seeded_backoff() {
        // Factor large enough that waiting out the transient always beats
        // enduring the slow transfer.
        let mut p = faulted_planner(SystemKind::ItemPrefix, vec![slow(0, 1, 1e6)]);
        p.advance_faults(0.0);
        let r = sharded_req();
        let job = p.plan(&r, 0.0);
        {
            let report = &p.faults.as_ref().unwrap().report;
            assert_eq!(report.backoff_retries, 100);
            assert_eq!(report.hedged_pulls, 0, "single holder has no hedge target");
        }
        assert!(job.net_extra_secs > 0.0);
        let (_, _, n) = p.price(&job);
        assert!(
            n >= job.net_extra_secs,
            "the network price must carry the backoff surcharge"
        );
        // The jitter stream is seeded: an identical planner reproduces the
        // exact surcharge bit for bit.
        let mut q = faulted_planner(SystemKind::ItemPrefix, vec![slow(0, 1, 1e6)]);
        q.advance_faults(0.0);
        assert_eq!(q.plan(&r, 0.0).net_extra_secs, job.net_extra_secs);
    }

    #[test]
    fn backoff_respects_deadline_slack() {
        let mut p = faulted_planner(SystemKind::ItemPrefix, vec![slow(0, 1, 1e6)]);
        p.advance_faults(0.0);
        let mut r = sharded_req();
        // Slack tighter than the minimum backoff: the planner must endure
        // the slow link rather than burn the budget waiting to retry.
        r.slo = bat_types::SloBudget::with_deadline(1e-3);
        let job = p.plan(&r, 0.0);
        let report = &p.faults.as_ref().unwrap().report;
        assert_eq!(report.backoff_retries, 0);
        assert!(
            job.net_extra_secs > 1.0,
            "enduring a 1e6x slowdown is expensive: {}",
            job.net_extra_secs
        );
    }

    #[test]
    fn brownout_rung_two_degrades_cold_pulls_to_recompute() {
        let mut p = faulted_planner(SystemKind::ItemPrefix, vec![]);
        p.set_brownout_rung(2);
        let r = sharded_req();
        let job = p.plan(&r, 0.0);
        let report = &p.faults.as_ref().unwrap().report;
        assert_eq!(report.brownout_recomputes, 100);
        assert_eq!(report.brownout_transitions, 1);
        assert_eq!(report.max_brownout_rung, 2);
        assert_eq!(job.remote_bytes, Bytes::ZERO);
        assert_eq!(job.reused_tokens(), 0, "cold pulls degraded to recompute");
    }

    #[test]
    fn brownout_rung_one_suspends_replication_refresh() {
        let mut p = faulted_planner(SystemKind::ItemPrefix, vec![]);
        p.set_brownout_rung(1);
        p.refresh_item_replication(1.0);
        assert_eq!(p.faults.as_ref().unwrap().report.suspended_refreshes, 1);
        // Stepping back down resumes the background refresh.
        p.set_brownout_rung(0);
        p.refresh_item_replication(2.0);
        let report = &p.faults.as_ref().unwrap().report;
        assert_eq!(report.suspended_refreshes, 1);
        assert_eq!(report.max_brownout_rung, 1);
        assert_eq!(report.brownout_transitions, 2);
    }
}
