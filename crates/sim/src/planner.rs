//! Request planning: the scheduler's per-request cache transaction.
//!
//! [`RequestPlanner`] encapsulates what the centralized scheduler does for
//! one arriving request (§5.1): consult the policy for the prefix decision,
//! perform the user-cache lookup/admission, resolve item placement, and
//! emit the resulting compute job (suffix tokens, context size, KV bytes to
//! load locally and to pull over the network). Both the discrete-event
//! engine (`bat-sim`) and the threaded runtime (`bat-serve`) drive the same
//! planner, so their cache behavior is identical by construction.

use crate::compute::ComputeModel;
use crate::engine::{AdmissionKind, EngineConfig, PolicyKind};
use bat_kvcache::{UserCache, UserCacheConfig};
use bat_placement::{ItemLocation, ItemPlacementPlan};
use bat_sched::{CacheAgnosticPolicy, HotnessAwarePolicy, PromptPolicy, StaticPolicy};
use bat_types::{Bytes, PrefixKind, RankRequest, WorkerId};

/// The planned compute job for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJob {
    /// Prefix decision taken (meaningless when caching is disabled).
    pub prefix: PrefixKind,
    /// Tokens that must be computed.
    pub suffix_tokens: u64,
    /// Total attention context (= prompt length).
    pub context_tokens: u64,
    /// KV bytes loaded from local host memory over PCIe.
    pub local_load: Bytes,
    /// KV bytes pulled from remote cache workers.
    pub remote_bytes: Bytes,
}

impl PlannedJob {
    /// Tokens reused from cache.
    pub fn reused_tokens(&self) -> u64 {
        self.context_tokens - self.suffix_tokens
    }
}

/// Stateful per-request planner shared by the simulator and the runtime.
pub struct RequestPlanner {
    compute: ComputeModel,
    user_cache: UserCache,
    policy: Box<dyn PromptPolicy>,
    placement: Option<ItemPlacementPlan>,
    admission: AdmissionKind,
    caching: bool,
    /// Item access-frequency estimator for the §5.2 Step 3 background
    /// refresh; populated only when tracking is enabled.
    item_freq: Option<bat_kvcache::FreqEstimator<bat_types::ItemId>>,
}

impl RequestPlanner {
    /// Builds a planner from an engine configuration (assumed validated).
    pub fn from_config(cfg: &EngineConfig) -> Self {
        let compute = ComputeModel::new(cfg.model.clone(), cfg.cluster.node.clone());
        let user_cache = UserCache::new(UserCacheConfig {
            capacity: cfg.user_cache_capacity,
            freq_window_secs: cfg.freq_window_secs,
            min_freq_sample: 8,
            page_bytes: 16 * cfg.model.kv_bytes_per_token(),
        });
        let policy: Box<dyn PromptPolicy> = match cfg.policy {
            PolicyKind::StaticUser => Box::new(StaticPolicy(PrefixKind::User)),
            PolicyKind::StaticItem => Box::new(StaticPolicy(PrefixKind::Item)),
            PolicyKind::CacheAgnostic => Box::new(CacheAgnosticPolicy),
            PolicyKind::HotnessAware => {
                Box::new(HotnessAwarePolicy::new(cfg.model.kv_bytes_per_token()))
            }
        };
        RequestPlanner {
            compute,
            user_cache,
            policy,
            placement: cfg.placement.clone(),
            admission: cfg.admission,
            caching: cfg.caching,
            item_freq: cfg
                .track_item_hotness
                .then(|| bat_kvcache::FreqEstimator::new(cfg.freq_window_secs)),
        }
    }

    /// Re-replicates the hottest observed items into the placement plan's
    /// replicated area (§5.2 Step 3's background update). No-op unless item
    /// hotness tracking is enabled and an item placement exists.
    pub fn refresh_item_replication(&mut self, now: f64) {
        let (Some(freq), Some(plan)) = (&self.item_freq, &mut self.placement) else {
            return;
        };
        let cap = plan.replicated_items() as usize;
        if cap == 0 {
            return;
        }
        let mut rates: Vec<(bat_types::ItemId, f64)> = freq
            .iter_keys()
            .map(|&item| (item, freq.rate(&item, now)))
            .collect();
        rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        // Hottest observed items first; any leftover area capacity keeps the
        // offline plan's rank-prefix members (unobserved ≠ cold — the
        // offline CDF put them there for a reason).
        let mut members: Vec<bat_types::ItemId> =
            rates.into_iter().take(cap).map(|(i, _)| i).collect();
        let chosen: std::collections::HashSet<bat_types::ItemId> =
            members.iter().copied().collect();
        let mut fill = 0u64;
        while members.len() < cap && fill < plan.num_items() {
            let candidate = bat_types::ItemId::new(fill);
            if !chosen.contains(&candidate) {
                members.push(candidate);
            }
            fill += 1;
        }
        plan.refresh_replicated(members);
    }

    /// The cost model the planner prices jobs with.
    pub fn compute(&self) -> &ComputeModel {
        &self.compute
    }

    /// Read access to the user cache (tests, reporting).
    pub fn user_cache(&self) -> &UserCache {
        &self.user_cache
    }

    /// Replaces the prefix-selection policy (e.g. with the clairvoyant
    /// [`bat_sched::OraclePolicy`] for the scheduling ablation).
    pub fn set_policy(&mut self, policy: Box<dyn PromptPolicy>) {
        self.policy = policy;
    }

    /// Plans one request arriving at `now` (seconds).
    ///
    /// The prefix decision is made on the *pre-access* frequency estimate:
    /// `f_u` predicts the user's future rate from past behavior (§5.3), so
    /// the current arrival must not count toward its own admission —
    /// otherwise every first-time user looks hot and pollutes the cache
    /// with compulsory misses, the precise failure §5.3 attributes to
    /// cache-agnostic scheduling.
    pub fn plan(&mut self, req: &RankRequest, now: f64) -> PlannedJob {
        let total = req.total_tokens() as u64;
        let mut job = PlannedJob {
            prefix: PrefixKind::User,
            suffix_tokens: total,
            context_tokens: total,
            local_load: Bytes::ZERO,
            remote_bytes: Bytes::ZERO,
        };
        if !self.caching {
            return job;
        }
        let kind = self.policy.decide(req, &mut self.user_cache, now);
        self.user_cache.record_access(req.user, now);
        job.prefix = kind;
        match kind {
            PrefixKind::User => {
                let user_bytes = self.compute.kv_bytes(req.user_tokens as u64);
                if self.user_cache.lookup(req.user, now).is_some() {
                    // Prefix hit: only items + instructions are computed.
                    job.suffix_tokens = total - req.user_tokens as u64;
                    job.local_load = user_bytes;
                } else {
                    // Miss: recompute everything, then admit the new prefix.
                    match self.admission {
                        AdmissionKind::Lru => {
                            let _ = self.user_cache.admit_lru(req.user, user_bytes);
                        }
                        AdmissionKind::HotnessAware => {
                            let _ = self.user_cache.admit_if_hotter(req.user, user_bytes, now);
                        }
                    }
                }
            }
            PrefixKind::Item => {
                if let Some(freq) = &mut self.item_freq {
                    for &item in &req.candidates {
                        freq.record(item, now);
                    }
                }
                if let Some(plan) = &self.placement {
                    // Affinity view: locations are owner-relative to the
                    // worker the request will land on; worker 0 is
                    // representative because sharding is round-robin.
                    let local = WorkerId::new(0);
                    let mut reused = 0u64;
                    for (i, &item) in req.candidates.iter().enumerate() {
                        let tokens = req.candidate_tokens[i] as u64;
                        let bytes = self.compute.kv_bytes(tokens);
                        match plan.locate(item, local) {
                            ItemLocation::LocalReplica | ItemLocation::LocalShard => {
                                reused += tokens;
                                job.local_load += bytes;
                            }
                            ItemLocation::Remote(_) => {
                                reused += tokens;
                                job.remote_bytes += bytes;
                            }
                            ItemLocation::Uncached => {}
                        }
                    }
                    job.suffix_tokens = total - reused;
                }
            }
        }
        job
    }

    /// Prices a planned job: `(compute_secs, pcie_load_secs, net_secs)`.
    pub fn price(&self, job: &PlannedJob) -> (f64, f64, f64) {
        (
            self.compute
                .prefill_secs(job.suffix_tokens, job.context_tokens),
            self.compute.kv_load_secs(job.local_load),
            self.compute.net_transfer_secs(job.remote_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SystemKind};
    use bat_types::{ClusterConfig, DatasetConfig, ItemId, ModelConfig, RequestId, SimTime, UserId};

    fn req(user: u64, user_tokens: u32) -> RankRequest {
        RankRequest {
            id: RequestId::new(0),
            user: UserId::new(user),
            user_tokens,
            candidates: (0..100).map(ItemId::new).collect(),
            candidate_tokens: vec![10; 100],
            instruction_tokens: 32,
            arrival: SimTime::ZERO,
        }
    }

    fn planner(kind: SystemKind) -> RequestPlanner {
        let ds = DatasetConfig::industry();
        let cfg = EngineConfig::for_system(
            kind,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        );
        RequestPlanner::from_config(&cfg)
    }

    #[test]
    fn recompute_plans_full_suffix() {
        let mut p = planner(SystemKind::Recompute);
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        assert_eq!(job.suffix_tokens, r.total_tokens() as u64);
        assert_eq!(job.reused_tokens(), 0);
    }

    #[test]
    fn up_miss_then_hit() {
        let mut p = planner(SystemKind::UserPrefix);
        let r = req(1, 1500);
        let miss = p.plan(&r, 0.0);
        assert_eq!(miss.reused_tokens(), 0, "first request misses");
        let hit = p.plan(&r, 1.0);
        assert_eq!(hit.reused_tokens(), 1500, "second request hits the user prefix");
        assert!(hit.local_load > Bytes::ZERO);
    }

    #[test]
    fn ip_reuses_hot_items_immediately() {
        let mut p = planner(SystemKind::ItemPrefix);
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        // Candidates 0..100 are the hottest (replicated) items: all reused.
        assert_eq!(job.reused_tokens(), 1000);
        assert_eq!(job.prefix, PrefixKind::Item);
    }

    #[test]
    fn bat_first_timer_goes_item_returning_user_goes_user() {
        // Constrain the user region to two entries so admission must choose.
        let ds = DatasetConfig::industry();
        let cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        )
        .with_user_cache_capacity(bat_types::Bytes::from_mb(120));
        let mut p = RequestPlanner::from_config(&cfg);

        // Warm the cache to capacity with returning residents (free space
        // admits anyone — there is nothing to pollute).
        for user in [1u64, 2] {
            let resident = req(user, 2000);
            for i in 0..4 {
                let _ = p.plan(&resident, i as f64 * 5.0 + user as f64);
            }
            assert!(p.user_cache().contains(resident.user));
        }

        // A first-time user has a zero pre-access frequency estimate: it
        // must not displace the residents, and falls back to Item-as-prefix.
        let newcomer = req(42, 2000);
        let first = p.plan(&newcomer, 20.0);
        assert_eq!(
            first.prefix,
            PrefixKind::Item,
            "unknown user must not pollute the cache"
        );
        // The newcomer returns repeatedly: prediction rises, UP gets chosen.
        let mut kinds = Vec::new();
        for i in 1..6 {
            kinds.push(p.plan(&newcomer, 20.0 + i as f64 * 10.0).prefix);
        }
        assert!(
            kinds.contains(&PrefixKind::User),
            "a frequently returning user should eventually be scheduled UP: {kinds:?}"
        );
    }

    #[test]
    fn item_refresh_replicates_observed_hotspot() {
        let ds = DatasetConfig::industry();
        let mut cfg = EngineConfig::for_system(
            SystemKind::ItemPrefix,
            ModelConfig::qwen2_1_5b(),
            ClusterConfig::a100_4node(),
            &ds,
        );
        cfg.track_item_hotness = true;
        let mut p = RequestPlanner::from_config(&cfg);
        // Burst hotspot: a request repeatedly hitting a cold-band item.
        let cold_item = ItemId::new(900_000);
        let mut r = req(1, 1500);
        r.candidates[0] = cold_item;
        let before = p.plan(&r, 0.0);
        for t in 1..50 {
            let _ = p.plan(&r, t as f64);
        }
        p.refresh_item_replication(50.0);
        let after = p.plan(&r, 51.0);
        // The hot cold-band item moved into the replicated area: remote
        // traffic cannot be higher than before the refresh.
        assert!(after.remote_bytes <= before.remote_bytes);
    }

    #[test]
    fn pricing_is_consistent_with_cost_model() {
        let mut p = planner(SystemKind::Recompute);
        let r = req(1, 1500);
        let job = p.plan(&r, 0.0);
        let (c, l, n) = p.price(&job);
        assert!(c > 0.0);
        assert_eq!(l, 0.0);
        assert_eq!(n, 0.0);
        let direct = p
            .compute()
            .prefill_secs(job.suffix_tokens, job.context_tokens);
        assert_eq!(c, direct);
    }
}
