//! The GPU / interconnect cost model.
//!
//! The paper's serving results are driven by how many tokens each request
//! *computes* versus *reuses*, and how many KV bytes move across PCIe and
//! the network. We model those with the standard dense-transformer roofline
//! (§3.1's "compute-bound prefill"):
//!
//! * prefill time = `(2·params·S + 4·L·d·S·T) / (peak_flops × MFU)` for `S`
//!   new tokens against a `T`-token context (see
//!   [`bat_types::ModelConfig::prefill_flops`]);
//! * prefix-cache load = `bytes / pcie_bandwidth` (§3.2 loads KV from CPU
//!   memory);
//! * remote item fetch = `bytes / network_bandwidth` (§5.2's inter-node
//!   transfers).
//!
//! Absolute latencies land in the same regime as Figure 2a (hundreds of
//! milliseconds for 8K-token recomputation on an A100-class part, ~10× less
//! for a prefix-cache load); relative results depend only on token/byte
//! accounting.

use bat_types::{Bytes, ModelConfig, NodeConfig};

/// Cost model binding a model architecture to node hardware.
///
/// ```
/// use bat_sim::ComputeModel;
/// use bat_types::{ModelConfig, NodeConfig};
///
/// let m = ComputeModel::new(ModelConfig::qwen2_1_5b(), NodeConfig::a100_testbed());
/// // A 50% prefix hit cuts prefill well below full recomputation even
/// // after paying the PCIe load (Figure 2a's comparison).
/// let full = m.prefill_secs(3000, 3000);
/// let cached = m.prefill_secs(1500, 3000) + m.kv_load_secs(m.kv_bytes(1500));
/// assert!(cached < full);
/// ```
#[derive(Debug, Clone)]
pub struct ComputeModel {
    model: ModelConfig,
    node: NodeConfig,
}

impl ComputeModel {
    /// Creates a cost model.
    pub fn new(model: ModelConfig, node: NodeConfig) -> Self {
        ComputeModel { model, node }
    }

    /// The model architecture.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The node hardware.
    pub fn node(&self) -> &NodeConfig {
        &self.node
    }

    /// Prefill seconds for `suffix` new tokens against a `context`-token
    /// attention context.
    ///
    /// # Panics
    ///
    /// Panics if `suffix > context`.
    pub fn prefill_secs(&self, suffix: u64, context: u64) -> f64 {
        self.model.prefill_flops(suffix, context) / self.node.effective_flops()
    }

    /// Seconds to load `bytes` of prefix KV cache from host memory over
    /// PCIe.
    pub fn kv_load_secs(&self, bytes: Bytes) -> f64 {
        bytes / self.node.pcie_bandwidth
    }

    /// Seconds to pull `bytes` of KV cache from a remote cache worker.
    pub fn net_transfer_secs(&self, bytes: Bytes) -> f64 {
        bytes / self.node.network_bandwidth
    }

    /// KV bytes of a `tokens`-token entry.
    pub fn kv_bytes(&self, tokens: u64) -> Bytes {
        Bytes::new(self.model.kv_bytes(tokens))
    }

    /// Algorithm 1's `PrefillTime(τ_u, c × τ_i)` estimate: full
    /// recomputation of an average prompt (user suffix after the shared
    /// item prefix). The paper fits a polynomial regression offline; our
    /// analytic model *is* that polynomial.
    pub fn prefill_estimate_secs(&self, user_tokens: u64, item_block_tokens: u64) -> f64 {
        let total = user_tokens + item_block_tokens;
        self.prefill_secs(total, total)
    }

    /// Algorithm 1's `B`: network bandwidth in KV *tokens* per second.
    pub fn net_tokens_per_sec(&self) -> f64 {
        self.node.network_bandwidth / self.model.kv_bytes_per_token() as f64
    }

    /// A crude upper bound on per-node saturation QPS with full
    /// recomputation — used to pick offered loads for saturation
    /// measurements.
    pub fn recompute_qps_upper_bound(&self, avg_prompt_tokens: u64) -> f64 {
        1.0 / self.prefill_secs(avg_prompt_tokens, avg_prompt_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100_qwen() -> ComputeModel {
        ComputeModel::new(ModelConfig::qwen2_1_5b(), NodeConfig::a100_testbed())
    }

    #[test]
    fn fig2a_recompute_exceeds_slo_at_long_context() {
        // Figure 2a / §3.1: with long sequences the computation latency
        // "can easily exceed" a 100–200 ms SLO even at batch size 1.
        let m = ComputeModel::new(ModelConfig::qwen2_7b(), NodeConfig::a100_testbed());
        let t = m.prefill_secs(8192, 8192);
        assert!(t > 0.2, "Qwen2-7B @ 8K should exceed 200ms, got {t}s");
        let small = a100_qwen().prefill_secs(512, 512);
        assert!(small < 0.1, "Qwen2-1.5B @ 512 stays well under SLO");
    }

    #[test]
    fn fig2a_prefix_load_is_order_of_magnitude_cheaper() {
        // §3.2: prefix caching is "orders of magnitude lower serving
        // latency than recomputation".
        let m = a100_qwen();
        let recompute = m.prefill_secs(8192, 8192);
        let load = m.kv_load_secs(m.kv_bytes(8192));
        assert!(
            recompute / load > 8.0,
            "recompute {recompute}s vs load {load}s"
        );
    }

    #[test]
    fn prefix_hit_reduces_latency() {
        let m = a100_qwen();
        let full = m.prefill_secs(3000, 3000);
        let cached = m.prefill_secs(1500, 3000) + m.kv_load_secs(m.kv_bytes(1500));
        assert!(cached < 0.7 * full);
    }

    #[test]
    fn network_slower_than_pcie() {
        let m = a100_qwen();
        let b = m.kv_bytes(1000);
        assert!(m.net_transfer_secs(b) > m.kv_load_secs(b));
    }

    #[test]
    fn algorithm1_inputs_are_consistent() {
        let m = a100_qwen();
        // 100 Gbps / 28672 B per token ≈ 436K tokens/s.
        let b = m.net_tokens_per_sec();
        assert!((b - 12.5e9 / 28672.0).abs() < 1.0);
        let t = m.prefill_estimate_secs(1500, 1000);
        assert!(t > 0.01 && t < 0.5, "estimate {t}s out of expected range");
    }

    #[test]
    fn qps_bound_is_positive_and_decreasing_in_length() {
        let m = a100_qwen();
        assert!(m.recompute_qps_upper_bound(1000) > m.recompute_qps_upper_bound(4000));
    }
}
