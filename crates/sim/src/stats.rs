//! Run statistics collected by the serving engine.

use bat_metrics::Percentiles;
use bat_types::{Bytes, PrefixKind, RequestId};
use serde::{Deserialize, Serialize};

/// Per-request telemetry record (enabled via
/// [`crate::EngineConfig::record_requests`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request identifier.
    pub id: RequestId,
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// Completion time, seconds.
    pub completion_secs: f64,
    /// Prefix decision taken.
    pub prefix: PrefixKind,
    /// Tokens reused from cache.
    pub reused_tokens: u64,
    /// Tokens computed.
    pub computed_tokens: u64,
    /// Bytes pulled from remote cache workers.
    pub remote_bytes: Bytes,
}

impl RequestRecord {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.completion_secs - self.arrival_secs) * 1e3
    }
}

/// Aggregates telemetry records by prefix decision: returns
/// `(prefix, count, mean reuse fraction, p99 latency ms)` rows.
pub fn breakdown_by_prefix(records: &[RequestRecord]) -> Vec<(PrefixKind, usize, f64, f64)> {
    let mut out = Vec::new();
    for kind in [PrefixKind::User, PrefixKind::Item] {
        let subset: Vec<&RequestRecord> = records.iter().filter(|r| r.prefix == kind).collect();
        if subset.is_empty() {
            continue;
        }
        let mut lat = Percentiles::new();
        let mut reuse = 0.0f64;
        for r in &subset {
            lat.record(r.latency_ms());
            let total = (r.reused_tokens + r.computed_tokens).max(1);
            reuse += r.reused_tokens as f64 / total as f64;
        }
        out.push((
            kind,
            subset.len(),
            reuse / subset.len() as f64,
            lat.p99().unwrap_or(0.0),
        ));
    }
    out
}

/// Aggregated results of one simulated serving run.
///
/// `PartialEq` is bitwise (floats included): the meta-failover tests assert
/// that a leader crash changes *nothing* about serving, not merely that the
/// aggregates are close.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// System label ("RE", "UP", "IP", "BAT", ...).
    pub system: String,
    /// Requests completed.
    pub completed: usize,
    /// Wall-clock span from first arrival to last completion, seconds.
    pub span_secs: f64,
    /// Total prompt tokens across requests.
    pub total_tokens: u64,
    /// Tokens whose KV was reused from cache.
    pub reused_tokens: u64,
    /// Tokens actually computed.
    pub computed_tokens: u64,
    /// Bytes pulled from remote cache workers.
    pub remote_bytes: Bytes,
    /// Total GPU compute seconds across workers.
    pub compute_secs: f64,
    /// Total network transfer seconds.
    pub net_secs: f64,
    /// Total PCIe KV-load seconds.
    pub load_secs: f64,
    /// Requests served User-as-prefix.
    pub up_requests: usize,
    /// Requests served Item-as-prefix.
    pub ip_requests: usize,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Median end-to-end latency, ms.
    pub p50_latency_ms: f64,
    /// P90 end-to-end latency, ms (the overload ablation's percentile).
    #[serde(default)]
    pub p90_latency_ms: f64,
    /// P99 end-to-end latency, ms (the paper's SLO percentile, Figure 9).
    pub p99_latency_ms: f64,
    /// Fault/recovery accounting; all-zero ("quiet") for fault-free runs.
    #[serde(default)]
    pub faults: bat_faults::FaultReport,
    /// SLO/admission accounting; all-zero when the overload control plane
    /// is disabled.
    #[serde(default)]
    pub slo: bat_metrics::SloStats,
    /// Tiered-pool ledger (hot/cold hits, demotions, budget split); all-zero
    /// when the tiered KV pool is disabled.
    #[serde(default)]
    pub tiers: bat_metrics::TierStats,
    /// Continuous-batching ledger (rounds, chunks, seat refills); all-zero
    /// when slot-based batching is disabled.
    #[serde(default)]
    pub batching: bat_metrics::BatchStats,
}

impl RunStats {
    /// Builds stats from raw counters plus the latency sample.
    #[allow(clippy::too_many_arguments)]
    pub fn from_counters(
        system: String,
        completed: usize,
        span_secs: f64,
        total_tokens: u64,
        reused_tokens: u64,
        computed_tokens: u64,
        remote_bytes: Bytes,
        compute_secs: f64,
        net_secs: f64,
        load_secs: f64,
        up_requests: usize,
        ip_requests: usize,
        latencies: &mut Percentiles,
    ) -> Self {
        RunStats {
            system,
            completed,
            span_secs,
            total_tokens,
            reused_tokens,
            computed_tokens,
            remote_bytes,
            compute_secs,
            net_secs,
            load_secs,
            up_requests,
            ip_requests,
            mean_latency_ms: latencies.mean().unwrap_or(0.0) * 1e3,
            p50_latency_ms: latencies.p50().unwrap_or(0.0) * 1e3,
            p90_latency_ms: latencies.p90().unwrap_or(0.0) * 1e3,
            p99_latency_ms: latencies.p99().unwrap_or(0.0) * 1e3,
            faults: bat_faults::FaultReport::default(),
            slo: bat_metrics::SloStats::default(),
            tiers: bat_metrics::TierStats::default(),
            batching: bat_metrics::BatchStats::default(),
        }
    }

    /// A deterministic digest over every planner-side field: the system
    /// label, completion and token accounting, priced cost sums (as exact
    /// f64 bit patterns), cache split, admission counters, and the fault
    /// report. Wall-clock observations — span, latency percentiles, and
    /// the deadline-miss/shed split (which depends on when a sweep ran) —
    /// are excluded.
    ///
    /// Two runs of the same seeded trace and fault schedule must produce
    /// equal digests **regardless of transport**: in-process channels,
    /// Unix sockets, TCP, or child-process workers. The serving runtime's
    /// integration suite pins this; a codec or re-dispatch bug that
    /// changes any planner-visible count breaks it loudly.
    pub fn digest(&self) -> u64 {
        // FNV-1a via the shared bat_types::fnv module: tiny,
        // dependency-free, and plenty for an equality pin (this is not a
        // collision-resistant hash).
        let mut h = bat_types::fnv::Fnv64::new();
        h.write(self.system.as_bytes());
        h.write_usize(self.completed);
        h.write_u64(self.total_tokens);
        h.write_u64(self.reused_tokens);
        h.write_u64(self.computed_tokens);
        h.write_u64(self.remote_bytes.0);
        h.write_f64(self.compute_secs);
        h.write_f64(self.net_secs);
        h.write_f64(self.load_secs);
        h.write_usize(self.up_requests);
        h.write_usize(self.ip_requests);
        h.write_u64(self.slo.submitted);
        h.write_u64(self.slo.accepted);
        h.write_u64(self.slo.rejected_queue_full);
        h.write_u64(self.slo.rejected_infeasible);
        h.write_u64(self.slo.rejected_brownout);
        // Tiered-pool decisions are planner-side: every hit/miss/demotion
        // must agree between the simulator and the threaded runtime.
        h.write_u64(self.tiers.hot_hits);
        h.write_u64(self.tiers.cold_hits);
        h.write_u64(self.tiers.misses);
        h.write_u64(self.tiers.promotions);
        h.write_u64(self.tiers.demotions);
        h.write_u64(self.tiers.cold_evictions);
        h.write_u64(self.tiers.brownout_cold_serves);
        h.write_u64(self.tiers.cold_occupancy_bytes);
        h.write_u64(self.tiers.user_budget_bytes);
        h.write_u64(self.tiers.item_budget_bytes);
        // Batch-formation decisions are planner-side too: both engines run
        // the same slot machine on nominal time, so every round count must
        // agree bit-for-bit.
        h.write_u64(self.batching.rounds);
        h.write_u64(self.batching.chunks);
        h.write_u64(self.batching.batched_tokens);
        h.write_u64(self.batching.seat_refills);
        h.write_u64(self.batching.peak_seated as u64);
        // Elastic membership is planner-side: drains, joins, and every
        // migration the slot machine performed must agree bit-for-bit.
        h.write_u64(self.batching.migrated_requests);
        h.write_u64(self.batching.migrated_tokens);
        h.write_u64(self.batching.drains);
        h.write_u64(self.batching.joins);
        h.write_u64(self.slo.migrated);
        // The fault report is all planner-side counters; its Debug form is
        // a stable field-ordered rendering.
        h.write(format!("{:?}", self.faults).as_bytes());
        h.finish()
    }

    /// Sustained throughput in completed requests per second.
    pub fn qps(&self) -> f64 {
        if self.span_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.span_secs
        }
    }

    /// The paper's cache hit rate: "the ratio of reused prefix tokens to the
    /// total number of tokens per prompt" (§6.2).
    pub fn hit_rate(&self) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.reused_tokens as f64 / self.total_tokens as f64
        }
    }

    /// Computation savings relative to full recomputation
    /// (`1 − computed/total`), the "reduces total computation by up to 58%"
    /// metric.
    pub fn computation_savings(&self) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            1.0 - self.computed_tokens as f64 / self.total_tokens as f64
        }
    }

    /// Network time as a fraction of GPU compute time (Figure 7 reports
    /// BAT-Hash paying ~31% of inference latency in communication).
    pub fn net_over_compute(&self) -> f64 {
        if self.compute_secs <= 0.0 {
            0.0
        } else {
            self.net_secs / self.compute_secs
        }
    }

    /// Fraction of requests scheduled User-as-prefix.
    pub fn up_share(&self) -> f64 {
        let n = self.up_requests + self.ip_requests;
        if n == 0 {
            0.0
        } else {
            self.up_requests as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        let mut lat = Percentiles::new();
        for i in 1..=100 {
            lat.record(i as f64 / 1000.0);
        }
        RunStats::from_counters(
            "BAT".into(),
            100,
            10.0,
            10_000,
            4_000,
            6_000,
            Bytes::from_mb(5),
            8.0,
            1.0,
            0.5,
            30,
            70,
            &mut lat,
        )
    }

    #[test]
    fn derived_metrics() {
        let s = sample();
        assert_eq!(s.qps(), 10.0);
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.computation_savings() - 0.4).abs() < 1e-12);
        assert!((s.net_over_compute() - 0.125).abs() < 1e-12);
        assert!((s.up_share() - 0.3).abs() < 1e-12);
        // Interpolated (type-7) percentiles over 1..=100 ms samples.
        assert!((s.p99_latency_ms - 99.01).abs() < 1e-9);
        assert!((s.p90_latency_ms - 90.1).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let mut lat = Percentiles::new();
        let s = RunStats::from_counters(
            "RE".into(),
            0,
            0.0,
            0,
            0,
            0,
            Bytes::ZERO,
            0.0,
            0.0,
            0.0,
            0,
            0,
            &mut lat,
        );
        assert_eq!(s.qps(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.computation_savings(), 0.0);
        assert_eq!(s.net_over_compute(), 0.0);
        assert_eq!(s.up_share(), 0.0);
    }

    #[test]
    fn request_record_latency_and_breakdown() {
        let rec = |id: u64, prefix, reused: u64, lat_ms: f64| RequestRecord {
            id: RequestId::new(id),
            arrival_secs: 1.0,
            completion_secs: 1.0 + lat_ms / 1e3,
            prefix,
            reused_tokens: reused,
            computed_tokens: 100 - reused,
            remote_bytes: Bytes::ZERO,
        };
        let records = vec![
            rec(0, PrefixKind::User, 60, 10.0),
            rec(1, PrefixKind::User, 40, 30.0),
            rec(2, PrefixKind::Item, 50, 20.0),
        ];
        assert!((records[0].latency_ms() - 10.0).abs() < 1e-9);
        let rows = breakdown_by_prefix(&records);
        assert_eq!(rows.len(), 2);
        let (kind, n, reuse, p99) = rows[0];
        assert_eq!((kind, n), (PrefixKind::User, 2));
        assert!((reuse - 0.5).abs() < 1e-9);
        // Interpolated (type-7) P99 over the two User samples {10, 30}.
        assert!((p99 - 29.8).abs() < 1e-9);
        // A prefix kind with no requests is omitted.
        let only_item = breakdown_by_prefix(&records[2..]);
        assert_eq!(only_item.len(), 1);
        assert_eq!(only_item[0].0, PrefixKind::Item);
    }

    #[test]
    fn serializes_for_experiment_artifacts() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"system\":\"BAT\""));
    }
}
