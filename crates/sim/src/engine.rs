//! The event-driven serving engine.
//!
//! One engine instance simulates the full BAT deployment of Figure 3: a
//! centralized hotness-aware prompt scheduler, `N` inference workers (one
//! per node, FIFO prefill queues batched under max-batched-tokens), `N`
//! cache workers whose memory is split between a statically-placed item
//! region and a pooled user region, and the cache meta service (user-cache
//! index + frequency estimates).
//!
//! What is modeled analytically: GPU kernel time, PCIe loads, network
//! transfers ([`crate::compute`]). What runs for real: every scheduling
//! decision, cache lookup, admission, eviction and placement-driven
//! transfer, request by request.
//!
//! Simplifications (documented in DESIGN.md): requests are routed with
//! cache affinity, so user-prefix reads are local PCIe loads; background
//! item-cache refresh (hourly timescale, §5.2 Step 3) is not simulated;
//! KV write-back happens off the critical path (§5.1) and is not charged.

use crate::compute::ComputeModel;
use crate::planner::RequestPlanner;
use crate::stats::RunStats;
use bat_metrics::{Percentiles, SloStats};
use bat_placement::{compute_replication_ratio, HrcsParams, ItemPlacementPlan, PlacementStrategy};
use bat_sched::BatchFormer;
use bat_sched::OverloadController;
use bat_types::RejectReason;
use bat_types::{
    BatError, Bytes, ClusterConfig, DatasetConfig, ModelConfig, PrefixKind, RankRequest,
};
use bat_workload::ZipfLaw;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The four systems compared throughout §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// RE: no prefix caching at all.
    Recompute,
    /// UP: User-as-prefix for every request, LRU user cache.
    UserPrefix,
    /// IP: Item-as-prefix for every request, HRCS item cache.
    ItemPrefix,
    /// BAT: Bipartite Attention + HRCS placement + hotness-aware scheduling.
    Bat,
}

impl SystemKind {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Recompute => "RE",
            SystemKind::UserPrefix => "UP",
            SystemKind::ItemPrefix => "IP",
            SystemKind::Bat => "BAT",
        }
    }
}

/// Prefix-selection policy choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Always User-as-prefix.
    StaticUser,
    /// Always Item-as-prefix.
    StaticItem,
    /// Longer-block-wins (§5.3's cache-agnostic baseline).
    CacheAgnostic,
    /// BAT's hotness-aware rule (§5.3).
    HotnessAware,
}

/// User-cache admission discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Always admit, evicting LRU entries (the baselines).
    Lru,
    /// Admit only users hotter than the coldest residents (BAT).
    HotnessAware,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Label used in reports ("RE", "UP", "IP", "BAT", or custom).
    pub label: String,
    /// Model architecture (Table 2 presets).
    pub model: ModelConfig,
    /// Cluster hardware (Table testbeds).
    pub cluster: ClusterConfig,
    /// Prefix-selection policy.
    pub policy: PolicyKind,
    /// User-cache admission discipline.
    pub admission: AdmissionKind,
    /// Whether prefix caching is enabled at all (false = RE).
    pub caching: bool,
    /// Item cache placement; `None` disables the item cache (RE/UP).
    pub placement: Option<ItemPlacementPlan>,
    /// Pooled user-cache capacity across the cluster.
    pub user_cache_capacity: Bytes,
    /// Sliding window of the frequency estimator, seconds.
    pub freq_window_secs: f64,
    /// Fixed per-batch overhead (kernel launches, sync), seconds.
    pub batch_overhead_secs: f64,
    /// Record per-request telemetry ([`crate::stats::RequestRecord`]),
    /// retrievable via [`ServingEngine::take_records`] after a run.
    pub record_requests: bool,
    /// Track per-item access frequency for the §5.2 Step 3 background
    /// refresh (off by default: the paper's placement is computed offline).
    pub track_item_hotness: bool,
    /// Interval of the background hot-item re-replication, seconds
    /// (requires `track_item_hotness`). `None` disables refresh.
    pub item_refresh_interval_secs: Option<f64>,
    /// Fault schedule injected into the run; `None` means nothing fails.
    /// The simulator replays it as heap events, the threaded runtime as
    /// real worker shutdown/respawn — cache accounting stays identical.
    pub faults: Option<bat_faults::FaultSchedule>,
    /// Replicas of the cache-meta service's state machine. `0` runs the
    /// single-node [`bat_kvcache::LocalMetaIndex`] instead of the
    /// replicated group — required to be the schedule's `meta_nodes()`
    /// whenever the fault schedule carries meta-replica events.
    pub meta_replicas: usize,
    /// Seed of the meta group's randomized-by-seed election timeouts.
    pub meta_seed: u64,
    /// SLO-aware overload control plane (admission, deadlines, brownout).
    /// `None` disables it entirely: every request is admitted and served,
    /// exactly as before the control plane existed.
    pub slo: Option<bat_sched::OverloadConfig>,
    /// Straggler injection: `(worker index, service-time multiplier)`. The
    /// worker stays alive and correct, just slow — the overload case the
    /// control plane's capacity weighting exists for.
    pub straggler: Option<(usize, f64)>,
    /// Tiered KV pool: a quantized cold tier behind the hot cache regions,
    /// with adaptive user/item budget partitioning. `None` (the default)
    /// keeps the flat single-tier cache and is byte-identical to before
    /// the pool existed.
    pub tiers: Option<bat_tiers::TiersConfig>,
    /// Continuous cross-request batching: replaces the per-worker FIFO +
    /// monolithic batches with the slot-based chunked scheduler
    /// ([`bat_sched::BatchScheduler`]). `None` (the default) keeps the
    /// PR-2 batch former path bit-identical to before.
    pub batching: Option<bat_sched::BatchingConfig>,
}

impl EngineConfig {
    /// Builds the paper's configuration for one of the four systems on a
    /// dataset: Algorithm 1 decides the HRCS replication ratio, the item
    /// region is capped to the per-node budget, and the user region gets
    /// the remainder (§5.1 "Offline Initialization").
    pub fn for_system(
        kind: SystemKind,
        model: ModelConfig,
        cluster: ClusterConfig,
        ds: &DatasetConfig,
    ) -> Self {
        let compute = ComputeModel::new(model.clone(), cluster.node.clone());
        let needs_items = matches!(kind, SystemKind::ItemPrefix | SystemKind::Bat);
        let placement = needs_items.then(|| {
            let law = ZipfLaw::new(ds.num_items, ds.item_zipf_exponent);
            let params = HrcsParams {
                bandwidth_tokens_per_sec: compute.net_tokens_per_sec(),
                prefill_time_secs: compute.prefill_estimate_secs(
                    ds.avg_user_tokens as u64,
                    ds.avg_prompt_item_tokens() as u64,
                ),
                alpha: cluster.alpha,
                candidates_per_request: ds.candidates_per_request,
                avg_item_tokens: ds.avg_item_tokens as f64,
                num_workers: cluster.num_nodes,
            };
            let r = compute_replication_ratio(&params, &law);
            let avg_item_kv = model.kv_bytes(ds.avg_item_tokens as u64);
            // The item region may take at most 80% of each node's budget —
            // some user region must survive (§6.2's Industry discussion
            // notes the user cache gets whatever the item cache leaves).
            let item_cap = Bytes::new(cluster.node.kv_cache_capacity.as_u64() * 4 / 5);
            ItemPlacementPlan::new(
                PlacementStrategy::Hrcs,
                ds.num_items,
                cluster.num_nodes,
                r,
                avg_item_kv,
            )
            .fit_to_capacity(item_cap)
        });
        let per_node_items = placement
            .as_ref()
            .map_or(Bytes::ZERO, ItemPlacementPlan::per_worker_bytes);
        let user_capacity = cluster
            .node
            .kv_cache_capacity
            .saturating_sub(per_node_items)
            * cluster.num_nodes as u64;
        EngineConfig {
            label: kind.label().to_owned(),
            policy: match kind {
                SystemKind::Recompute | SystemKind::UserPrefix => PolicyKind::StaticUser,
                SystemKind::ItemPrefix => PolicyKind::StaticItem,
                SystemKind::Bat => PolicyKind::HotnessAware,
            },
            admission: match kind {
                SystemKind::Bat => AdmissionKind::HotnessAware,
                _ => AdmissionKind::Lru,
            },
            caching: kind != SystemKind::Recompute,
            placement,
            user_cache_capacity: user_capacity,
            freq_window_secs: 600.0,
            batch_overhead_secs: 0.003,
            record_requests: false,
            track_item_hotness: false,
            item_refresh_interval_secs: None,
            faults: None,
            meta_replicas: bat_faults::DEFAULT_META_NODES,
            meta_seed: 0xB47_5EED,
            slo: None,
            straggler: None,
            tiers: None,
            batching: None,
            model,
            cluster,
        }
    }

    /// Enables the SLO-aware overload control plane (or disables it with
    /// `None`).
    pub fn with_slo(mut self, slo: Option<bat_sched::OverloadConfig>) -> Self {
        self.slo = slo;
        self
    }

    /// Injects a straggler: worker `index` serves every batch `factor`
    /// times slower (or clears it with `None`).
    pub fn with_straggler(mut self, straggler: Option<(usize, f64)>) -> Self {
        self.straggler = straggler;
        self
    }

    /// Injects a fault schedule (or clears it with `None`). The schedule
    /// must cover exactly the cluster's node count.
    pub fn with_faults(mut self, faults: Option<bat_faults::FaultSchedule>) -> Self {
        self.faults = faults;
        self
    }

    /// Enables the tiered KV pool (or disables it with `None`).
    pub fn with_tiers(mut self, tiers: Option<bat_tiers::TiersConfig>) -> Self {
        self.tiers = tiers;
        self
    }

    /// Enables slot-based continuous cross-request batching (or reverts to
    /// the per-request batch former with `None`).
    pub fn with_batching(mut self, batching: Option<bat_sched::BatchingConfig>) -> Self {
        self.batching = batching;
        self
    }

    /// Replaces the item placement (Figure 7 / Table 4 ablations), resizing
    /// the user region to the leftover memory.
    pub fn with_placement(mut self, placement: Option<ItemPlacementPlan>) -> Self {
        let per_node = placement
            .as_ref()
            .map_or(Bytes::ZERO, ItemPlacementPlan::per_worker_bytes);
        self.user_cache_capacity = self.cluster.node.kv_cache_capacity.saturating_sub(per_node)
            * self.cluster.num_nodes as u64;
        self.placement = placement;
        self
    }

    /// Overrides the user-cache capacity (Figure 8 sweeps it directly).
    pub fn with_user_cache_capacity(mut self, capacity: Bytes) -> Self {
        self.user_cache_capacity = capacity;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BatError::CapacityExceeded`] if the item region does not
    /// fit the per-node budget (the Table 4 "replication causes OOM" case),
    /// and [`BatError::InvalidConfig`] for inconsistent knobs.
    pub fn validate(&self) -> Result<(), BatError> {
        if let Some(plan) = &self.placement {
            if plan.per_worker_bytes() > self.cluster.node.kv_cache_capacity {
                return Err(BatError::CapacityExceeded(format!(
                    "item region needs {} per node, budget is {}",
                    plan.per_worker_bytes(),
                    self.cluster.node.kv_cache_capacity
                )));
            }
        }
        if !self.caching && self.placement.is_some() {
            return Err(BatError::InvalidConfig(
                "item placement configured but caching disabled".to_owned(),
            ));
        }
        if self.freq_window_secs <= 0.0 {
            return Err(BatError::InvalidConfig(
                "frequency window must be positive".to_owned(),
            ));
        }
        if self.item_refresh_interval_secs.is_some() && !self.track_item_hotness {
            return Err(BatError::InvalidConfig(
                "item refresh requires track_item_hotness".to_owned(),
            ));
        }
        if let Some(schedule) = &self.faults {
            if schedule.num_workers() != self.cluster.num_nodes {
                return Err(BatError::InvalidConfig(format!(
                    "fault schedule covers {} workers but the cluster has {} nodes",
                    schedule.num_workers(),
                    self.cluster.num_nodes
                )));
            }
            if schedule.has_meta_events() && self.meta_replicas != schedule.meta_nodes() {
                return Err(BatError::InvalidConfig(format!(
                    "fault schedule targets a {}-replica meta group but the engine runs {}",
                    schedule.meta_nodes(),
                    self.meta_replicas
                )));
            }
        }
        if let Some(slo) = &self.slo {
            slo.validate()?;
        }
        if let Some(tiers) = &self.tiers {
            if !self.caching {
                return Err(BatError::InvalidConfig(
                    "tiered KV pool configured but caching disabled".to_owned(),
                ));
            }
            tiers.validate().map_err(BatError::InvalidConfig)?;
        }
        if let Some(batching) = &self.batching {
            batching.validate()?;
        }
        if let Some((w, factor)) = self.straggler {
            if w >= self.cluster.num_nodes {
                return Err(BatError::InvalidConfig(format!(
                    "straggler worker {w} out of range for {} nodes",
                    self.cluster.num_nodes
                )));
            }
            if !(factor.is_finite() && factor >= 1.0) {
                return Err(BatError::InvalidConfig(
                    "straggler factor must be finite and >= 1".to_owned(),
                ));
            }
        }
        Ok(())
    }
}

/// One unit of scheduled work.
#[derive(Debug, Clone)]
struct Job {
    idx: usize,
    prefix: PrefixKind,
    suffix_tokens: u64,
    context_tokens: u64,
    local_load: Bytes,
    remote: Bytes,
    arrival_secs: f64,
    /// Absolute completion deadline; `None` when the request is
    /// best-effort or the control plane is off.
    deadline: Option<f64>,
    /// Slow-link network extras the planner charged (hedge residue and
    /// backoff delays), seconds.
    net_extra: f64,
}

#[derive(Debug, Default)]
struct WorkerState {
    queue: VecDeque<Job>,
    queued_tokens: u64,
    inflight: Vec<Job>,
    inflight_tokens: u64,
    busy: bool,
    /// Bumped when the worker crashes, so in-flight `Done` events from the
    /// pre-crash incarnation are recognized as stale and dropped.
    gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Batch completion on worker `w`, valid only for its generation `gen`.
    Done { worker: usize, gen: u64 },
    /// Arrival of request `idx` in the trace.
    Arrive { idx: usize },
    /// Scheduled fault event `idx` fires.
    Fault { idx: usize },
}

/// The serving engine.
pub struct ServingEngine {
    cfg: EngineConfig,
    planner: RequestPlanner,
    batcher: BatchFormer,
    records: Vec<crate::stats::RequestRecord>,
}

impl ServingEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineConfig::validate`] failures.
    pub fn new(cfg: EngineConfig) -> Result<Self, BatError> {
        cfg.validate()?;
        let planner = RequestPlanner::from_config(&cfg);
        let batcher = BatchFormer::new(cfg.cluster.max_batched_tokens);
        Ok(ServingEngine {
            planner,
            batcher,
            cfg,
            records: Vec::new(),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The request planner (cache state inspection after a run).
    pub fn planner(&self) -> &RequestPlanner {
        &self.planner
    }

    /// Replaces the prefix-selection policy before a run (the scheduling
    /// ablation injects the clairvoyant oracle this way).
    pub fn set_policy(&mut self, policy: Box<dyn bat_sched::PromptPolicy>) {
        self.planner.set_policy(policy);
    }

    /// Drains the telemetry recorded by the last run (empty unless
    /// [`EngineConfig::record_requests`] is set).
    pub fn take_records(&mut self) -> Vec<crate::stats::RequestRecord> {
        std::mem::take(&mut self.records)
    }

    /// Runs the engine over an arrival-ordered trace, to completion.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn run(&mut self, trace: &[RankRequest]) -> RunStats {
        for w in trace.windows(2) {
            assert!(
                w[1].arrival >= w[0].arrival,
                "trace must be sorted by arrival"
            );
        }
        if self.cfg.batching.is_some() {
            return self.run_batched(trace);
        }
        self.records.clear();
        let n_workers = self.cfg.cluster.num_nodes;
        let mut workers: Vec<WorkerState> =
            (0..n_workers).map(|_| WorkerState::default()).collect();

        // Event queue keyed by (time, sequence) for determinism.
        let mut events: BinaryHeap<Reverse<(u64, u64, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let to_key = |t: f64| -> u64 { (t * 1e9) as u64 };
        // Fault events go in first so a fault at the same instant as an
        // arrival is applied before the arrival is planned (matching the
        // cursor's `at_secs <= now` semantics).
        if let Some(schedule) = &self.cfg.faults {
            for (idx, ev) in schedule.events().iter().enumerate() {
                events.push(Reverse((to_key(ev.at_secs), seq, EventKind::Fault { idx })));
                seq += 1;
            }
        }
        for (idx, req) in trace.iter().enumerate() {
            events.push(Reverse((
                to_key(req.arrival.as_secs()),
                seq,
                EventKind::Arrive { idx },
            )));
            seq += 1;
        }

        let mut latencies = Percentiles::new();
        let mut total_tokens = 0u64;
        let mut reused_tokens = 0u64;
        let mut computed_tokens = 0u64;
        let mut remote_bytes = Bytes::ZERO;
        let mut compute_secs = 0.0f64;
        let mut net_secs = 0.0f64;
        let mut load_secs = 0.0f64;
        let mut up_requests = 0usize;
        let mut ip_requests = 0usize;
        let mut completed = 0usize;
        let mut first_arrival = f64::INFINITY;
        let mut last_completion = 0.0f64;
        let mut next_refresh = self.cfg.item_refresh_interval_secs.unwrap_or(0.0);
        let mut slo = SloStats::default();
        // The controller drains on nominal arrival times and plans with the
        // planner's cost estimates, so the threaded runtime (which builds
        // the identical controller) makes bit-identical admission decisions.
        let mut controller = self
            .cfg
            .slo
            .map(|c| OverloadController::new(c, self.live_capacity(n_workers)));

        while let Some(Reverse((tkey, _, ev))) = events.pop() {
            let now = tkey as f64 / 1e9;
            match ev {
                EventKind::Arrive { idx } => {
                    let req = &trace[idx];
                    first_arrival = first_arrival.min(now);
                    if let Some(interval) = self.cfg.item_refresh_interval_secs {
                        if now >= next_refresh {
                            self.planner.refresh_item_replication(now);
                            next_refresh = now + interval;
                        }
                    }
                    // Plan on the *nominal* arrival time, not the quantized
                    // heap key: the threaded runtime plans on the same
                    // nominal instants, so fault cursors in both paths
                    // advance through identical states.
                    let nominal = req.arrival.as_secs();
                    if let Some(ctl) = controller.as_mut() {
                        // Admission sees the fault state planning would: a
                        // rejected request must leave the planner exactly as
                        // if it never arrived, minus the fault advance that
                        // nominal time forces anyway.
                        self.planner.advance_faults(nominal);
                        ctl.set_capacity(self.live_capacity(n_workers));
                        slo.submitted += 1;
                        let est = self.planner.admission_estimate_secs(req);
                        let decision =
                            ctl.on_arrival(nominal, est, req.slo.deadline_secs, req.slo.priority);
                        if let Err(BatError::Rejected { reason }) = decision.into_result() {
                            match reason {
                                RejectReason::QueueFull => slo.rejected_queue_full += 1,
                                RejectReason::DeadlineInfeasible => slo.rejected_infeasible += 1,
                                RejectReason::BrownoutShed => slo.rejected_brownout += 1,
                            }
                            continue;
                        }
                        slo.accepted += 1;
                        self.planner.set_brownout_rung(ctl.rung());
                    }
                    let planned = self.planner.plan(req, nominal);
                    let job = Job {
                        idx,
                        prefix: planned.prefix,
                        suffix_tokens: planned.suffix_tokens,
                        context_tokens: planned.context_tokens,
                        local_load: planned.local_load,
                        remote: planned.remote_bytes,
                        arrival_secs: now,
                        deadline: controller
                            .is_some()
                            .then(|| req.slo.absolute_deadline(nominal))
                            .flatten(),
                        net_extra: planned.net_extra_secs,
                    };
                    total_tokens += req.total_tokens() as u64;
                    reused_tokens += planned.reused_tokens();
                    computed_tokens += job.suffix_tokens;
                    remote_bytes += job.remote;
                    if self.cfg.caching {
                        match planned.prefix {
                            PrefixKind::User => up_requests += 1,
                            PrefixKind::Item => ip_requests += 1,
                        }
                    }
                    // Load balancing: least outstanding work — queued plus
                    // in-flight tokens (§5.1) — among *live* workers only
                    // (degraded membership excludes crashed ones).
                    let w = (0..n_workers)
                        .filter(|&i| self.planner.is_worker_alive(i))
                        .min_by_key(|&i| workers[i].queued_tokens + workers[i].inflight_tokens)
                        .expect("schedule guarantees at least one live worker");
                    workers[w].queued_tokens += job.suffix_tokens;
                    workers[w].queue.push_back(job);
                    if !workers[w].busy {
                        if let Some(service) = self.start_batch(
                            &mut workers[w],
                            w,
                            now,
                            &mut slo,
                            &mut compute_secs,
                            &mut net_secs,
                            &mut load_secs,
                        ) {
                            let gen = workers[w].gen;
                            events.push(Reverse((
                                to_key(now + service),
                                seq,
                                EventKind::Done { worker: w, gen },
                            )));
                            seq += 1;
                        }
                    }
                }
                EventKind::Done { worker, gen } => {
                    if workers[worker].gen != gen {
                        // Completion from a pre-crash incarnation: the jobs
                        // were already rerouted when the worker died.
                        continue;
                    }
                    let w = &mut workers[worker];
                    for job in w.inflight.drain(..) {
                        latencies.record(now - job.arrival_secs);
                        completed += 1;
                        if controller.is_some() {
                            slo.completed += 1;
                            if job.deadline.is_some_and(|d| now > d) {
                                slo.deadline_misses += 1;
                            }
                        }
                        last_completion = last_completion.max(now);
                        if self.cfg.record_requests {
                            self.records.push(crate::stats::RequestRecord {
                                id: trace[job.idx].id,
                                arrival_secs: job.arrival_secs,
                                completion_secs: now,
                                prefix: job.prefix,
                                reused_tokens: job.context_tokens - job.suffix_tokens,
                                computed_tokens: job.suffix_tokens,
                                remote_bytes: job.remote,
                            });
                        }
                    }
                    w.inflight_tokens = 0;
                    w.busy = false;
                    if !w.queue.is_empty() {
                        if let Some(service) = self.start_batch(
                            &mut workers[worker],
                            worker,
                            now,
                            &mut slo,
                            &mut compute_secs,
                            &mut net_secs,
                            &mut load_secs,
                        ) {
                            events.push(Reverse((
                                to_key(now + service),
                                seq,
                                EventKind::Done { worker, gen },
                            )));
                            seq += 1;
                        }
                    }
                }
                EventKind::Fault { idx } => {
                    let at = self
                        .cfg
                        .faults
                        .as_ref()
                        .expect("fault event requires a schedule")
                        .events()[idx]
                        .at_secs;
                    for fault in self.planner.advance_faults(at) {
                        let (d, graceful) = match fault {
                            bat_faults::AppliedFault::Crashed(dead) => (dead.index(), false),
                            bat_faults::AppliedFault::Drained(gone) => (gone.index(), true),
                            // Restart/join: the planner marks the worker
                            // alive again and the dispatcher resumes
                            // routing to its (empty) queue — no worker
                            // state to repair.
                            _ => continue,
                        };
                        // Everything queued (and, on a crash, running) on
                        // the departed worker is handed back to the
                        // scheduler and redispatched to a survivor:
                        // requests are never dropped. A planned drain is
                        // graceful — the batch in flight completes (its
                        // generation is not bumped, so the Done event
                        // still lands); only queued work migrates.
                        let orphans: Vec<Job> = {
                            let w = &mut workers[d];
                            let o: Vec<Job> = w.queue.drain(..).collect();
                            w.queued_tokens = 0;
                            if graceful {
                                o
                            } else {
                                let mut o = o;
                                o.append(&mut w.inflight);
                                w.inflight_tokens = 0;
                                w.busy = false;
                                w.gen += 1;
                                o
                            }
                        };
                        for job in orphans {
                            let target = (0..n_workers)
                                .filter(|&i| self.planner.is_worker_alive(i))
                                .min_by_key(|&i| {
                                    workers[i].queued_tokens + workers[i].inflight_tokens
                                })
                                .expect("schedule guarantees at least one live worker");
                            workers[target].queued_tokens += job.suffix_tokens;
                            workers[target].queue.push_back(job);
                            if !workers[target].busy {
                                if let Some(service) = self.start_batch(
                                    &mut workers[target],
                                    target,
                                    now,
                                    &mut slo,
                                    &mut compute_secs,
                                    &mut net_secs,
                                    &mut load_secs,
                                ) {
                                    let gen = workers[target].gen;
                                    events.push(Reverse((
                                        to_key(now + service),
                                        seq,
                                        EventKind::Done {
                                            worker: target,
                                            gen,
                                        },
                                    )));
                                    seq += 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        let span = if completed == 0 {
            0.0
        } else {
            (last_completion - first_arrival).max(1e-9)
        };
        let mut stats = RunStats::from_counters(
            self.cfg.label.clone(),
            completed,
            span,
            total_tokens,
            reused_tokens,
            computed_tokens,
            remote_bytes,
            compute_secs,
            net_secs,
            load_secs,
            up_requests,
            ip_requests,
            &mut latencies,
        );
        stats.slo = slo;
        if let Some(report) = self.planner.finish_faults() {
            stats.faults = report;
        }
        if let Some(tiers) = self.planner.tier_stats() {
            stats.tiers = tiers;
        }
        stats
    }

    /// The continuous-batching run path: arrivals and faults stream through
    /// the same `(time, sequence)` heap as [`ServingEngine::run`], but all
    /// dispatch goes through one cluster-wide [`bat_sched::BatchScheduler`]
    /// instead of per-worker FIFOs + monolithic batches. The machine runs
    /// on nominal times and priced services only, so the threaded runtime
    /// (driving the identical machine) produces a bit-identical ledger.
    fn run_batched(&mut self, trace: &[RankRequest]) -> RunStats {
        let batching = self.cfg.batching.expect("batched path requires config");
        self.records.clear();
        let n_workers = self.cfg.cluster.num_nodes;
        let speeds: Vec<f64> = (0..n_workers).map(|i| self.straggler_factor(i)).collect();
        let mut machine =
            bat_sched::BatchScheduler::new(batching, self.cfg.batch_overhead_secs, speeds);

        let mut events: BinaryHeap<Reverse<(u64, u64, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let to_key = |t: f64| -> u64 { (t * 1e9) as u64 };
        if let Some(schedule) = &self.cfg.faults {
            for (idx, ev) in schedule.events().iter().enumerate() {
                events.push(Reverse((to_key(ev.at_secs), seq, EventKind::Fault { idx })));
                seq += 1;
            }
        }
        for (idx, req) in trace.iter().enumerate() {
            events.push(Reverse((
                to_key(req.arrival.as_secs()),
                seq,
                EventKind::Arrive { idx },
            )));
            seq += 1;
        }

        // Per-request pricing and plan metadata, kept until the machine
        // reports the terminal outcome. Compute/load/net seconds are folded
        // into the counters at *completion* (matching the per-request path,
        // where shed work is never priced into the totals).
        struct AdmittedJob {
            prefix: PrefixKind,
            suffix_tokens: u64,
            context_tokens: u64,
            remote: Bytes,
            arrival_secs: f64,
            deadline: Option<f64>,
            compute: f64,
            load: f64,
            net: f64,
        }
        let mut admitted: Vec<Option<AdmittedJob>> = (0..trace.len()).map(|_| None).collect();

        let mut latencies = Percentiles::new();
        let mut total_tokens = 0u64;
        let mut reused_tokens = 0u64;
        let mut computed_tokens = 0u64;
        let mut remote_bytes = Bytes::ZERO;
        let mut compute_secs = 0.0f64;
        let mut net_secs = 0.0f64;
        let mut load_secs = 0.0f64;
        let mut up_requests = 0usize;
        let mut ip_requests = 0usize;
        let mut first_arrival = f64::INFINITY;
        let mut next_refresh = self.cfg.item_refresh_interval_secs.unwrap_or(0.0);
        let mut slo = SloStats::default();
        let mut controller = self
            .cfg
            .slo
            .map(|c| OverloadController::new(c, self.live_capacity(n_workers)));

        while let Some(Reverse((tkey, _, ev))) = events.pop() {
            let now = tkey as f64 / 1e9;
            match ev {
                EventKind::Arrive { idx } => {
                    let req = &trace[idx];
                    first_arrival = first_arrival.min(now);
                    if let Some(interval) = self.cfg.item_refresh_interval_secs {
                        if now >= next_refresh {
                            self.planner.refresh_item_replication(now);
                            next_refresh = now + interval;
                        }
                    }
                    let nominal = req.arrival.as_secs();
                    if let Some(ctl) = controller.as_mut() {
                        self.planner.advance_faults(nominal);
                        ctl.set_capacity(self.live_capacity(n_workers));
                        // Slot occupancy floors the analytic backlog: work
                        // seated or queued in the machine is drain the
                        // controller's leaky bucket cannot see on its own.
                        machine.advance(nominal);
                        ctl.set_slot_backlog(machine.outstanding_service_secs());
                        slo.submitted += 1;
                        let est = self.planner.admission_estimate_secs(req);
                        let decision =
                            ctl.on_arrival(nominal, est, req.slo.deadline_secs, req.slo.priority);
                        if let Err(BatError::Rejected { reason }) = decision.into_result() {
                            match reason {
                                RejectReason::QueueFull => slo.rejected_queue_full += 1,
                                RejectReason::DeadlineInfeasible => slo.rejected_infeasible += 1,
                                RejectReason::BrownoutShed => slo.rejected_brownout += 1,
                            }
                            continue;
                        }
                        slo.accepted += 1;
                        self.planner.set_brownout_rung(ctl.rung());
                    }
                    let planned = self.planner.plan(req, nominal);
                    let (c, l, t) = self.planner.price(&planned);
                    total_tokens += req.total_tokens() as u64;
                    reused_tokens += planned.reused_tokens();
                    computed_tokens += planned.suffix_tokens;
                    remote_bytes += planned.remote_bytes;
                    if self.cfg.caching {
                        match planned.prefix {
                            PrefixKind::User => up_requests += 1,
                            PrefixKind::Item => ip_requests += 1,
                        }
                    }
                    let deadline = controller
                        .is_some()
                        .then(|| req.slo.absolute_deadline(nominal))
                        .flatten();
                    machine.admit(nominal, idx, planned.suffix_tokens, c + l + t, deadline);
                    admitted[idx] = Some(AdmittedJob {
                        prefix: planned.prefix,
                        suffix_tokens: planned.suffix_tokens,
                        context_tokens: planned.context_tokens,
                        remote: planned.remote_bytes,
                        arrival_secs: nominal,
                        deadline,
                        compute: c,
                        load: l,
                        net: t,
                    });
                }
                EventKind::Done { .. } => {
                    unreachable!("batched runs keep completions inside the machine")
                }
                EventKind::Fault { idx } => {
                    let at = self
                        .cfg
                        .faults
                        .as_ref()
                        .expect("fault event requires a schedule")
                        .events()[idx]
                        .at_secs;
                    for fault in self.planner.advance_faults(at) {
                        match fault {
                            bat_faults::AppliedFault::Crashed(dead) => {
                                // Seated work re-queues at the global FIFO's
                                // front; cache accounting already happened in
                                // advance_faults. No request is dropped.
                                machine.crash(at, dead.index());
                            }
                            bat_faults::AppliedFault::Restarted(back, _) => {
                                machine.restart(at, back.index());
                            }
                            bat_faults::AppliedFault::Drained(leaving) => {
                                // Planned departure: the in-flight round
                                // completes, then remaining seated work
                                // migrates to the queue front.
                                machine.drain(at, leaving.index());
                            }
                            bat_faults::AppliedFault::Joined(fresh, _) => {
                                machine.join(at, fresh.index());
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        machine.finish();
        let mut completed = 0usize;
        let mut last_completion = 0.0f64;
        for done in machine.drain_completions() {
            let job = admitted[done.idx]
                .as_ref()
                .expect("machine completions cover only admitted requests");
            latencies.record(done.at - job.arrival_secs);
            completed += 1;
            compute_secs += job.compute;
            load_secs += job.load;
            net_secs += job.net;
            if controller.is_some() {
                slo.completed += 1;
                if job.deadline.is_some_and(|d| done.at > d) {
                    slo.deadline_misses += 1;
                }
            }
            last_completion = last_completion.max(done.at);
            if self.cfg.record_requests {
                self.records.push(crate::stats::RequestRecord {
                    id: trace[done.idx].id,
                    arrival_secs: job.arrival_secs,
                    completion_secs: done.at,
                    prefix: job.prefix,
                    reused_tokens: job.context_tokens - job.suffix_tokens,
                    computed_tokens: job.suffix_tokens,
                    remote_bytes: job.remote,
                });
            }
        }
        slo.shed_expired += machine.drain_sheds().len() as u64;

        let span = if completed == 0 {
            0.0
        } else {
            (last_completion - first_arrival).max(1e-9)
        };
        let mut stats = RunStats::from_counters(
            self.cfg.label.clone(),
            completed,
            span,
            total_tokens,
            reused_tokens,
            computed_tokens,
            remote_bytes,
            compute_secs,
            net_secs,
            load_secs,
            up_requests,
            ip_requests,
            &mut latencies,
        );
        stats.slo = slo;
        stats.batching = machine.stats();
        // Both engines derive the SLO-plane migration ledger from the same
        // machine, so it is bit-identical by construction.
        stats.slo.migrated = stats.batching.migrated_requests;
        if let Some(report) = self.planner.finish_faults() {
            stats.faults = report;
        }
        if let Some(tiers) = self.planner.tier_stats() {
            stats.tiers = tiers;
        }
        stats
    }

    /// Live drain capacity in worker-equivalents: each live worker
    /// contributes `1 / slowdown`, so a 5x straggler counts as 0.2 workers.
    fn live_capacity(&self, n_workers: usize) -> f64 {
        (0..n_workers)
            .filter(|&i| self.planner.is_worker_alive(i))
            .map(|i| 1.0 / self.straggler_factor(i))
            .sum()
    }

    /// The service-time multiplier of worker `i` (1.0 unless it is the
    /// configured straggler).
    fn straggler_factor(&self, i: usize) -> f64 {
        match self.cfg.straggler {
            Some((w, f)) if w == i => f,
            _ => 1.0,
        }
    }

    /// Dequeues one batch on `w` (index `widx`) at time `now` and returns
    /// its service time, or `None` when the deadline sweep emptied the
    /// queue and no batch was started.
    #[allow(clippy::too_many_arguments)]
    fn start_batch(
        &mut self,
        w: &mut WorkerState,
        widx: usize,
        now: f64,
        slo: &mut SloStats,
        compute_secs: &mut f64,
        net_secs: &mut f64,
        load_secs: &mut f64,
    ) -> Option<f64> {
        // Deadline sweep before forming the batch: an expired entry is shed
        // (`BatError::DeadlineExceeded` is its terminal outcome in the
        // threaded runtime) — serving dead work would only delay live work.
        let before = w.queue.len();
        w.queue.retain(|job| !job.deadline.is_some_and(|d| now > d));
        if w.queue.len() != before {
            slo.shed_expired += (before - w.queue.len()) as u64;
            w.queued_tokens = w.queue.iter().map(|j| j.suffix_tokens).sum();
        }
        if w.queue.is_empty() {
            return None;
        }
        let tokens: Vec<u32> = w
            .queue
            .iter()
            .map(|j| j.suffix_tokens.min(u32::MAX as u64) as u32)
            .collect();
        let n = self.batcher.take_batch(&tokens).max(1);
        let mut service = self.cfg.batch_overhead_secs;
        for _ in 0..n {
            let job = w.queue.pop_front().expect("batch within queue bounds");
            w.queued_tokens -= job.suffix_tokens;
            w.inflight_tokens += job.suffix_tokens;
            // Priced through the planner so a degraded link (fault
            // schedule) inflates the network component; the job's own
            // slow-link extras (hedge residue, backoff) ride on top.
            let (c, l, t) = self.planner.price_components(
                job.suffix_tokens,
                job.context_tokens,
                job.local_load,
                job.remote,
            );
            let t = t + job.net_extra;
            *compute_secs += c;
            *load_secs += l;
            *net_secs += t;
            service += c + l + t;
            w.inflight.push(job);
        }
        w.busy = true;
        Some(service * self.straggler_factor(widx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_workload::{TraceGenerator, Workload};

    fn small_cluster() -> ClusterConfig {
        let mut c = ClusterConfig::a100_4node();
        c.num_nodes = 2;
        c.node.kv_cache_capacity = Bytes::from_gb(20);
        c
    }

    fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.generate(secs, rate)
    }

    fn run_system(kind: SystemKind, ds: &DatasetConfig, secs: f64, rate: f64) -> RunStats {
        let cfg = EngineConfig::for_system(kind, ModelConfig::qwen2_1_5b(), small_cluster(), ds);
        let mut engine = ServingEngine::new(cfg).unwrap();
        engine.run(&trace(ds, secs, rate))
    }

    #[test]
    fn all_requests_complete() {
        let ds = DatasetConfig::games();
        for kind in [
            SystemKind::Recompute,
            SystemKind::UserPrefix,
            SystemKind::ItemPrefix,
            SystemKind::Bat,
        ] {
            let stats = run_system(kind, &ds, 4.0, 10.0);
            let expected = trace(&ds, 4.0, 10.0).len();
            assert_eq!(stats.completed, expected, "{}", kind.label());
            assert!(stats.p99_latency_ms > 0.0);
        }
    }

    #[test]
    fn recompute_reuses_nothing() {
        let stats = run_system(SystemKind::Recompute, &DatasetConfig::games(), 4.0, 10.0);
        assert_eq!(stats.reused_tokens, 0);
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.computed_tokens, stats.total_tokens);
    }

    #[test]
    fn caching_systems_beat_recompute() {
        // A compressed Games-like dataset: few users, so the short test
        // trace revisits them (the paper's traces run for minutes).
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let re = run_system(SystemKind::Recompute, &ds, 8.0, 20.0);
        let up = run_system(SystemKind::UserPrefix, &ds, 8.0, 20.0);
        let ip = run_system(SystemKind::ItemPrefix, &ds, 8.0, 20.0);
        let bat = run_system(SystemKind::Bat, &ds, 8.0, 20.0);
        assert!(up.hit_rate() > 0.05, "UP hit rate {}", up.hit_rate());
        assert!(ip.hit_rate() > 0.2, "IP hit rate {}", ip.hit_rate());
        assert!(
            bat.computed_tokens < re.computed_tokens,
            "BAT must compute fewer tokens than RE"
        );
        assert!(
            bat.hit_rate() >= up.hit_rate().min(ip.hit_rate()),
            "BAT at least matches the weaker static policy"
        );
    }

    #[test]
    fn tiered_cold_pool_raises_hit_rate_at_fixed_hot_budget() {
        // Same hot-tier budget, same trace: adding the quantized cold tier
        // must convert some recomputes into cold hits, raising the
        // end-to-end hit rate — the tentpole claim the ablation binary
        // measures at full scale.
        let ds = DatasetConfig {
            num_users: 2000,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 6.0, 40.0);
        // A deliberately small hot tier so eviction churn feeds demotions.
        let base = EngineConfig::for_system(
            SystemKind::UserPrefix,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        )
        .with_user_cache_capacity(Bytes::from_mb(200));
        let flat = ServingEngine::new(base.clone()).unwrap().run(&t);
        let tiered_cfg = base.with_tiers(Some(bat_tiers::TiersConfig::new(Bytes::from_mb(400))));
        let tiered = ServingEngine::new(tiered_cfg).unwrap().run(&t);
        assert!(tiered.tiers.cold_hits > 0, "cold tier never hit");
        assert!(tiered.tiers.demotions > 0, "evictions never demoted");
        assert!(
            tiered.hit_rate() > flat.hit_rate(),
            "cold tier must raise hit rate: {} vs {}",
            tiered.hit_rate(),
            flat.hit_rate()
        );
        assert!(
            flat.tiers == bat_metrics::TierStats::default(),
            "flat runs must keep an all-zero tier ledger"
        );
        // The cold stream is priced: served bytes cost network-path time.
        assert!(tiered.net_secs > flat.net_secs);
    }

    #[test]
    fn tiered_runs_are_deterministic() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 3.0, 30.0);
        let cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        )
        .with_tiers(Some(bat_tiers::TiersConfig::new(Bytes::from_gb(4))));
        let a = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let b = ServingEngine::new(cfg).unwrap().run(&t);
        assert_eq!(a.tiers, b.tiers);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn ip_pays_network_for_sharded_items() {
        let ds = DatasetConfig::books();
        // A generous communication budget makes Algorithm 1 shard most of
        // the corpus, so requests must touch remote shards on 2 nodes.
        let mut cluster = small_cluster();
        cluster.alpha = 0.5;
        let cfg = EngineConfig::for_system(
            SystemKind::ItemPrefix,
            ModelConfig::qwen2_1_5b(),
            cluster,
            &ds,
        );
        let mut engine = ServingEngine::new(cfg).unwrap();
        let ip = engine.run(&trace(&ds, 4.0, 10.0));
        assert!(ip.remote_bytes > Bytes::ZERO);
        assert!(ip.net_secs > 0.0);
    }

    #[test]
    fn saturation_qps_is_bounded_by_compute() {
        let ds = DatasetConfig::games();
        // Offered far above capacity: completion rate ≈ capacity.
        let re = run_system(SystemKind::Recompute, &ds, 10.0, 200.0);
        let model = ModelConfig::qwen2_1_5b();
        let cm = ComputeModel::new(model, small_cluster().node);
        let per_req = cm.prefill_secs(2400, 2400);
        let upper = 2.0 / per_req * 1.2; // 2 nodes + slack
        assert!(re.qps() < upper, "qps {} vs bound {}", re.qps(), upper);
        assert!(re.qps() > 0.2 / per_req);
    }

    #[test]
    fn latency_grows_with_offered_load() {
        let ds = DatasetConfig::games();
        let light = run_system(SystemKind::Bat, &ds, 10.0, 2.0);
        let heavy = run_system(SystemKind::Bat, &ds, 10.0, 300.0);
        assert!(
            heavy.p99_latency_ms > light.p99_latency_ms * 2.0,
            "overload must inflate P99: {} vs {}",
            heavy.p99_latency_ms,
            light.p99_latency_ms
        );
    }

    #[test]
    fn bat_splits_traffic_between_prefixes() {
        let ds = DatasetConfig::industry();
        let bat = run_system(SystemKind::Bat, &ds, 6.0, 20.0);
        assert!(bat.ip_requests > 0, "some requests must go item-as-prefix");
        assert!(
            bat.up_requests + bat.ip_requests == bat.completed,
            "every request gets a prefix decision"
        );
    }

    #[test]
    fn oversized_item_region_is_rejected() {
        let ds = DatasetConfig::books();
        let cluster = small_cluster();
        let kv = ModelConfig::qwen2_1_5b().kv_bytes(ds.avg_item_tokens as u64);
        let plan = ItemPlacementPlan::new(
            PlacementStrategy::Replicate,
            ds.num_items,
            cluster.num_nodes,
            1.0,
            kv,
        );
        let cfg =
            EngineConfig::for_system(SystemKind::Bat, ModelConfig::qwen2_1_5b(), cluster, &ds);
        // Books: 280K items × ~120KB ≈ 34GB per node > 20GB budget.
        let cfg = EngineConfig {
            placement: Some(plan),
            ..cfg
        };
        assert!(matches!(
            ServingEngine::new(cfg),
            Err(BatError::CapacityExceeded(_))
        ));
    }

    #[test]
    fn with_placement_resizes_user_region() {
        let ds = DatasetConfig::games();
        let cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        );
        let full = cfg.clone().with_placement(None);
        assert!(full.user_cache_capacity > cfg.user_cache_capacity);
        assert_eq!(full.user_cache_capacity, Bytes::from_gb(20) * 2);
    }

    #[test]
    fn telemetry_records_cover_every_request() {
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let mut cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        );
        cfg.record_requests = true;
        let t = trace(&ds, 4.0, 20.0);
        let mut engine = ServingEngine::new(cfg).unwrap();
        let stats = engine.run(&t);
        let records = engine.take_records();
        assert_eq!(records.len(), stats.completed);
        // Records agree with the aggregate counters exactly.
        let reused: u64 = records.iter().map(|r| r.reused_tokens).sum();
        let computed: u64 = records.iter().map(|r| r.computed_tokens).sum();
        assert_eq!(reused, stats.reused_tokens);
        assert_eq!(computed, stats.computed_tokens);
        for r in &records {
            assert!(r.completion_secs >= r.arrival_secs);
        }
        // take_records drains.
        assert!(engine.take_records().is_empty());
        let rows = crate::stats::breakdown_by_prefix(&records);
        assert!(!rows.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// Conservation and completeness hold for arbitrary small
            /// workloads and all four systems.
            #[test]
            fn engine_invariants(
                seed in 0u64..500,
                rate in 5.0f64..60.0,
                users in 50u64..2000,
                kind_idx in 0usize..4,
            ) {
                let kind = [
                    SystemKind::Recompute,
                    SystemKind::UserPrefix,
                    SystemKind::ItemPrefix,
                    SystemKind::Bat,
                ][kind_idx];
                let ds = DatasetConfig { num_users: users, ..DatasetConfig::games() };
                let mut gen = bat_workload::TraceGenerator::new(
                    bat_workload::Workload::new(ds.clone(), seed),
                    seed ^ 1,
                );
                let trace = gen.generate(3.0, rate);
                prop_assume!(!trace.is_empty());
                let cfg = EngineConfig::for_system(
                    kind,
                    ModelConfig::qwen2_1_5b(),
                    small_cluster(),
                    &ds,
                );
                let mut engine = ServingEngine::new(cfg).unwrap();
                let stats = engine.run(&trace);
                prop_assert_eq!(stats.completed, trace.len());
                prop_assert_eq!(
                    stats.reused_tokens + stats.computed_tokens,
                    stats.total_tokens
                );
                prop_assert!(stats.hit_rate() <= 1.0);
                prop_assert!(stats.p99_latency_ms >= stats.p50_latency_ms);
                prop_assert!(stats.qps() > 0.0);
                if kind == SystemKind::Recompute {
                    prop_assert_eq!(stats.reused_tokens, 0);
                }
            }

            /// Satellite invariant, engine level: with continuous batching
            /// and the control plane on, every submitted request reaches
            /// exactly one terminal outcome — `submitted == completed +
            /// shed + rejected` — under random chunk sizes, seat counts,
            /// burst rates, and a mid-run worker crash/restart.
            #[test]
            fn batched_engine_conserves(
                seed in 0u64..200,
                rate in 20.0f64..150.0,
                seats in 1usize..6,
                chunk in 16u64..256,
                deadline in 0.05f64..0.8,
                crash_at in 0.1f64..1.2,
            ) {
                let ds = DatasetConfig { num_users: 400, ..DatasetConfig::games() };
                let mut gen = bat_workload::TraceGenerator::new(
                    bat_workload::Workload::new(ds.clone(), seed),
                    seed ^ 7,
                );
                gen.set_slo(
                    bat_types::SloBudget::with_deadline(deadline)
                        .at_priority(bat_types::Priority::Low),
                );
                let trace = gen.generate(2.0, rate);
                prop_assume!(!trace.is_empty());
                let schedule = bat_faults::FaultSchedule::new(
                    2,
                    vec![
                        bat_faults::FaultEvent {
                            at_secs: crash_at,
                            kind: bat_faults::FaultKind::WorkerCrash(bat_types::WorkerId::new(1)),
                        },
                        bat_faults::FaultEvent {
                            at_secs: crash_at + 0.3,
                            kind: bat_faults::FaultKind::WorkerRestart(bat_types::WorkerId::new(1)),
                        },
                    ],
                ).unwrap();
                let cfg = EngineConfig::for_system(
                    SystemKind::Bat,
                    ModelConfig::qwen2_1_5b(),
                    small_cluster(),
                    &ds,
                )
                .with_slo(Some(bat_sched::OverloadConfig::default()))
                .with_faults(Some(schedule))
                .with_batching(Some(bat_sched::BatchingConfig {
                    slots_per_worker: seats,
                    chunk_tokens: chunk,
                }));
                let mut engine = ServingEngine::new(cfg).unwrap();
                let stats = engine.run(&trace);
                prop_assert_eq!(stats.slo.submitted, trace.len() as u64);
                prop_assert!(stats.slo.conserved(), "conservation violated: {:?}", stats.slo);
                prop_assert_eq!(stats.completed as u64, stats.slo.completed);
                prop_assert!(stats.batching.chunks >= stats.batching.rounds);
            }
        }
    }

    #[test]
    fn config_validation_catches_inconsistency() {
        let ds = DatasetConfig::games();
        let mut cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        );
        cfg.caching = false;
        assert!(matches!(cfg.validate(), Err(BatError::InvalidConfig(_))));
    }

    fn slo_trace(ds: &DatasetConfig, secs: f64, rate: f64, deadline: f64) -> Vec<RankRequest> {
        let mut g =
            bat_workload::TraceGenerator::new(bat_workload::Workload::new(ds.clone(), 11), 12);
        g.set_slo(
            bat_types::SloBudget::with_deadline(deadline).at_priority(bat_types::Priority::Low),
        );
        g.generate(secs, rate)
    }

    #[test]
    fn overload_control_rejects_and_conserves_under_burst() {
        let ds = DatasetConfig::games();
        // A burst far past the 2-node cluster's capacity with tight
        // deadlines: the admission controller must turn work away.
        let trace = slo_trace(&ds, 1.0, 600.0, 0.08);
        let cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        )
        .with_slo(Some(bat_sched::OverloadConfig::default()));
        let stats = ServingEngine::new(cfg.clone()).unwrap().run(&trace);
        assert_eq!(stats.slo.submitted, trace.len() as u64);
        assert!(
            stats.slo.conserved(),
            "conservation violated: {:?}",
            stats.slo
        );
        assert!(
            stats.slo.rejected() > 0,
            "a 600 qps burst on 2 nodes must shed load: {:?}",
            stats.slo
        );
        assert!(stats.completed < trace.len());
        assert_eq!(stats.completed as u64, stats.slo.completed);
        // The run is deterministic: same seed, same schedule, same stats —
        // bitwise, floats included.
        let again = ServingEngine::new(cfg).unwrap().run(&trace);
        assert_eq!(stats, again);
    }

    #[test]
    fn overload_control_is_quiet_at_low_load() {
        let ds = DatasetConfig::games();
        // Deadlines generous enough that the pessimistic admission estimate
        // never declares a request infeasible at this load.
        let trace = slo_trace(&ds, 4.0, 5.0, 2.0);
        let cfg = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        )
        .with_slo(Some(bat_sched::OverloadConfig::default()));
        let stats = ServingEngine::new(cfg).unwrap().run(&trace);
        assert_eq!(stats.slo.accepted, trace.len() as u64, "{:?}", stats.slo);
        assert_eq!(stats.completed, trace.len());
        assert!(stats.slo.conserved());
        assert_eq!(stats.faults.max_brownout_rung, 0);
        assert!((stats.slo.goodput_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slo_disabled_runs_leave_stats_quiet() {
        let ds = DatasetConfig::games();
        let stats = run_system(SystemKind::Bat, &ds, 2.0, 10.0);
        assert_eq!(stats.slo, SloStats::default());
    }

    fn batched(cfg: EngineConfig) -> EngineConfig {
        cfg.with_batching(Some(bat_sched::BatchingConfig::default()))
    }

    #[test]
    fn batched_runs_complete_everything_and_fuse_rounds() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 4.0, 30.0);
        let cfg = batched(EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        ));
        let stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        assert_eq!(stats.completed, t.len());
        assert!(stats.batching.rounds > 0);
        assert!(stats.batching.chunks >= stats.batching.rounds);
        assert!(stats.batching.batched_tokens > 0);
        assert_eq!(
            stats.reused_tokens + stats.computed_tokens,
            stats.total_tokens
        );
        // Bitwise deterministic, ledger included.
        let again = ServingEngine::new(cfg).unwrap().run(&t);
        assert_eq!(stats, again);
        assert_eq!(stats.digest(), again.digest());
    }

    #[test]
    fn per_request_runs_keep_the_batching_ledger_quiet() {
        let ds = DatasetConfig::games();
        let stats = run_system(SystemKind::Bat, &ds, 2.0, 10.0);
        assert_eq!(stats.batching, bat_metrics::BatchStats::default());
    }

    #[test]
    fn continuous_batching_beats_per_request_dispatch_under_load() {
        // Per-request baseline: max_batched_tokens = 1 forces one batch
        // overhead per request. Continuous batching amortizes it across
        // every seated chunk — the win shows where per-request dispatch
        // overhead rivals the service itself: short prompts under genuine
        // saturation, each request fitting in one chunk so rounds fuse up
        // to `slots_per_worker` requests.
        let ds = DatasetConfig {
            num_users: 300,
            avg_user_tokens: 120,
            avg_item_tokens: 8,
            candidates_per_request: 10,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 1.0, 2000.0);
        let mut cluster = small_cluster();
        cluster.max_batched_tokens = 1;
        let base_cfg =
            EngineConfig::for_system(SystemKind::Bat, ModelConfig::qwen2_1_5b(), cluster, &ds);
        let base = ServingEngine::new(base_cfg.clone()).unwrap().run(&t);
        let cont_cfg = base_cfg.with_batching(Some(bat_sched::BatchingConfig {
            slots_per_worker: 8,
            chunk_tokens: 512,
        }));
        let cont = ServingEngine::new(cont_cfg).unwrap().run(&t);
        assert_eq!(cont.completed, base.completed);
        let ratio = cont.qps() / base.qps();
        assert!(
            ratio >= 1.3,
            "continuous batching must raise sustained throughput >= 1.3x: got {ratio:.3}"
        );
        assert!(
            cont.batching.rounds < cont.batching.chunks,
            "rounds must fuse chunks across requests"
        );
        assert!(
            cont.batching.max_idle_gap_over_chunk <= 1.0,
            "no idle gap may exceed one chunk at saturation"
        );
    }

    #[test]
    fn batched_overload_control_conserves_under_burst() {
        let ds = DatasetConfig::games();
        let t = slo_trace(&ds, 1.0, 600.0, 0.08);
        let cfg = batched(
            EngineConfig::for_system(
                SystemKind::Bat,
                ModelConfig::qwen2_1_5b(),
                small_cluster(),
                &ds,
            )
            .with_slo(Some(bat_sched::OverloadConfig::default())),
        );
        let stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        assert_eq!(stats.slo.submitted, t.len() as u64);
        assert!(stats.slo.conserved(), "{:?}", stats.slo);
        assert!(
            stats.slo.rejected() > 0,
            "slot backlog must push the admission estimate over tight deadlines"
        );
        assert_eq!(stats.completed as u64, stats.slo.completed);
        let again = ServingEngine::new(cfg).unwrap().run(&t);
        assert_eq!(stats, again);
    }

    #[test]
    fn batched_crash_and_restart_lose_no_requests() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 3.0, 40.0);
        let schedule = bat_faults::FaultSchedule::new(
            2,
            vec![
                bat_faults::FaultEvent {
                    at_secs: 0.5,
                    kind: bat_faults::FaultKind::WorkerCrash(bat_types::WorkerId::new(1)),
                },
                bat_faults::FaultEvent {
                    at_secs: 1.5,
                    kind: bat_faults::FaultKind::WorkerRestart(bat_types::WorkerId::new(1)),
                },
            ],
        )
        .unwrap();
        let cfg = batched(
            EngineConfig::for_system(
                SystemKind::Bat,
                ModelConfig::qwen2_1_5b(),
                small_cluster(),
                &ds,
            )
            .with_faults(Some(schedule)),
        );
        let stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        assert_eq!(
            stats.completed,
            t.len(),
            "crashed seats must re-queue, not vanish"
        );
        assert!(stats.faults.crashes > 0);
        let again = ServingEngine::new(cfg).unwrap().run(&t);
        assert_eq!(stats.digest(), again.digest());
    }

    #[test]
    fn straggler_slows_service_without_breaking_determinism() {
        let ds = DatasetConfig::games();
        let trace = slo_trace(&ds, 2.0, 30.0, 2.0);
        let base = EngineConfig::for_system(
            SystemKind::Bat,
            ModelConfig::qwen2_1_5b(),
            small_cluster(),
            &ds,
        )
        .with_slo(Some(bat_sched::OverloadConfig::default()));
        let healthy = ServingEngine::new(base.clone()).unwrap().run(&trace);
        let slowed_cfg = base.with_straggler(Some((1, 5.0)));
        let slowed = ServingEngine::new(slowed_cfg.clone()).unwrap().run(&trace);
        assert!(
            slowed.mean_latency_ms > healthy.mean_latency_ms,
            "a 5x straggler must slow half the fleet's service: {} vs {}",
            slowed.mean_latency_ms,
            healthy.mean_latency_ms
        );
        assert!(slowed.slo.conserved(), "{:?}", slowed.slo);
        let again = ServingEngine::new(slowed_cfg).unwrap().run(&trace);
        assert_eq!(slowed, again);
    }
}
