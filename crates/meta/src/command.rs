//! The replicated command log's vocabulary.

use bat_kvcache::CacheKey;
use serde::{Deserialize, Serialize};

/// A membership change routed through the replicated view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewChange {
    /// A cache worker died: the replicated index must drop every user
    /// entry the static partition (`user % num_workers`) placed on it.
    WorkerCrashed {
        /// Index of the dead worker.
        worker: usize,
        /// Pool size the partition function is taken over.
        num_workers: usize,
    },
    /// A cache worker rejoined (empty); only the view epoch moves.
    WorkerRestarted {
        /// Index of the rejoined worker.
        worker: usize,
    },
}

/// One entry of the replicated command log. Commands are deterministic
/// state-machine transitions: applying the same committed sequence to any
/// replica yields bit-identical [`crate::MetaState`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetaCommand {
    /// `key` now exists in the pool with `bytes` resident.
    RegisterEntry {
        /// The entry's identity.
        key: CacheKey,
        /// Page-rounded resident size.
        bytes: u64,
    },
    /// `key` left the pool (capacity eviction or explicit removal).
    Evict {
        /// The entry's identity.
        key: CacheKey,
    },
    /// One more access to `key` at millisecond-quantized trace time
    /// `at_ms` (see [`bat_kvcache::meta_time_ms`]).
    HotnessDelta {
        /// The entry's identity.
        key: CacheKey,
        /// Access time, milliseconds of trace time.
        at_ms: u64,
    },
    /// The cluster membership changed.
    View(ViewChange),
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::UserId;

    #[test]
    fn commands_serialize_round_trip() {
        let cmds = vec![
            MetaCommand::RegisterEntry {
                key: UserId::new(3).into(),
                bytes: 4096,
            },
            MetaCommand::Evict {
                key: UserId::new(3).into(),
            },
            MetaCommand::HotnessDelta {
                key: UserId::new(9).into(),
                at_ms: 1500,
            },
            MetaCommand::View(ViewChange::WorkerCrashed {
                worker: 1,
                num_workers: 4,
            }),
            MetaCommand::View(ViewChange::WorkerRestarted { worker: 1 }),
        ];
        let json = serde_json::to_string(&cmds).unwrap();
        let back: Vec<MetaCommand> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cmds);
    }
}
