//! The client handle the planner talks to instead of a local meta index.

use crate::command::{MetaCommand, ViewChange};
use crate::group::{MetaError, MetaGroup, Receipt};
use bat_kvcache::{meta_time_ms, CacheKey, MetaIndex};

/// Client-side counters; planning-deterministic like everything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Commands successfully committed.
    pub submitted: u64,
    /// Submit attempts retried after a node-down/fenced response.
    pub retries: u64,
    /// Redirects followed after contacting a follower.
    pub redirects: u64,
    /// Elections forced because the leader was unreachable across a cut
    /// worker link.
    pub forced_elections: u64,
    /// Submits that had to fall back to an unreachable leader because no
    /// client-reachable replica could win an election.
    pub blocked_unreachable: u64,
}

/// Retry/redirect client for a [`MetaGroup`], hosted on a cache worker.
///
/// Replica `m` of the group is hosted on worker `m % num_workers`; the
/// client rides on `client_worker`. Meta-to-meta traffic runs on the
/// control plane (unaffected by worker-fabric cuts), but the client's
/// command path crosses the worker fabric — so a per-link partition that
/// severs `client_worker` from the leader's host makes the leader
/// *unreachable*, and the client responds by forcing an election among the
/// replicas it can still reach.
///
/// The client drives the group's logical clock from nominal trace time and
/// keeps a leader hint so the common case is a single hop.
#[derive(Debug)]
pub struct MetaClient {
    group: MetaGroup,
    num_workers: usize,
    client_worker: usize,
    /// Whether the client can currently reach each replica's host worker.
    reach: Vec<bool>,
    leader_hint: Option<usize>,
    stats: ClientStats,
}

impl MetaClient {
    /// A client for a fresh `num_nodes`-replica group seeded with `seed`,
    /// hosted across `num_workers` cache workers, with the client (the
    /// planner) riding on worker 0.
    pub fn new(num_nodes: usize, seed: u64, num_workers: usize) -> Self {
        assert!(num_workers >= 1, "need at least one host worker");
        MetaClient {
            group: MetaGroup::new(num_nodes, seed),
            num_workers,
            client_worker: 0,
            reach: vec![true; num_nodes],
            leader_hint: None,
            stats: ClientStats::default(),
        }
    }

    /// Worker hosting replica `m`.
    pub fn host_of(&self, m: usize) -> usize {
        m % self.num_workers
    }

    /// The worker the client rides on.
    pub fn client_worker(&self) -> usize {
        self.client_worker
    }

    /// Recomputes which replicas the client can reach, given a predicate
    /// over worker-fabric reachability from the client's host. Call after
    /// every link cut/heal or worker membership change.
    pub fn update_reachability(&mut self, worker_reachable: impl Fn(usize, usize) -> bool) {
        for m in 0..self.group.num_nodes() {
            self.reach[m] = worker_reachable(self.client_worker, self.host_of(m));
        }
    }

    /// The underlying group, for introspection.
    pub fn group(&self) -> &MetaGroup {
        &self.group
    }

    /// Client-side counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Advances the group's logical clock to nominal trace time `now`.
    pub fn advance_to(&mut self, now: f64) {
        self.group.advance_to(now);
    }

    /// Injects a meta-replica crash at nominal time `at`.
    pub fn crash_replica(&mut self, m: usize, at: f64) {
        self.group.advance_to(at);
        self.group.crash(m);
        if self.leader_hint == Some(m) {
            self.leader_hint = None;
        }
    }

    /// Injects a meta-replica rejoin at nominal time `at`.
    pub fn restart_replica(&mut self, m: usize, at: f64) {
        self.group.advance_to(at);
        self.group.restart(m);
    }

    /// Commits `cmd`, retrying through redirects, fenced leaders, and
    /// unreachable-leader elections until it lands. Validated fault
    /// schedules keep a quorum alive, so this cannot fail for them; losing
    /// quorum anyway panics rather than silently dropping meta state.
    pub fn submit(&mut self, cmd: MetaCommand, now: f64) -> Receipt {
        self.group.advance_to(now);
        for _ in 0..self.group.num_nodes() * 2 + 2 {
            let target = match self.leader_hint {
                Some(l) => l,
                None => self
                    .group
                    .ensure_leader()
                    .expect("validated schedules keep a meta quorum alive"),
            };
            // A leader the client cannot reach across the worker fabric is
            // as good as down: force an election among reachable replicas.
            if !self.reach[target] {
                self.stats.forced_elections += 1;
                let reach = self.reach.clone();
                match self.group.force_election(|m| reach[m]) {
                    Some(l) => {
                        self.leader_hint = Some(l);
                        continue;
                    }
                    None => {
                        // No reachable replica can win; fall back to the
                        // control-plane path rather than dropping the
                        // command.
                        self.stats.blocked_unreachable += 1;
                    }
                }
            }
            match self.group.try_append_via(target, &cmd) {
                Ok(r) => {
                    self.leader_hint = Some(target);
                    self.stats.submitted += 1;
                    return r;
                }
                Err(MetaError::NotLeader { current }) => {
                    self.stats.redirects += 1;
                    self.leader_hint = current;
                }
                Err(MetaError::Fenced { .. }) | Err(MetaError::NodeDown(_)) => {
                    self.stats.retries += 1;
                    self.leader_hint = None;
                }
                Err(e @ MetaError::NoQuorum) => {
                    panic!("meta group unservable: {e}");
                }
            }
        }
        panic!("meta submit did not converge — leader churn exceeded retry budget");
    }
}

impl MetaIndex for MetaClient {
    fn register(&mut self, key: CacheKey, bytes: u64, now: f64) {
        self.submit(MetaCommand::RegisterEntry { key, bytes }, now);
    }

    fn evict(&mut self, key: CacheKey, now: f64) {
        self.submit(MetaCommand::Evict { key }, now);
    }

    fn touch(&mut self, key: CacheKey, now: f64) {
        self.submit(
            MetaCommand::HotnessDelta {
                key,
                at_ms: meta_time_ms(now),
            },
            now,
        );
    }

    fn drop_user_partition(&mut self, worker_index: usize, num_workers: usize, now: f64) -> u64 {
        let dropped = self
            .group
            .read(|s| s.partition_entries(worker_index, num_workers));
        self.submit(
            MetaCommand::View(ViewChange::WorkerCrashed {
                worker: worker_index,
                num_workers,
            }),
            now,
        );
        dropped
    }

    fn note_worker_restart(&mut self, worker_index: usize, now: f64) {
        self.submit(
            MetaCommand::View(ViewChange::WorkerRestarted {
                worker: worker_index,
            }),
            now,
        );
    }

    fn contains(&self, key: CacheKey) -> bool {
        self.group.read(|s| s.contains(key))
    }

    fn num_entries(&self) -> usize {
        self.group.read(|s| s.num_entries())
    }

    fn bytes_indexed(&self) -> u64 {
        self.group.read(|s| s.bytes_indexed())
    }

    fn view_epoch(&self) -> u64 {
        self.group.read(|s| s.view_epoch())
    }

    fn hotness_count(&self, key: CacheKey) -> u64 {
        self.group.read(|s| s.hotness_count(key))
    }

    fn digest(&self) -> u64 {
        self.group.read(|s| s.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::UserId;

    fn key(i: u64) -> CacheKey {
        UserId::new(i).into()
    }

    #[test]
    fn client_behaves_like_a_local_meta_index() {
        use bat_kvcache::LocalMetaIndex;
        let mut c = MetaClient::new(3, 9, 4);
        let mut local = LocalMetaIndex::new();
        for i in 0..40u64 {
            let t = i as f64 * 0.5;
            c.register(key(i), 100 + i, t);
            local.register(key(i), 100 + i, t);
            c.touch(key(i / 2), t);
            local.touch(key(i / 2), t);
            if i % 7 == 0 {
                c.evict(key(i / 3), t);
                local.evict(key(i / 3), t);
            }
        }
        let dropped_c = c.drop_user_partition(1, 4, 21.0);
        let dropped_l = local.drop_user_partition(1, 4, 21.0);
        assert_eq!(dropped_c, dropped_l);
        c.note_worker_restart(1, 22.0);
        local.note_worker_restart(1, 22.0);
        assert_eq!(c.num_entries(), local.num_entries());
        assert_eq!(c.bytes_indexed(), local.bytes_indexed());
        assert_eq!(c.view_epoch(), local.view_epoch());
        assert_eq!(c.digest(), local.digest(), "replicated == local, bitwise");
    }

    #[test]
    fn leader_crash_mid_stream_loses_nothing() {
        let mut c = MetaClient::new(3, 4, 4);
        for i in 0..10u64 {
            c.register(key(i), 1, i as f64);
        }
        let epoch_before = c.group().epoch();
        let leader = c.group().leader().unwrap();
        c.crash_replica(leader, 10.0);
        for i in 10..20u64 {
            c.register(key(i), 1, i as f64);
        }
        assert!(c.group().epoch() > epoch_before);
        assert_eq!(c.num_entries(), 20);
        assert_eq!(c.stats().submitted, 20);
        c.restart_replica(leader, 25.0);
        c.register(key(20), 1, 30.0);
        assert!(c.group().replicas_agree() || !c.group().is_alive(leader));
    }

    #[test]
    fn unreachable_leader_triggers_forced_election() {
        // 3 replicas on 3 workers: replica m lives on worker m. Cut the
        // client (worker 0) off from the leader's host.
        let mut c = MetaClient::new(3, 6, 3);
        c.register(key(1), 1, 0.0);
        let leader = c.group().leader().unwrap();
        let leader_host = c.host_of(leader);
        if leader_host == 0 {
            // The leader shares the client's worker; nothing to cut.
            return;
        }
        c.update_reachability(|from, to| !(from == 0 && to == leader_host));
        let epoch_before = c.group().epoch();
        c.register(key(2), 1, 1.0);
        assert!(c.stats().forced_elections >= 1);
        let new_leader = c.group().leader().unwrap();
        assert_ne!(c.host_of(new_leader), leader_host);
        assert!(c.group().epoch() > epoch_before);
        assert_eq!(c.num_entries(), 2, "command still committed");
    }
}
