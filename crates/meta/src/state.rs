//! The deterministic state machine every meta replica hosts.

use crate::command::{MetaCommand, ViewChange};
use bat_kvcache::{meta_digest, CacheKey};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The cache-meta index + hotness table + replicated view epoch, as one
/// deterministic state machine. Replicas apply the same committed command
/// sequence and must end bit-identical; [`MetaState::digest`] is how tests
/// and the group check that they do.
///
/// Semantically this mirrors [`bat_kvcache::LocalMetaIndex`] exactly — the
/// planner's cross-checks rely on the replicated index never diverging from
/// what a single-node meta service would have recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaState {
    index: BTreeMap<CacheKey, u64>,
    hotness: BTreeMap<CacheKey, (u64, u64)>,
    view_epoch: u64,
}

/// One row of a snapshot's hotness table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotnessRow {
    /// The entry's identity.
    pub key: CacheKey,
    /// Accesses recorded.
    pub count: u64,
    /// Last access, milliseconds of trace time.
    pub last_ms: u64,
}

/// Serializable image of a [`MetaState`] at a commit point, installed into
/// rejoining replicas before they replay the log suffix. Stored as sorted
/// vectors (the JSON shim has no map-with-struct-key support, and sorted
/// vectors make snapshot bytes canonical).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaSnapshot {
    /// `(key, bytes)` pairs of the index, key-ascending.
    pub index: Vec<(CacheKey, u64)>,
    /// Rows of the hotness table, key-ascending.
    pub hotness: Vec<HotnessRow>,
    /// Replicated membership epoch at the snapshot point.
    pub view_epoch: u64,
    /// Log index the snapshot covers: entries `< applied_len` are baked in.
    pub applied_len: usize,
}

impl MetaState {
    /// An empty state at view epoch 0.
    pub fn new() -> Self {
        MetaState::default()
    }

    /// Applies one committed command. Deterministic: no randomness, no
    /// wall-clock, no iteration over unordered containers.
    pub fn apply(&mut self, cmd: &MetaCommand) {
        match *cmd {
            MetaCommand::RegisterEntry { key, bytes } => {
                self.index.insert(key, bytes);
            }
            MetaCommand::Evict { key } => {
                self.index.remove(&key);
            }
            MetaCommand::HotnessDelta { key, at_ms } => {
                let slot = self.hotness.entry(key).or_insert((0, 0));
                slot.0 += 1;
                slot.1 = at_ms;
            }
            MetaCommand::View(ViewChange::WorkerCrashed {
                worker,
                num_workers,
            }) => {
                let victims: Vec<CacheKey> = self
                    .index
                    .keys()
                    .filter(|k| {
                        k.as_user()
                            .is_some_and(|u| u.as_u64() % num_workers as u64 == worker as u64)
                    })
                    .copied()
                    .collect();
                for k in &victims {
                    self.index.remove(k);
                }
                self.view_epoch += 1;
            }
            MetaCommand::View(ViewChange::WorkerRestarted { .. }) => {
                self.view_epoch += 1;
            }
        }
    }

    /// How many index entries a `WorkerCrashed` view change would drop —
    /// what [`MetaState::apply`] is about to invalidate. The client reports
    /// this so the planner can cross-check the replicated invalidation
    /// against the local cache's.
    pub fn partition_entries(&self, worker: usize, num_workers: usize) -> u64 {
        self.index
            .keys()
            .filter(|k| {
                k.as_user()
                    .is_some_and(|u| u.as_u64() % num_workers as u64 == worker as u64)
            })
            .count() as u64
    }

    /// Whether `key` is indexed.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.index.contains_key(&key)
    }

    /// Number of indexed entries.
    pub fn num_entries(&self) -> usize {
        self.index.len()
    }

    /// Total bytes the indexed entries hold.
    pub fn bytes_indexed(&self) -> u64 {
        self.index.values().sum()
    }

    /// Replicated membership epoch.
    pub fn view_epoch(&self) -> u64 {
        self.view_epoch
    }

    /// Access count recorded for `key` (0 if never touched).
    pub fn hotness_count(&self, key: CacheKey) -> u64 {
        self.hotness.get(&key).map_or(0, |(c, _)| *c)
    }

    /// Order-independent digest over the full state, comparable with
    /// [`bat_kvcache::MetaIndex::digest`] on a local index holding the same
    /// contents.
    pub fn digest(&self) -> u64 {
        meta_digest(self.index.iter(), self.hotness.iter(), self.view_epoch)
    }

    /// Captures a snapshot covering the first `applied_len` log entries.
    pub fn snapshot(&self, applied_len: usize) -> MetaSnapshot {
        MetaSnapshot {
            index: self.index.iter().map(|(k, b)| (*k, *b)).collect(),
            hotness: self
                .hotness
                .iter()
                .map(|(k, (c, t))| HotnessRow {
                    key: *k,
                    count: *c,
                    last_ms: *t,
                })
                .collect(),
            view_epoch: self.view_epoch,
            applied_len,
        }
    }

    /// Rebuilds the state a snapshot captured.
    pub fn restore(snap: &MetaSnapshot) -> Self {
        MetaState {
            index: snap.index.iter().copied().collect(),
            hotness: snap
                .hotness
                .iter()
                .map(|r| (r.key, (r.count, r.last_ms)))
                .collect(),
            view_epoch: snap.view_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_kvcache::{LocalMetaIndex, MetaIndex};
    use bat_types::{ItemId, UserId};

    fn u(i: u64) -> CacheKey {
        UserId::new(i).into()
    }

    #[test]
    fn apply_matches_local_meta_index() {
        // The replicated state machine and the single-node index must agree
        // command-for-command, digest included.
        let mut state = MetaState::new();
        let mut local = LocalMetaIndex::new();
        let script: Vec<MetaCommand> = vec![
            MetaCommand::RegisterEntry {
                key: u(1),
                bytes: 100,
            },
            MetaCommand::RegisterEntry {
                key: u(5),
                bytes: 200,
            },
            MetaCommand::RegisterEntry {
                key: ItemId::new(5).into(),
                bytes: 64,
            },
            MetaCommand::HotnessDelta {
                key: u(1),
                at_ms: 1000,
            },
            MetaCommand::HotnessDelta {
                key: u(1),
                at_ms: 2500,
            },
            MetaCommand::Evict { key: u(5) },
            MetaCommand::RegisterEntry {
                key: u(9),
                bytes: 300,
            },
            MetaCommand::View(ViewChange::WorkerCrashed {
                worker: 1,
                num_workers: 4,
            }),
            MetaCommand::View(ViewChange::WorkerRestarted { worker: 1 }),
        ];
        for cmd in &script {
            state.apply(cmd);
            match *cmd {
                MetaCommand::RegisterEntry { key, bytes } => local.register(key, bytes, 0.0),
                MetaCommand::Evict { key } => local.evict(key, 0.0),
                MetaCommand::HotnessDelta { key, at_ms } => local.touch(key, at_ms as f64 / 1000.0),
                MetaCommand::View(ViewChange::WorkerCrashed {
                    worker,
                    num_workers,
                }) => {
                    local.drop_user_partition(worker, num_workers, 0.0);
                }
                MetaCommand::View(ViewChange::WorkerRestarted { worker }) => {
                    local.note_worker_restart(worker, 0.0)
                }
            }
        }
        assert_eq!(state.num_entries(), local.num_entries());
        assert_eq!(state.bytes_indexed(), local.bytes_indexed());
        assert_eq!(state.view_epoch(), local.view_epoch());
        assert_eq!(state.digest(), local.digest());
        // Worker 1 of 4 owned users 1, 5, 9: u1/u9 were present and dropped.
        assert!(!state.contains(u(1)) && !state.contains(u(9)));
        assert!(state.contains(ItemId::new(5).into()), "items survive");
    }

    #[test]
    fn partition_entries_counts_without_mutating() {
        let mut s = MetaState::new();
        for i in 0..8 {
            s.apply(&MetaCommand::RegisterEntry {
                key: u(i),
                bytes: 1,
            });
        }
        assert_eq!(s.partition_entries(0, 4), 2); // users 0, 4
        assert_eq!(s.num_entries(), 8, "counting does not drop");
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut s = MetaState::new();
        s.apply(&MetaCommand::RegisterEntry {
            key: u(2),
            bytes: 77,
        });
        s.apply(&MetaCommand::HotnessDelta {
            key: u(2),
            at_ms: 31,
        });
        s.apply(&MetaCommand::View(ViewChange::WorkerRestarted {
            worker: 0,
        }));
        let snap = s.snapshot(3);
        assert_eq!(snap.applied_len, 3);

        // Through serde and back: snapshots travel as bytes.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetaSnapshot = serde_json::from_str(&json).unwrap();
        let restored = MetaState::restore(&back);
        assert_eq!(restored, s);
        assert_eq!(restored.digest(), s.digest());
    }
}
