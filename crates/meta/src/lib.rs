//! `bat-meta`: the replicated cache-meta service.
//!
//! BAT's disaggregated pool (§5.1) centralizes the cache-meta index and
//! hotness table in one meta service; a single meta node is a
//! single point of failure for the whole pool. This crate replaces it with
//! a deterministic replicated state machine:
//!
//! * [`MetaCommand`] — the replicated command log's vocabulary
//!   (RegisterEntry / Evict / HotnessDelta / ViewChange);
//! * [`MetaState`] — the index + hotness table + view epoch as a pure,
//!   deterministic state machine, snapshottable as [`MetaSnapshot`];
//! * [`MetaGroup`] — leader/follower replication: seeded-tick leader
//!   election with randomized-by-seed timeouts, majority-commit append,
//!   epoch fencing against deposed leaders, and snapshot + log-replay
//!   catch-up for rejoining replicas;
//! * [`MetaClient`] — the retry/redirect handle that `bat-sim` and
//!   `bat-serve` use in place of direct meta access; it implements
//!   [`bat_kvcache::MetaIndex`], so the planner cannot tell (and must not
//!   care) whether its meta service is local or replicated.
//!
//! Determinism is the design constraint throughout: elections are driven by
//! logical ticks derived from nominal trace time and a seed, never from
//! wall-clock — so a leader crash mid-run changes *no* serving decision,
//! and final run statistics stay bitwise-identical to the fault-free run.

mod client;
mod command;
mod group;
mod state;

pub use client::{ClientStats, MetaClient};
pub use command::{MetaCommand, ViewChange};
pub use group::{
    GroupStats, LogEntry, MetaError, MetaGroup, Receipt, COMPACT_TRIGGER, ELECTION_MIN_TICKS,
    ELECTION_SPREAD_TICKS, HEARTBEAT_TICKS, TICK_SECS,
};
pub use state::{HotnessRow, MetaSnapshot, MetaState};
