//! The replicated meta group: seeded-tick leader election, majority-commit
//! log replication, epoch fencing, and snapshot + log-replay catch-up.
//!
//! The protocol is a deliberately deterministic Raft-style core. Time is a
//! logical tick counter derived from *nominal trace time* (never
//! wall-clock): leaders heartbeat every few ticks, followers that miss
//! heartbeats for a seed-randomized timeout start an election, and a
//! candidate wins with a majority of votes at a strictly higher epoch.
//! Replication is synchronous inside [`MetaGroup::try_append_via`]: an
//! entry commits only after a majority of replicas hold it, and a deposed
//! leader's append is *fenced* — any contacted replica at a higher epoch
//! rejects the write before it reaches the log, so stale-epoch commands are
//! never applied anywhere.
//!
//! Every source of nondeterminism is pinned: election timeouts come from a
//! splitmix64 hash of `(seed, node, epoch)`, ties break in node-id order,
//! and the state machine itself ([`crate::MetaState`]) is pure. Two runs
//! that issue the same command sequence at the same nominal times — e.g.
//! `bat-sim`'s event loop and `bat-serve`'s threaded runtime — therefore
//! produce bit-identical group histories, which is what makes meta failover
//! testable as an equality of final run statistics.

use crate::command::MetaCommand;
use crate::state::{MetaSnapshot, MetaState};
use std::fmt;

/// Logical tick length in seconds of nominal trace time.
pub const TICK_SECS: f64 = 0.01;
/// A live leader heartbeats its followers every this many ticks.
pub const HEARTBEAT_TICKS: u64 = 5;
/// Election timeouts are drawn from `[ELECTION_MIN_TICKS,
/// ELECTION_MIN_TICKS + ELECTION_SPREAD_TICKS)`.
pub const ELECTION_MIN_TICKS: u64 = 10;
/// Width of the randomized election-timeout window, ticks.
pub const ELECTION_SPREAD_TICKS: u64 = 10;
/// A replica compacts its log into a snapshot once it holds this many
/// entries; rejoining followers then catch up via snapshot + suffix replay.
pub const COMPACT_TRIGGER: usize = 64;
/// Upper bound on ticks [`MetaGroup::ensure_leader`] will drive waiting for
/// an election to conclude; exceeding it means the group lost quorum, which
/// validated fault schedules rule out.
const MAX_DRIVE_TICKS: u64 = 100_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One entry of a replica's command log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogEntry {
    /// Election epoch the entry was proposed under.
    pub epoch: u64,
    /// The replicated command.
    pub cmd: MetaCommand,
}

/// Why a meta operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaError {
    /// Not enough live replicas acknowledged; the entry was not committed.
    NoQuorum,
    /// The contacted replica is down.
    NodeDown(usize),
    /// The contacted replica is a follower; retry at the current leader.
    NotLeader {
        /// The leader to redirect to, if one is known and alive.
        current: Option<usize>,
    },
    /// Epoch fencing rejected a deposed leader's write: a contacted
    /// replica holds a strictly higher epoch.
    Fenced {
        /// The deposed leader's stale epoch.
        stale_epoch: u64,
        /// The higher epoch that fenced it.
        current_epoch: u64,
    },
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::NoQuorum => write!(f, "meta group lost quorum"),
            MetaError::NodeDown(m) => write!(f, "meta replica {m} is down"),
            MetaError::NotLeader { current } => match current {
                Some(l) => write!(f, "not the leader; redirect to replica {l}"),
                None => write!(f, "not the leader; no leader elected"),
            },
            MetaError::Fenced {
                stale_epoch,
                current_epoch,
            } => write!(
                f,
                "write fenced: stale epoch {stale_epoch} < current epoch {current_epoch}"
            ),
        }
    }
}

/// Proof of commit returned to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Epoch the entry committed under.
    pub epoch: u64,
    /// Global log index of the committed entry.
    pub index: usize,
}

/// Replication counters, all planning-deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Successful leader elections (including the initial one).
    pub elections: u64,
    /// Election attempts that failed to reach a majority.
    pub failed_elections: u64,
    /// Entries committed (majority-acknowledged and applied).
    pub committed: u64,
    /// Stale-epoch appends rejected by fencing.
    pub fenced_appends: u64,
    /// Snapshot installs performed to catch followers up.
    pub snapshot_installs: u64,
    /// Log entries replayed on top of installed snapshots.
    pub replayed_entries: u64,
}

#[derive(Debug, Clone)]
struct MetaNode {
    alive: bool,
    /// Cut off from its peers (exchanges no messages) — how a deposed
    /// leader can keep believing it leads.
    isolated: bool,
    believes_leader: bool,
    epoch: u64,
    /// Compacted prefix of the log, baked into `snap`.
    snap: MetaSnapshot,
    /// Live log suffix; global index of `log[0]` is `snap.applied_len`.
    log: Vec<LogEntry>,
    /// Global count of commands applied to `state`.
    applied: usize,
    state: MetaState,
    last_heartbeat_tick: u64,
    timeout_ticks: u64,
}

impl MetaNode {
    fn fresh(tick: u64) -> Self {
        MetaNode {
            alive: true,
            isolated: false,
            believes_leader: false,
            epoch: 0,
            snap: MetaSnapshot::default(),
            log: Vec::new(),
            applied: 0,
            state: MetaState::new(),
            last_heartbeat_tick: tick,
            timeout_ticks: ELECTION_MIN_TICKS,
        }
    }

    fn log_base(&self) -> usize {
        self.snap.applied_len
    }

    /// Compacts the log into the snapshot once it grows past the trigger.
    fn maybe_compact(&mut self) {
        if self.log.len() >= COMPACT_TRIGGER {
            self.snap = self.state.snapshot(self.applied);
            self.log.clear();
        }
    }
}

/// A deterministic replicated meta group of `n` replicas.
#[derive(Debug, Clone)]
pub struct MetaGroup {
    seed: u64,
    nodes: Vec<MetaNode>,
    leader: Option<usize>,
    tick: u64,
    stats: GroupStats,
}

impl MetaGroup {
    /// A fresh group with all replicas alive and no leader elected yet;
    /// the first [`MetaGroup::submit`] (or enough ticks) elects one.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        assert!(num_nodes >= 1, "meta group needs at least one replica");
        let mut g = MetaGroup {
            seed,
            nodes: (0..num_nodes).map(|_| MetaNode::fresh(0)).collect(),
            leader: None,
            tick: 0,
            stats: GroupStats::default(),
        };
        for m in 0..num_nodes {
            g.nodes[m].timeout_ticks = g.timeout_for(m, 0);
        }
        g
    }

    /// Seed-randomized election timeout for `node` at `epoch`.
    fn timeout_for(&self, node: usize, epoch: u64) -> u64 {
        let h = splitmix64(
            self.seed
                ^ (node as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)
                ^ (epoch + 1).wrapping_mul(0xe703_7ed1_a0b4_28db),
        );
        ELECTION_MIN_TICKS + h % ELECTION_SPREAD_TICKS
    }

    /// Replicas, total.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Majority threshold: `n/2 + 1` of all replicas, dead or alive.
    pub fn quorum(&self) -> usize {
        self.nodes.len() / 2 + 1
    }

    /// The current leader, if one is elected, alive, and connected.
    pub fn leader(&self) -> Option<usize> {
        self.leader
            .filter(|&l| self.nodes[l].alive && !self.nodes[l].isolated)
    }

    /// Highest epoch any live replica holds.
    pub fn epoch(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.epoch)
            .max()
            .unwrap_or(0)
    }

    /// Replication counters so far.
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Whether replica `m` is alive.
    pub fn is_alive(&self, m: usize) -> bool {
        self.nodes[m].alive
    }

    /// Direct read of replica `m`'s applied state (test introspection).
    pub fn state_of(&self, m: usize) -> &MetaState {
        &self.nodes[m].state
    }

    /// Runs `f` over the freshest committed state reachable: the leader's
    /// if it is up, else the most-caught-up live replica's. Every committed
    /// entry is on a majority of replicas, so this read is linearizable
    /// with respect to committed commands.
    pub fn read<R>(&self, f: impl FnOnce(&MetaState) -> R) -> R {
        let m = self
            .leader()
            .or_else(|| {
                (0..self.nodes.len())
                    .filter(|&m| self.nodes[m].alive)
                    .max_by_key(|&m| (self.nodes[m].applied, usize::MAX - m))
            })
            .expect("validated schedules keep a meta quorum alive");
        f(&self.nodes[m].state)
    }

    /// Advances logical time to nominal trace time `now`, running
    /// heartbeats and timeout-triggered elections along the way.
    /// Non-finite or past times are no-ops.
    pub fn advance_to(&mut self, now: f64) {
        if !now.is_finite() {
            return;
        }
        let target = (now / TICK_SECS).floor() as u64;
        while self.tick < target {
            self.tick += 1;
            self.step_tick();
        }
    }

    fn step_tick(&mut self) {
        // Leader side: heartbeat + catch-up for lagging followers.
        if let Some(l) = self.leader() {
            if self.tick.is_multiple_of(HEARTBEAT_TICKS) {
                for m in 0..self.nodes.len() {
                    if m == l || !self.nodes[m].alive || self.nodes[m].isolated {
                        continue;
                    }
                    self.catch_up(l, m);
                    self.nodes[m].last_heartbeat_tick = self.tick;
                }
            }
            return;
        }
        // No reachable leader: followers count down their seeded timeouts;
        // the first to fire (node-id order breaks ties) stands for election.
        for m in 0..self.nodes.len() {
            let n = &self.nodes[m];
            if !n.alive || n.isolated || n.believes_leader {
                continue;
            }
            if self.tick.saturating_sub(n.last_heartbeat_tick) >= n.timeout_ticks {
                if self.run_election(m) {
                    return;
                }
                // Lost: re-randomize this epoch's timeout and keep waiting.
                let timeout = self.timeout_for(m, self.nodes[m].epoch);
                self.nodes[m].timeout_ticks = timeout;
                self.nodes[m].last_heartbeat_tick = self.tick;
            }
        }
    }

    /// Candidate `c` stands at epoch `c.epoch + 1`; voters grant when the
    /// candidate's epoch is new to them and its log is at least as
    /// caught-up as theirs. A majority of the *full* group size wins.
    fn run_election(&mut self, c: usize) -> bool {
        let new_epoch = self.nodes[c].epoch + 1;
        self.nodes[c].epoch = new_epoch;
        let mut votes = 1usize; // self-vote
        for m in 0..self.nodes.len() {
            if m == c || !self.nodes[m].alive || self.nodes[m].isolated || self.nodes[c].isolated {
                continue;
            }
            if new_epoch > self.nodes[m].epoch && self.nodes[c].applied >= self.nodes[m].applied {
                votes += 1;
            }
        }
        if votes < self.quorum() {
            self.stats.failed_elections += 1;
            return false;
        }
        // Won: every reachable replica adopts the epoch; the old leader
        // (if reachable) steps down. An isolated old leader keeps its
        // stale belief — that is exactly what epoch fencing exists for.
        for m in 0..self.nodes.len() {
            if !self.nodes[m].alive || self.nodes[m].isolated {
                continue;
            }
            self.nodes[m].epoch = new_epoch;
            self.nodes[m].believes_leader = m == c;
            self.nodes[m].last_heartbeat_tick = self.tick;
            self.nodes[m].timeout_ticks = self.timeout_for(m, new_epoch);
        }
        self.leader = Some(c);
        self.stats.elections += 1;
        true
    }

    /// Brings follower `m` up to the leader `l`'s committed state: a
    /// follower that fell behind the leader's compacted log base installs
    /// the leader's snapshot and replays the log suffix on top; one that is
    /// merely short appends and applies the missing suffix.
    fn catch_up(&mut self, l: usize, m: usize) {
        self.nodes[m].epoch = self.nodes[l].epoch;
        if self.nodes[m].applied >= self.nodes[l].applied {
            return;
        }
        if self.nodes[m].applied < self.nodes[l].log_base() {
            // Too far behind for the live log: snapshot + log replay.
            let snap = self.nodes[l].snap.clone();
            let suffix = self.nodes[l].log.clone();
            let n = &mut self.nodes[m];
            n.state = MetaState::restore(&snap);
            n.snap = snap;
            n.log = suffix;
            let state = &mut n.state;
            for e in &n.log {
                state.apply(&e.cmd);
            }
            n.applied = n.snap.applied_len + n.log.len();
            self.stats.snapshot_installs += 1;
            self.stats.replayed_entries += self.nodes[m].log.len() as u64;
        } else {
            let from = self.nodes[m].applied - self.nodes[l].log_base();
            let missing: Vec<LogEntry> = self.nodes[l].log[from..].to_vec();
            let n = &mut self.nodes[m];
            for e in missing {
                n.state.apply(&e.cmd);
                n.log.push(e);
                n.applied += 1;
            }
        }
        self.nodes[m].maybe_compact();
    }

    /// Ensures a reachable leader exists, driving logical ticks until an
    /// election concludes if necessary. Elections therefore finish "inside"
    /// the submit that needed them — trace time does not advance, so
    /// failover never perturbs serving decisions.
    pub fn ensure_leader(&mut self) -> Result<usize, MetaError> {
        if let Some(l) = self.leader() {
            return Ok(l);
        }
        for _ in 0..MAX_DRIVE_TICKS {
            self.tick += 1;
            self.step_tick();
            if let Some(l) = self.leader() {
                return Ok(l);
            }
        }
        Err(MetaError::NoQuorum)
    }

    /// Forces an election restricted to candidates `allowed` deems
    /// acceptable (the client passes "reachable from me"); picks the
    /// most-caught-up such replica, lowest id first. Returns the new
    /// leader, or `None` when no allowed candidate can win.
    pub fn force_election(&mut self, allowed: impl Fn(usize) -> bool) -> Option<usize> {
        let candidate = (0..self.nodes.len())
            .filter(|&m| self.nodes[m].alive && !self.nodes[m].isolated && allowed(m))
            .max_by_key(|&m| (self.nodes[m].applied, usize::MAX - m))?;
        if self.leader() == Some(candidate) {
            return Some(candidate);
        }
        if self.run_election(candidate) {
            Some(candidate)
        } else {
            None
        }
    }

    /// Appends `cmd` through replica `via`, which must believe it is the
    /// leader. This is the full replication round: every reachable replica
    /// is first checked for a higher epoch (fencing), then caught up and
    /// handed the entry; the entry commits only with a majority of acks.
    ///
    /// # Errors
    ///
    /// [`MetaError::NodeDown`] / [`MetaError::NotLeader`] redirect the
    /// client; [`MetaError::Fenced`] means `via` was deposed — the entry
    /// was rejected before reaching any log, and `via` steps down.
    /// [`MetaError::NoQuorum`] means too few replicas acknowledged.
    pub fn try_append_via(&mut self, via: usize, cmd: &MetaCommand) -> Result<Receipt, MetaError> {
        if !self.nodes[via].alive {
            return Err(MetaError::NodeDown(via));
        }
        if !self.nodes[via].believes_leader {
            return Err(MetaError::NotLeader {
                current: self.leader(),
            });
        }
        let epoch = self.nodes[via].epoch;
        let peers: Vec<usize> = (0..self.nodes.len())
            .filter(|&m| {
                m != via
                    && self.nodes[m].alive
                    && !self.nodes[m].isolated
                    && !self.nodes[via].isolated
            })
            .collect();
        // Epoch fencing: any reachable replica at a strictly higher epoch
        // proves `via` was deposed. Reject before touching any log.
        if let Some(&w) = peers.iter().find(|&&m| self.nodes[m].epoch > epoch) {
            let current_epoch = self.nodes[w].epoch;
            self.nodes[via].believes_leader = false;
            self.nodes[via].epoch = current_epoch;
            if self.leader == Some(via) {
                self.leader = None;
            }
            self.stats.fenced_appends += 1;
            return Err(MetaError::Fenced {
                stale_epoch: epoch,
                current_epoch,
            });
        }
        if 1 + peers.len() < self.quorum() {
            return Err(MetaError::NoQuorum);
        }
        // Catch every reachable follower up, then replicate the new entry.
        for &m in &peers {
            self.catch_up(via, m);
        }
        let entry = LogEntry { epoch, cmd: *cmd };
        let index = self.nodes[via].applied;
        for &m in peers.iter().chain(std::iter::once(&via)) {
            let n = &mut self.nodes[m];
            n.log.push(entry);
            n.state.apply(cmd);
            n.applied += 1;
            n.maybe_compact();
        }
        self.stats.committed += 1;
        Ok(Receipt { epoch, index })
    }

    /// Commits `cmd` through the current leader, electing one first if
    /// needed.
    ///
    /// # Errors
    ///
    /// [`MetaError::NoQuorum`] when the group cannot elect or commit.
    pub fn submit(&mut self, cmd: &MetaCommand) -> Result<Receipt, MetaError> {
        for _ in 0..self.nodes.len() + 1 {
            let l = self.ensure_leader()?;
            match self.try_append_via(l, cmd) {
                Ok(r) => return Ok(r),
                Err(MetaError::Fenced { .. })
                | Err(MetaError::NotLeader { .. })
                | Err(MetaError::NodeDown(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(MetaError::NoQuorum)
    }

    /// Kills replica `m`: log and state are lost. If it led, the group has
    /// no leader until an election concludes.
    pub fn crash(&mut self, m: usize) {
        assert!(self.nodes[m].alive, "meta replica {m} crashed while down");
        self.nodes[m].alive = false;
        self.nodes[m].believes_leader = false;
        if self.leader == Some(m) {
            self.leader = None;
        }
    }

    /// Rejoins replica `m` empty at epoch 0; the next heartbeat or commit
    /// catches it up via snapshot + log replay.
    pub fn restart(&mut self, m: usize) {
        assert!(!self.nodes[m].alive, "meta replica {m} restarted while up");
        self.nodes[m] = MetaNode::fresh(self.tick);
        self.nodes[m].timeout_ticks = self.timeout_for(m, 0);
    }

    /// Cuts replica `m` off from its peers (it stays alive and keeps its
    /// beliefs — including, if it led, that it still leads).
    pub fn isolate(&mut self, m: usize) {
        self.nodes[m].isolated = true;
    }

    /// Reconnects replica `m`; it will adopt the current epoch at the next
    /// heartbeat and catch up on anything it missed.
    pub fn reconnect(&mut self, m: usize) {
        self.nodes[m].isolated = false;
    }

    /// Whether every live, connected, caught-up replica holds the same
    /// state digest — the group-wide agreement check.
    pub fn replicas_agree(&self) -> bool {
        let mut digests = (0..self.nodes.len())
            .filter(|&m| self.nodes[m].alive && !self.nodes[m].isolated)
            .filter(|&m| {
                self.nodes[m].applied
                    == self
                        .nodes
                        .iter()
                        .filter(|n| n.alive && !n.isolated)
                        .map(|n| n.applied)
                        .max()
                        .unwrap_or(0)
            })
            .map(|m| self.nodes[m].state.digest());
        let Some(first) = digests.next() else {
            return true;
        };
        digests.all(|d| d == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::UserId;

    fn reg(i: u64) -> MetaCommand {
        MetaCommand::RegisterEntry {
            key: UserId::new(i).into(),
            bytes: 10,
        }
    }

    #[test]
    fn first_submit_elects_a_leader_and_commits() {
        let mut g = MetaGroup::new(3, 42);
        assert_eq!(g.leader(), None);
        let r = g.submit(&reg(1)).unwrap();
        assert!(g.leader().is_some());
        assert!(r.epoch >= 1);
        assert_eq!(r.index, 0);
        assert_eq!(g.stats().elections, 1);
        assert!(g.replicas_agree());
        assert!(g.read(|s| s.contains(UserId::new(1).into())));
        // All three replicas hold the entry (majority means all here).
        for m in 0..3 {
            assert!(g.state_of(m).contains(UserId::new(1).into()));
        }
    }

    #[test]
    fn seeded_elections_are_deterministic() {
        let run = |seed| {
            let mut g = MetaGroup::new(5, seed);
            let mut log = Vec::new();
            for i in 0..20 {
                let r = g.submit(&reg(i)).unwrap();
                log.push((r.epoch, r.index));
                if i == 7 {
                    let l = g.leader().unwrap();
                    g.crash(l);
                }
                g.advance_to(i as f64);
            }
            (log, g.epoch(), g.stats())
        };
        assert_eq!(run(7), run(7));
        // A different seed elects along a different timeout landscape but
        // still commits everything.
        let (log_a, ..) = run(7);
        let (log_b, ..) = run(8);
        assert_eq!(log_a.len(), log_b.len());
    }

    #[test]
    fn leader_crash_fails_over_to_higher_epoch() {
        let mut g = MetaGroup::new(3, 1);
        g.submit(&reg(1)).unwrap();
        let old_leader = g.leader().unwrap();
        let old_epoch = g.epoch();
        g.crash(old_leader);
        // Next submit drives the election internally and still commits.
        let r = g.submit(&reg(2)).unwrap();
        let new_leader = g.leader().unwrap();
        assert_ne!(new_leader, old_leader);
        assert!(g.epoch() > old_epoch, "new leader holds a higher epoch");
        assert_eq!(r.epoch, g.epoch());
        assert!(g.read(|s| s.contains(UserId::new(2).into())));
        assert_eq!(g.stats().elections, 2);
    }

    #[test]
    fn timeout_driven_election_fires_without_a_submit() {
        let mut g = MetaGroup::new(3, 3);
        g.submit(&reg(1)).unwrap();
        let l = g.leader().unwrap();
        g.crash(l);
        // Advance nominal time: followers time out and elect on their own.
        g.advance_to(5.0);
        assert!(g.leader().is_some());
        assert_ne!(g.leader().unwrap(), l);
    }

    #[test]
    fn fenced_stale_leader_write_is_never_applied() {
        let mut g = MetaGroup::new(3, 11);
        g.submit(&reg(1)).unwrap();
        let old = g.leader().unwrap();
        let old_epoch = g.epoch();

        // Isolate the leader: it keeps believing it leads while the
        // survivors elect a successor at a higher epoch.
        g.isolate(old);
        g.leader = None; // clients stopped reaching it
        let new = g.ensure_leader().unwrap();
        assert_ne!(new, old);
        assert!(g.epoch() > old_epoch);

        // The deposed leader reconnects and tries to append: fenced.
        g.reconnect(old);
        let err = g.try_append_via(old, &reg(99)).unwrap_err();
        assert!(
            matches!(err, MetaError::Fenced { stale_epoch, current_epoch }
            if stale_epoch == old_epoch && current_epoch > old_epoch)
        );
        assert_eq!(g.stats().fenced_appends, 1);
        // The stale write reached no replica, and the group still agrees.
        for m in 0..3 {
            assert!(
                !g.state_of(m).contains(UserId::new(99).into()),
                "stale write leaked into replica {m}"
            );
        }
        assert!(g.replicas_agree());
        // The deposed leader redirects clients from now on.
        assert!(matches!(
            g.try_append_via(old, &reg(99)).unwrap_err(),
            MetaError::NotLeader { .. }
        ));
    }

    #[test]
    fn rejoining_replica_catches_up_via_snapshot_and_replay() {
        let mut g = MetaGroup::new(3, 5);
        g.submit(&reg(0)).unwrap();
        let victim = (g.leader().unwrap() + 1) % 3; // a follower
        g.crash(victim);
        // Push well past the compaction trigger so the survivors' logs
        // compact and the rejoiner must take a snapshot, not just a suffix.
        for i in 1..(COMPACT_TRIGGER as u64 * 2 + 10) {
            g.submit(&reg(i)).unwrap();
        }
        g.restart(victim);
        g.submit(&reg(9999)).unwrap();
        assert!(g.stats().snapshot_installs >= 1, "snapshot path exercised");
        assert!(g.replicas_agree());
        let digest = g.read(|s| s.digest());
        assert_eq!(g.state_of(victim).digest(), digest, "rejoiner converged");
    }

    #[test]
    fn force_election_moves_leadership_to_an_allowed_replica() {
        let mut g = MetaGroup::new(3, 2);
        g.submit(&reg(1)).unwrap();
        let old = g.leader().unwrap();
        let allowed = move |m: usize| m != old;
        let new = g.force_election(allowed).unwrap();
        assert_ne!(new, old);
        assert_eq!(g.leader(), Some(new));
        // The old leader learned about the new epoch (it was reachable),
        // so it redirects rather than fences.
        assert!(matches!(
            g.try_append_via(old, &reg(2)).unwrap_err(),
            MetaError::NotLeader { current: Some(l) } if l == new
        ));
    }

    #[test]
    fn single_replica_group_degenerates_gracefully() {
        let mut g = MetaGroup::new(1, 0);
        assert_eq!(g.quorum(), 1);
        g.submit(&reg(1)).unwrap();
        assert_eq!(g.leader(), Some(0));
        assert!(g.read(|s| s.contains(UserId::new(1).into())));
    }

    #[test]
    fn no_quorum_is_reported_not_hung() {
        let mut g = MetaGroup::new(3, 0);
        g.submit(&reg(1)).unwrap();
        // Unvalidated direct crashes may kill the majority; the group must
        // fail fast instead of spinning.
        let l = g.leader().unwrap();
        g.crash(l);
        g.crash((l + 1) % 3);
        assert_eq!(g.submit(&reg(2)).unwrap_err(), MetaError::NoQuorum);
    }
}
