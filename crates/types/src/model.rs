//! Model-architecture descriptions (the paper's Table 2).
//!
//! A [`ModelConfig`] carries the hyper-parameters that determine the two
//! quantities the serving system cares about:
//!
//! * **KV cache bytes per token** — `2 × kv_heads × head_dim × layers ×
//!   sizeof(fp16)` (§3.3.2), which drives memory-capacity planning, and
//! * **prefill FLOPs** — which drives the compute-latency model in `bat-sim`.
//!
//! The three presets reproduce Table 2 exactly: Qwen2-1.5B, Qwen2-7B and
//! Llama3-1B.

use serde::{Deserialize, Serialize};

/// Size of an fp16 value in bytes; the paper stores KV cache in FP16.
pub const FP16_BYTES: u64 = 2;

/// Architecture of a transformer used as a Generative Recommender.
///
/// ```
/// use bat_types::ModelConfig;
///
/// // Table 2 values.
/// assert_eq!(ModelConfig::qwen2_1_5b().kv_bytes_per_token(), 28672);
/// assert_eq!(ModelConfig::qwen2_7b().kv_bytes_per_token(), 57344);
/// assert_eq!(ModelConfig::llama3_1b().kv_bytes_per_token(), 32768);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"Qwen2-1.5B"`.
    pub name: String,
    /// Total parameter count (drives the linear term of prefill FLOPs).
    pub params: u64,
    /// Number of transformer layers (`L` in the paper).
    pub layers: u32,
    /// Number of KV heads per layer (`H` in the paper; GQA models have fewer
    /// KV heads than query heads).
    pub kv_heads: u32,
    /// Number of query heads per layer.
    pub query_heads: u32,
    /// Per-head dimension (`D` in the paper).
    pub head_dim: u32,
    /// Model (residual-stream) hidden dimension.
    pub hidden_dim: u32,
}

impl ModelConfig {
    /// Qwen2-1.5B: L=28, H=2 KV heads, D=128 (Table 2).
    pub fn qwen2_1_5b() -> Self {
        ModelConfig {
            name: "Qwen2-1.5B".to_owned(),
            params: 1_500_000_000,
            layers: 28,
            kv_heads: 2,
            query_heads: 12,
            head_dim: 128,
            hidden_dim: 1536,
        }
    }

    /// Qwen2-7B: L=28, H=4 KV heads, D=128 (Table 2).
    pub fn qwen2_7b() -> Self {
        ModelConfig {
            name: "Qwen2-7B".to_owned(),
            params: 7_000_000_000,
            layers: 28,
            kv_heads: 4,
            query_heads: 28,
            head_dim: 128,
            hidden_dim: 3584,
        }
    }

    /// Llama3-1B: L=16, H=8 KV heads, D=64 (Table 2).
    pub fn llama3_1b() -> Self {
        ModelConfig {
            name: "Llama3-1B".to_owned(),
            params: 1_000_000_000,
            layers: 16,
            kv_heads: 8,
            query_heads: 32,
            head_dim: 64,
            hidden_dim: 2048,
        }
    }

    /// All three Table 2 presets, in the order the paper lists them.
    pub fn table2_presets() -> Vec<ModelConfig> {
        vec![Self::qwen2_1_5b(), Self::qwen2_7b(), Self::llama3_1b()]
    }

    /// KV cache footprint of a single token, in bytes:
    /// `2 (K and V) × H × D × L × sizeof(FP16)` (§3.3.2).
    #[inline]
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.kv_heads as u64 * self.head_dim as u64 * self.layers as u64 * FP16_BYTES
    }

    /// KV cache footprint of an entry holding `tokens` tokens.
    #[inline]
    pub fn kv_bytes(&self, tokens: u64) -> u64 {
        tokens * self.kv_bytes_per_token()
    }

    /// Prefill FLOPs for computing `suffix` new tokens against a total
    /// attention context of `context` tokens (`context >= suffix`).
    ///
    /// Two terms, matching the standard dense-transformer cost model:
    ///
    /// * the weight-matmul term `2 × params × suffix` (every parameter is
    ///   touched once per token by a multiply-accumulate), and
    /// * the attention term `4 × layers × hidden_dim × suffix × context`
    ///   (QKᵀ and attention×V each cost `2 × S × T × d` per layer).
    ///
    /// With a prefix cache hit of `P` tokens on a prompt of `T` tokens, call
    /// this with `suffix = T - P, context = T`; full recomputation is
    /// `suffix = context = T`.
    ///
    /// # Panics
    ///
    /// Panics if `suffix > context`: a request can never compute more new
    /// tokens than its total context holds.
    pub fn prefill_flops(&self, suffix: u64, context: u64) -> f64 {
        assert!(
            suffix <= context,
            "suffix ({suffix}) cannot exceed context ({context})"
        );
        let weight = 2.0 * self.params as f64 * suffix as f64;
        let attn =
            4.0 * self.layers as f64 * self.hidden_dim as f64 * suffix as f64 * context as f64;
        weight + attn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_kv_bytes_match_paper() {
        // The three "KV Cache Size per Token" rows of Table 2.
        assert_eq!(ModelConfig::qwen2_1_5b().kv_bytes_per_token(), 28_672);
        assert_eq!(ModelConfig::qwen2_7b().kv_bytes_per_token(), 57_344);
        assert_eq!(ModelConfig::llama3_1b().kv_bytes_per_token(), 32_768);
    }

    #[test]
    fn single_user_kv_footprint_matches_paper_example() {
        // §3.3.2: "a single user [1000 tokens, Qwen2-1.5B] occupies
        // approximately 29MB KV cache".
        let mb = ModelConfig::qwen2_1_5b().kv_bytes(1000) as f64 / 1e6;
        assert!((28.0..30.0).contains(&mb), "expected ~29MB, got {mb}MB");
    }

    #[test]
    fn industry_item_corpus_matches_paper_example() {
        // §4.3: 1M items × ~10 tokens with Qwen2-1.5B ≈ 287GB.
        let gb = ModelConfig::qwen2_1_5b().kv_bytes(10) as f64 * 1e6 / 1e9;
        assert!((280.0..295.0).contains(&gb), "expected ~287GB, got {gb}GB");
    }

    #[test]
    fn prefill_flops_scales_superlinearly() {
        let m = ModelConfig::qwen2_1_5b();
        let f1 = m.prefill_flops(1024, 1024);
        let f2 = m.prefill_flops(2048, 2048);
        assert!(f2 > 2.0 * f1, "attention term must be super-linear");
    }

    #[test]
    fn prefix_hit_reduces_flops() {
        let m = ModelConfig::qwen2_1_5b();
        let full = m.prefill_flops(2048, 2048);
        let cached = m.prefill_flops(1024, 2048);
        assert!(cached < full / 1.8);
    }

    #[test]
    #[should_panic(expected = "cannot exceed context")]
    fn prefill_flops_rejects_bad_suffix() {
        let _ = ModelConfig::qwen2_1_5b().prefill_flops(10, 5);
    }

    #[test]
    fn presets_roundtrip_serde() {
        for m in ModelConfig::table2_presets() {
            let json = serde_json::to_string(&m).unwrap();
            let back: ModelConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
    }
}
