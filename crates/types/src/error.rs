//! The workspace-wide error type.

use crate::slo::RejectReason;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the BAT serving stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatError {
    /// A ranking request failed validation.
    InvalidRequest(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A cache operation referenced an entry that does not exist.
    CacheMiss(String),
    /// A cache worker ran out of capacity and could not admit an entry.
    CapacityExceeded(String),
    /// The serving runtime shut down before the operation completed.
    Shutdown(String),
    /// A cache worker referenced by the operation is not in the live
    /// membership (crashed, or draining after a fault).
    WorkerUnavailable(String),
    /// The admission controller refused the request on arrival. Typed (not
    /// stringly) so shed points can be counted and asserted on.
    Rejected {
        /// Why admission refused the request.
        reason: RejectReason,
    },
    /// The request was admitted but its deadline expired before service
    /// completed (swept from the queue, or finished too late to count).
    DeadlineExceeded,
}

impl fmt::Display for BatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            BatError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BatError::CacheMiss(msg) => write!(f, "cache miss: {msg}"),
            BatError::CapacityExceeded(msg) => write!(f, "capacity exceeded: {msg}"),
            BatError::Shutdown(msg) => write!(f, "runtime shut down: {msg}"),
            BatError::WorkerUnavailable(msg) => write!(f, "worker unavailable: {msg}"),
            BatError::Rejected { reason } => write!(f, "rejected: {reason}"),
            BatError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl Error for BatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BatError::InvalidRequest("no candidates".into());
        assert_eq!(e.to_string(), "invalid request: no candidates");
    }

    #[test]
    fn typed_shed_variants_display() {
        let e = BatError::Rejected {
            reason: RejectReason::QueueFull,
        };
        assert_eq!(e.to_string(), "rejected: queue full");
        assert_eq!(BatError::DeadlineExceeded.to_string(), "deadline exceeded");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatError>();
    }
}
