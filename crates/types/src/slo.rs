//! Service-level objectives carried on every request.
//!
//! A [`SloBudget`] stamps a ranking request with the latency contract the
//! caller expects: an optional completion deadline (relative to arrival) and
//! a [`Priority`] used by the brownout ladder when the cluster must shed
//! load. Requests default to best-effort ([`SloBudget::default`]): no
//! deadline, [`Priority::Normal`] — which keeps every pre-existing trace
//! byte-identical in behaviour.

use serde::{Deserialize, Serialize};

/// Shedding priority of a request. Under brownout rung 3 the control plane
/// sheds [`Priority::Low`] traffic first; [`Priority::High`] requests are
/// only rejected when the queue itself is full.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Speculative / prefetch traffic — first to be shed.
    Low,
    /// Interactive foreground traffic (the default).
    #[default]
    Normal,
    /// Contractual traffic — shed only on hard queue overflow.
    High,
}

impl Priority {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// The latency contract stamped on a request by the retrieval stage.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SloBudget {
    /// Completion deadline in seconds *relative to arrival*. `None` means
    /// best-effort: the request is never rejected for infeasibility and
    /// never counted as a deadline miss.
    pub deadline_secs: Option<f64>,
    /// Shedding priority under brownout.
    pub priority: Priority,
}

impl SloBudget {
    /// Best-effort budget: no deadline, normal priority.
    pub const BEST_EFFORT: SloBudget = SloBudget {
        deadline_secs: None,
        priority: Priority::Normal,
    };

    /// A budget with a deadline `deadline_secs` after arrival.
    pub fn with_deadline(deadline_secs: f64) -> Self {
        SloBudget {
            deadline_secs: Some(deadline_secs),
            priority: Priority::Normal,
        }
    }

    /// Same budget at a different priority.
    pub fn at_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Absolute deadline for a request that arrived at `arrival_secs`, if a
    /// deadline was set.
    #[inline]
    pub fn absolute_deadline(&self, arrival_secs: f64) -> Option<f64> {
        self.deadline_secs.map(|d| arrival_secs + d)
    }
}

/// Why the control plane refused a request at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The admission queue hit its bounded depth.
    QueueFull,
    /// The estimated queueing + service time already exceeds the deadline,
    /// so doing the work would only waste capacity.
    DeadlineInfeasible,
    /// Brownout rung 3: the request's priority is below the shed floor.
    BrownoutShed,
}

impl RejectReason {
    /// Short label used in reports and error messages.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue full",
            RejectReason::DeadlineInfeasible => "deadline infeasible",
            RejectReason::BrownoutShed => "brownout shed",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_best_effort() {
        let b = SloBudget::default();
        assert_eq!(b, SloBudget::BEST_EFFORT);
        assert_eq!(b.deadline_secs, None);
        assert_eq!(b.priority, Priority::Normal);
        assert_eq!(b.absolute_deadline(5.0), None);
    }

    #[test]
    fn absolute_deadline_offsets_from_arrival() {
        let b = SloBudget::with_deadline(0.25).at_priority(Priority::High);
        assert_eq!(b.absolute_deadline(1.0), Some(1.25));
        assert_eq!(b.priority, Priority::High);
    }

    #[test]
    fn priority_order_matches_shed_order() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }

    #[test]
    fn serde_default_slo_roundtrip() {
        // Old traces without an `slo` field must deserialize.
        let json = r#"{"deadline_secs":0.5,"priority":"Low"}"#;
        let b: SloBudget = serde_json::from_str(json).unwrap();
        assert_eq!(b.deadline_secs, Some(0.5));
        assert_eq!(b.priority, Priority::Low);
    }
}
