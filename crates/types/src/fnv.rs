//! FNV-1a 64-bit hashing, the workspace's one digest primitive.
//!
//! Every deterministic-equality check in the repo — `RunStats::digest`, the
//! tiered-cache decision digest, the replicated meta-index digest — folds
//! counters through FNV-1a: tiny, dependency-free, order-sensitive, and
//! plenty for an equality pin (it is *not* a collision-resistant hash).
//! Until PR 9 each site carried its own copy, and two of them had drifted
//! onto a typo'd prime (`0x1000_0000_01b3` instead of the canonical
//! `0x0000_0100_0000_01b3`); digests are only ever compared to other
//! digests produced by the same code, so the drift was invisible — exactly
//! the kind of silent fork this module exists to prevent. All sites now
//! share these constants, pinned against published FNV test vectors below.
//!
//! ```
//! use bat_types::fnv::Fnv64;
//!
//! let mut a = Fnv64::new();
//! a.write(b"hello");
//! a.write_u64(42);
//! let mut b = Fnv64::new();
//! b.write(b"hello");
//! b.write_u64(43);
//! assert_ne!(a.finish(), b.finish());
//! ```

/// The FNV-1a 64-bit offset basis.
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// The state is the running hash itself, so a digest can be stored inline
/// (the tiered cache keeps one per instance and folds every decision into
/// it as it happens) or built in one pass and `finish`ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis (the hash of the empty input).
    #[inline]
    pub const fn new() -> Self {
        Fnv64(OFFSET)
    }

    /// Resumes a hasher from a previously `finish`ed state — the running
    /// hash is the whole state, so `Fnv64::resume(h.finish()) == h`.
    #[inline]
    pub const fn resume(state: u64) -> Self {
        Fnv64(state)
    }

    /// Folds one byte.
    #[inline]
    pub fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(PRIME);
    }

    /// Folds a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Folds a `u64` as its little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64` (so 32- and 64-bit hosts agree).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` as the little-endian bytes of its exact bit pattern
    /// (bitwise equality, not approximate: `-0.0` and `0.0` differ).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[inline]
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a 64-bit test vectors (Noll's reference list). A
    /// wrong prime or a missed xor/multiply swap (FNV-1 vs FNV-1a) fails
    /// these immediately — this is the pin that keeps every digest in the
    /// workspace on the one true function.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a(b"chongo was here!\n"), 0x4681_0940_eff5_f915);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn resume_round_trips() {
        let mut h = Fnv64::new();
        h.write(b"prefix");
        let saved = h.finish();
        h.write_u64(7);
        let mut r = Fnv64::resume(saved);
        r.write_u64(7);
        assert_eq!(h.finish(), r.finish());
    }

    #[test]
    fn typed_writers_match_manual_byte_folds() {
        let mut typed = Fnv64::new();
        typed.write_u64(0x0102_0304_0506_0708);
        typed.write_usize(9);
        typed.write_f64(1.5);
        let mut manual = Fnv64::new();
        manual.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        manual.write(&9u64.to_le_bytes());
        manual.write(&1.5f64.to_bits().to_le_bytes());
        assert_eq!(typed.finish(), manual.finish());
    }
}
