//! Dataset descriptions (the paper's Table 1).
//!
//! Each [`DatasetConfig`] records the population statistics that the
//! workload generator (`bat-workload`) turns into concrete users, items,
//! popularity distributions and request traces. The four presets reproduce
//! Table 1 (Games / Beauty / Books / Industry); `books_x` and `industry_x`
//! build the scaled variants used in Table 4 and Figure 10.

use serde::{Deserialize, Serialize};

/// Statistics of one recommendation scenario.
///
/// ```
/// use bat_types::DatasetConfig;
///
/// let books = DatasetConfig::books();
/// assert_eq!(books.num_users, 510_000);
/// assert_eq!(books.avg_item_tokens, 15);
///
/// // Table 4 uses Books with the item corpus scaled to 1M.
/// let books_1m = DatasetConfig::books_x(1_000_000);
/// assert_eq!(books_1m.num_items, 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Human-readable name, e.g. `"Books"` or `"Industry-10M"`.
    pub name: String,
    /// Number of distinct users.
    pub num_users: u64,
    /// Number of distinct items in the corpus.
    pub num_items: u64,
    /// Mean user-profile token count (`τ_u` in Algorithm 1).
    pub avg_user_tokens: u32,
    /// Mean per-item token count (`τ_i` in Algorithm 1).
    pub avg_item_tokens: u32,
    /// Candidate items retrieved per request (`c` in Algorithm 1; the paper
    /// uses 100 throughout §6).
    pub candidates_per_request: u32,
    /// Maximum prompt length; §6.2 expands user histories "so that the
    /// maximum prompt length approaches 8K tokens".
    pub max_prompt_tokens: u32,
    /// Zipf exponent of item popularity. Calibrated so that ~90% of accesses
    /// hit the top ~10% of items (Figure 2d) at Industry scale.
    pub item_zipf_exponent: f64,
    /// Zipf exponent of user activity. Calibrated so that >55% of users
    /// access the system at most once per hour (Figure 2c).
    pub user_zipf_exponent: f64,
    /// Mean aggregate request arrival rate used when replaying this dataset
    /// open-loop, in requests/second per node.
    pub base_request_rate: f64,
    /// Mean requests per user session (§5.3's burst model: users repeat
    /// searches/browses within minutes). 1.0 degenerates to one-shot
    /// Poisson arrivals.
    pub session_mean_requests: f64,
    /// Mean gap between a session's consecutive requests, seconds.
    pub session_mean_gap_secs: f64,
}

impl DatasetConfig {
    /// Amazon *Games*: 15K users, 8K items, τ_u=1245, τ_i=11 (Table 1).
    ///
    /// Games is the small, **high user-frequency** dataset: the same few
    /// users return often, which is why UP beats IP on it (§6.2).
    pub fn games() -> Self {
        DatasetConfig {
            name: "Games".to_owned(),
            num_users: 15_000,
            num_items: 8_000,
            avg_user_tokens: 1245,
            avg_item_tokens: 11,
            candidates_per_request: 100,
            max_prompt_tokens: 8192,
            item_zipf_exponent: 0.9,
            // Strongly concentrated user activity: "the average user access
            // frequency is high" (§6.2), so user prefixes are reused almost
            // every request and UP wins on this dataset.
            user_zipf_exponent: 1.5,
            base_request_rate: 64.0,
            session_mean_requests: 4.0,
            session_mean_gap_secs: 45.0,
        }
    }

    /// Amazon *Beauty*: 22K users, 12K items, τ_u=2043, τ_i=18 (Table 1).
    pub fn beauty() -> Self {
        DatasetConfig {
            name: "Beauty".to_owned(),
            num_users: 22_000,
            num_items: 12_000,
            avg_user_tokens: 2043,
            avg_item_tokens: 18,
            candidates_per_request: 100,
            max_prompt_tokens: 8192,
            item_zipf_exponent: 0.95,
            user_zipf_exponent: 0.7,
            base_request_rate: 48.0,
            session_mean_requests: 3.0,
            session_mean_gap_secs: 60.0,
        }
    }

    /// Amazon *Books*: 510K users, 280K items, τ_u=1586, τ_i=15 (Table 1).
    pub fn books() -> Self {
        DatasetConfig {
            name: "Books".to_owned(),
            num_users: 510_000,
            num_items: 280_000,
            avg_user_tokens: 1586,
            avg_item_tokens: 15,
            candidates_per_request: 100,
            max_prompt_tokens: 8192,
            item_zipf_exponent: 1.0,
            // Large user base: most users thrash the UP cache (IP wins), but
            // a hot head exists for the hotness-aware scheduler to exploit.
            user_zipf_exponent: 0.75,
            base_request_rate: 64.0,
            session_mean_requests: 10.0,
            session_mean_gap_secs: 45.0,
        }
    }

    /// Synthetic *Industry*: 10M users, 1M items, τ_u=1500, τ_i=10 (Table 1),
    /// generated from the authors' e-commerce advertising workload.
    pub fn industry() -> Self {
        DatasetConfig {
            name: "Industry".to_owned(),
            num_users: 10_000_000,
            num_items: 1_000_000,
            avg_user_tokens: 1500,
            avg_item_tokens: 10,
            candidates_per_request: 100,
            max_prompt_tokens: 8192,
            // Figure 2d: ~90% of accesses on the top ~10% of items.
            item_zipf_exponent: 1.05,
            // Figure 2c: most users access <2 times per hour; calibrated so
            // the UP baseline's token hit rate lands near the paper's 18%
            // (§3.3) under the 4-node memory budget.
            user_zipf_exponent: 0.85,
            base_request_rate: 64.0,
            // Weak recency: most Industry users are one-shot within an hour
            // (Figure 2c), which is what keeps the UP baseline's hit rate
            // near the paper's 18% (§3.3).
            session_mean_requests: 1.5,
            session_mean_gap_secs: 120.0,
        }
    }

    /// *Industry-X* (§6.6): the Industry workload with the item corpus scaled
    /// to `num_items` (1M..100M in Figure 10).
    pub fn industry_x(num_items: u64) -> Self {
        let mut ds = Self::industry();
        ds.num_items = num_items;
        ds.name = format!("Industry-{}", human_count(num_items));
        ds
    }

    /// *Books-X* (Table 4): the Books workload with the item corpus scaled to
    /// `num_items` (280K and 1M in the ablation).
    pub fn books_x(num_items: u64) -> Self {
        let mut ds = Self::books();
        ds.num_items = num_items;
        ds.name = format!("Books-{}", human_count(num_items));
        ds
    }

    /// The four Table 1 presets, in paper order.
    pub fn table1_presets() -> Vec<DatasetConfig> {
        vec![
            Self::games(),
            Self::beauty(),
            Self::books(),
            Self::industry(),
        ]
    }

    /// Expected total item tokens in one prompt (`c × τ_i`).
    #[inline]
    pub fn avg_prompt_item_tokens(&self) -> u32 {
        self.candidates_per_request * self.avg_item_tokens
    }
}

/// Formats 280_000 as "280K", 1_000_000 as "1M", etc.
fn human_count(n: u64) -> String {
    if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 && n.is_multiple_of(1_000) {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_match_paper() {
        let games = DatasetConfig::games();
        assert_eq!((games.num_users, games.num_items), (15_000, 8_000));
        assert_eq!((games.avg_user_tokens, games.avg_item_tokens), (1245, 11));

        let beauty = DatasetConfig::beauty();
        assert_eq!((beauty.num_users, beauty.num_items), (22_000, 12_000));
        assert_eq!((beauty.avg_user_tokens, beauty.avg_item_tokens), (2043, 18));

        let books = DatasetConfig::books();
        assert_eq!((books.num_users, books.num_items), (510_000, 280_000));
        assert_eq!((books.avg_user_tokens, books.avg_item_tokens), (1586, 15));

        let industry = DatasetConfig::industry();
        assert_eq!(
            (industry.num_users, industry.num_items),
            (10_000_000, 1_000_000)
        );
        assert_eq!(
            (industry.avg_user_tokens, industry.avg_item_tokens),
            (1500, 10)
        );
    }

    #[test]
    fn scaled_variants_rename_and_rescale() {
        let b = DatasetConfig::books_x(1_000_000);
        assert_eq!(b.name, "Books-1M");
        assert_eq!(b.num_items, 1_000_000);
        assert_eq!(b.num_users, DatasetConfig::books().num_users);

        let i = DatasetConfig::industry_x(100_000_000);
        assert_eq!(i.name, "Industry-100M");
        assert_eq!(i.num_items, 100_000_000);
    }

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(280_000), "280K");
        assert_eq!(human_count(1_000_000), "1M");
        assert_eq!(human_count(100_000_000), "100M");
        assert_eq!(human_count(1234), "1234");
    }

    #[test]
    fn prompt_item_tokens() {
        // §3.3: "100× candidate items each with 10 tokens" ≈ 1K item tokens.
        assert_eq!(DatasetConfig::industry().avg_prompt_item_tokens(), 1000);
    }
}
