//! Foundational types for the BAT reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: strongly-typed identifiers, the model-architecture presets of
//! the paper's Table 2, the dataset presets of Table 1, cluster hardware
//! descriptions, ranking requests, and the prefix-selection enum at the heart
//! of Bipartite Attention.
//!
//! # Example
//!
//! ```
//! use bat_types::{ModelConfig, DatasetConfig};
//!
//! let model = ModelConfig::qwen2_1_5b();
//! // Table 2: Qwen2-1.5B stores 28672 bytes of KV cache per token.
//! assert_eq!(model.kv_bytes_per_token(), 28672);
//!
//! let ds = DatasetConfig::industry();
//! assert_eq!(ds.num_items, 1_000_000);
//! ```

pub mod cluster;
pub mod dataset;
pub mod error;
pub mod fnv;
pub mod id;
pub mod model;
pub mod request;
pub mod slo;
pub mod units;

pub use cluster::{ClusterConfig, NodeConfig};
pub use dataset::DatasetConfig;
pub use error::BatError;
pub use id::{ItemId, NodeId, RequestId, UserId, WorkerId};
pub use model::ModelConfig;
pub use request::{PrefixKind, RankRequest};
pub use slo::{Priority, RejectReason, SloBudget};
pub use units::{Bytes, SimTime, TokenCount};
