//! Ranking requests and prefix selection.
//!
//! A [`RankRequest`] is what the retrieval stage hands to the ranking stage:
//! a user plus ~100 candidate items (§2.2), stamped with an arrival time.
//! [`PrefixKind`] is the decision Bipartite Attention introduces: which token
//! block — the user profile or the candidate items — is treated as the
//! cacheable prompt prefix.

use crate::id::{ItemId, RequestId, UserId};
use crate::slo::SloBudget;
use crate::units::{SimTime, TokenCount};
use serde::{Deserialize, Serialize};

/// Which block of the prompt acts as the (cacheable) prefix.
///
/// The prompt for a ranking request contains three blocks: user profile
/// tokens `U`, candidate item tokens `I_1..I_N`, and instruction tokens.
/// Bipartite Attention (§4.2) allows either ordering:
///
/// * [`PrefixKind::User`]: `[U, I_1..I_N, Instr]` — the conventional layout;
///   only `U` can be cached, and only across the same user's requests.
/// * [`PrefixKind::Item`]: `[I_1..I_N, U, Instr]` — item KV entries are
///   cached independently (one entry per item) and shared across all users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefixKind {
    /// *User-as-prefix* attention (UP).
    User,
    /// *Item-as-prefix* attention (IP).
    Item,
}

impl PrefixKind {
    /// Short label used in experiment tables ("UP" / "IP").
    pub fn label(self) -> &'static str {
        match self {
            PrefixKind::User => "UP",
            PrefixKind::Item => "IP",
        }
    }
}

impl std::fmt::Display for PrefixKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One ranking request produced by the retrieval stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankRequest {
    /// Unique request identifier.
    pub id: RequestId,
    /// The requesting user.
    pub user: UserId,
    /// Number of tokens in this user's profile block.
    pub user_tokens: TokenCount,
    /// Retrieved candidate items, in retrieval order.
    pub candidates: Vec<ItemId>,
    /// Token count of each candidate (parallel to `candidates`).
    pub candidate_tokens: Vec<TokenCount>,
    /// System-instruction token count (never cacheable: it trails the
    /// prompt in both layouts).
    pub instruction_tokens: TokenCount,
    /// Arrival time of the request at the scheduler.
    pub arrival: SimTime,
    /// Latency contract (deadline + shedding priority). Defaults to
    /// best-effort so traces recorded before the overload control plane
    /// deserialize unchanged.
    #[serde(default)]
    pub slo: SloBudget,
}

impl RankRequest {
    /// Total item tokens in the prompt (`τ_i(r)` aggregated over candidates).
    #[inline]
    pub fn item_tokens(&self) -> TokenCount {
        self.candidate_tokens.iter().sum()
    }

    /// Total prompt length `T` = user + item + instruction tokens.
    #[inline]
    pub fn total_tokens(&self) -> TokenCount {
        self.user_tokens + self.item_tokens() + self.instruction_tokens
    }

    /// Validates internal consistency (candidate/token arity, non-empty
    /// candidate set).
    ///
    /// # Errors
    ///
    /// Returns [`crate::BatError::InvalidRequest`] if the candidate list is
    /// empty or the token list arity does not match.
    pub fn validate(&self) -> Result<(), crate::BatError> {
        if self.candidates.is_empty() {
            return Err(crate::BatError::InvalidRequest(
                "request has no candidate items".to_owned(),
            ));
        }
        if self.candidates.len() != self.candidate_tokens.len() {
            return Err(crate::BatError::InvalidRequest(format!(
                "candidate arity mismatch: {} ids vs {} token counts",
                self.candidates.len(),
                self.candidate_tokens.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankRequest {
        RankRequest {
            id: RequestId::new(1),
            user: UserId::new(7),
            user_tokens: 1500,
            candidates: vec![ItemId::new(1), ItemId::new(2)],
            candidate_tokens: vec![10, 12],
            instruction_tokens: 32,
            arrival: SimTime::ZERO,
            slo: SloBudget::default(),
        }
    }

    #[test]
    fn token_accounting() {
        let r = sample();
        assert_eq!(r.item_tokens(), 22);
        assert_eq!(r.total_tokens(), 1500 + 22 + 32);
    }

    #[test]
    fn validation_catches_arity_mismatch() {
        let mut r = sample();
        r.candidate_tokens.pop();
        assert!(r.validate().is_err());
        r.candidate_tokens.clear();
        r.candidates.clear();
        assert!(r.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn prefix_kind_labels() {
        assert_eq!(PrefixKind::User.label(), "UP");
        assert_eq!(PrefixKind::Item.to_string(), "IP");
    }
}
