//! Strongly-typed identifiers.
//!
//! The serving system moves four kinds of entities around: users, items,
//! requests, and cluster nodes/workers. Newtypes keep them from being mixed
//! up (a `UserId` can never be used where an `ItemId` is expected), at zero
//! runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            ///
            /// ```
            /// # use bat_types::id::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.as_u64(), 7);
            /// ```
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the raw value as a `usize` index (for dense tables).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a user in the recommendation system.
    UserId,
    "u"
);
define_id!(
    /// Identifier of an item in the recommendation corpus.
    ItemId,
    "i"
);
define_id!(
    /// Identifier of a single ranking request.
    RequestId,
    "r"
);
define_id!(
    /// Identifier of a physical machine in the cluster.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an inference or cache worker.
    WorkerId,
    "w"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_u64() {
        let u = UserId::new(42);
        assert_eq!(u64::from(u), 42);
        assert_eq!(UserId::from(42u64), u);
        assert_eq!(u.index(), 42usize);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(ItemId::new(3).to_string(), "i3");
        assert_eq!(RequestId::new(3).to_string(), "r3");
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(WorkerId::new(3).to_string(), "w3");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ItemId::new(1));
        set.insert(ItemId::new(1));
        set.insert(ItemId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ItemId::new(1) < ItemId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UserId::default(), UserId::new(0));
    }
}
