//! Measurement units used across the workspace.
//!
//! Three quantities flow through every layer of the system and are easy to
//! confuse when they are all bare numbers: byte counts (cache capacities,
//! KV entry sizes), token counts (prompt lengths, reuse accounting), and
//! simulated time. Each gets a newtype.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A byte count (cache capacity, KV entry size, transferred volume).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bytes(pub u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Bytes(raw)
    }

    /// Creates a byte count from kibibytes... no: the paper uses decimal
    /// GB/TB throughout (e.g. "287 GB for 1M items"), so we do too.
    #[inline]
    pub const fn from_gb(gb: u64) -> Self {
        Bytes(gb * 1_000_000_000)
    }

    /// Creates a byte count from decimal megabytes.
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the value in decimal gigabytes.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: never underflows below zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0 as f64;
        if v >= 1e12 {
            write!(f, "{:.2} TB", v / 1e12)
        } else if v >= 1e9 {
            write!(f, "{:.2} GB", v / 1e9)
        } else if v >= 1e6 {
            write!(f, "{:.2} MB", v / 1e6)
        } else if v >= 1e3 {
            write!(f, "{:.2} KB", v / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A count of prompt tokens.
pub type TokenCount = u32;

/// Simulated wall-clock time, in seconds since simulation start.
///
/// `SimTime` is a total order (it rejects NaN at construction) so it can be
/// used directly as the key of the event queue in `bat-sim`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative: simulated time always moves
    /// forward from zero.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time point from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Returns the time in seconds.
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Advances this time point by a duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the duration is NaN or negative.
    #[inline]
    pub fn advance(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction rejects NaN, so partial_cmp is always Some.
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Sub for SimTime {
    type Output = f64;
    /// Difference between two time points, in seconds.
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl Div<f64> for Bytes {
    type Output = f64;
    /// Divides a byte volume by a bandwidth (bytes/sec), yielding seconds.
    fn div(self, bandwidth: f64) -> f64 {
        self.0 as f64 / bandwidth
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::from_gb(2).as_u64(), 2_000_000_000);
        assert_eq!(Bytes::from_mb(3).as_u64(), 3_000_000);
        assert_eq!(Bytes::from_gb(1).to_string(), "1.00 GB");
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::new(2_500_000_000_000).to_string(), "2.50 TB");
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes::new(10);
        let b = Bytes::new(4);
        assert_eq!(a + b, Bytes::new(14));
        assert_eq!(a - b, Bytes::new(6));
        assert_eq!(a * 3, Bytes::new(30));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        let total: Bytes = [a, b].into_iter().sum();
        assert_eq!(total, Bytes::new(14));
    }

    #[test]
    fn bytes_over_bandwidth_gives_seconds() {
        // 20 GB over 20 GB/s => 1 second.
        let t = Bytes::from_gb(20) / 20e9;
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simtime_ordering_and_advance() {
        let t0 = SimTime::ZERO;
        let t1 = t0.advance(1.5);
        assert!(t1 > t0);
        assert_eq!(t1.as_millis(), 1500.0);
        assert!((t1 - t0 - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_millis(250.0).as_secs(), 0.25);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn simtime_rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn simtime_rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }
}
