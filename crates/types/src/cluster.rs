//! Cluster hardware descriptions.
//!
//! The paper evaluates on two testbeds (§6.1): a 4-node cluster (one 40GB
//! A100 per node, 200GB host memory, 100Gbps network) and a 16-node
//! production cluster (one H20 per node, 500GB host memory, 200Gbps).
//! [`ClusterConfig`] captures the knobs the serving simulator needs.

use crate::units::Bytes;
use serde::{Deserialize, Serialize};

/// Hardware description of one node: one inference worker (GPU) plus one
/// KV cache worker (host memory pool), as deployed in §6.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Peak GPU FP16 throughput in FLOP/s (A100 ≈ 312e12).
    pub gpu_peak_flops: f64,
    /// Fraction of peak sustained on prefill GEMMs (MFU); 0.45 is typical
    /// for dense prefill on A100-class parts.
    pub gpu_efficiency: f64,
    /// Host→GPU interconnect bandwidth in bytes/s (PCIe 3.0 x16 ≈ 16e9,
    /// PCIe 4.0 x16 ≈ 20e9 usable). Used when loading prefix KV caches from
    /// the local CPU pool (§3.2).
    pub pcie_bandwidth: f64,
    /// Inter-node network bandwidth in bytes/s (100Gbps ≈ 12.5e9).
    pub network_bandwidth: f64,
    /// Host memory the KV cache worker may use for cached KV entries.
    pub kv_cache_capacity: Bytes,
}

impl NodeConfig {
    /// A node of the paper's 4-node A100 testbed (§6.1): 40GB A100 on PCIe
    /// 3.0 x16, 100Gbps network, 150GB of the 200GB host memory given to the
    /// KV cache (the allocation used in §6.4).
    pub fn a100_testbed() -> Self {
        NodeConfig {
            gpu_peak_flops: 312e12,
            gpu_efficiency: 0.45,
            pcie_bandwidth: 16e9,
            network_bandwidth: 12.5e9,
            kv_cache_capacity: Bytes::from_gb(150),
        }
    }

    /// A node of the 16-node H20 production testbed (§6.1): H20 (~148 TFLOPS
    /// dense FP16), 200Gbps network, 400GB of the 500GB host memory for KV.
    pub fn h20_production() -> Self {
        NodeConfig {
            gpu_peak_flops: 148e12,
            gpu_efficiency: 0.5,
            pcie_bandwidth: 25e9,
            network_bandwidth: 25e9,
            kv_cache_capacity: Bytes::from_gb(400),
        }
    }

    /// Effective sustained GPU throughput in FLOP/s.
    #[inline]
    pub fn effective_flops(&self) -> f64 {
        self.gpu_peak_flops * self.gpu_efficiency
    }

    /// Overrides the inter-node bandwidth, e.g. for the 10Gbps vs 100Gbps
    /// comparison of Figure 7.
    pub fn with_network_gbps(mut self, gbps: f64) -> Self {
        self.network_bandwidth = gbps * 1e9 / 8.0;
        self
    }

    /// Overrides the KV cache capacity.
    pub fn with_kv_capacity(mut self, capacity: Bytes) -> Self {
        self.kv_cache_capacity = capacity;
        self
    }
}

/// A homogeneous cluster of [`NodeConfig`] nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes; each runs one inference worker and one cache worker.
    pub num_nodes: usize,
    /// Per-node hardware.
    pub node: NodeConfig,
    /// Maximum batched tokens per inference step (§5.1 enforces a
    /// *max-batched-tokens* limit, e.g. 4000, to meet the latency SLA).
    pub max_batched_tokens: u32,
    /// Communication/computation tolerance `α` of Algorithm 1.
    pub alpha: f64,
}

impl ClusterConfig {
    /// The paper's main 4-node A100 testbed.
    pub fn a100_4node() -> Self {
        ClusterConfig {
            num_nodes: 4,
            node: NodeConfig::a100_testbed(),
            max_batched_tokens: 4000,
            alpha: 0.01,
        }
    }

    /// The 16-node H20 production testbed (§6.6).
    pub fn h20_16node() -> Self {
        ClusterConfig {
            num_nodes: 16,
            node: NodeConfig::h20_production(),
            max_batched_tokens: 4000,
            alpha: 0.01,
        }
    }

    /// Resizes the cluster (Figure 11 sweeps 1..16 nodes).
    pub fn with_nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "cluster must have at least one node");
        self.num_nodes = n;
        self
    }

    /// Total KV cache capacity across all cache workers.
    pub fn total_kv_capacity(&self) -> Bytes {
        self.node.kv_cache_capacity * self.num_nodes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_presets_are_sane() {
        let c = ClusterConfig::a100_4node();
        assert_eq!(c.num_nodes, 4);
        assert!(c.node.effective_flops() > 1e14);
        assert_eq!(c.total_kv_capacity(), Bytes::from_gb(600));

        let p = ClusterConfig::h20_16node();
        assert_eq!(p.num_nodes, 16);
        assert_eq!(p.total_kv_capacity(), Bytes::from_gb(6400));
    }

    #[test]
    fn network_override_converts_gbps_to_bytes() {
        let n = NodeConfig::a100_testbed().with_network_gbps(10.0);
        assert!((n.network_bandwidth - 1.25e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        let _ = ClusterConfig::a100_4node().with_nodes(0);
    }
}
