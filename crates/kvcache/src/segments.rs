//! Materialized packed-segment storage over the paged pool.
//!
//! The accounting layers in this crate track KV entries by bytes alone; the
//! actual floats live in [`bat_model::KvSegment`]. [`SegmentStore`] joins
//! the two: it holds real segments **in their canonical transposed-packed
//! form** — exactly the layout every forward pass consumes zero-copy — and
//! charges a [`PagedPool`] for the bytes the packed planes actually keep
//! resident ([`bat_model::KvSegment::packed_bytes`]). A cached prefix is
//! therefore packed exactly once, when it is computed; storing it, serving
//! it, and splicing it into a forward never reshapes the data again.

use crate::meta::CacheKey;
use crate::pool::PagedPool;
use bat_model::KvSegment;
use bat_types::Bytes;
use std::collections::HashMap;

/// A pool-accounted store of packed KV segments.
///
/// ```
/// use bat_kvcache::{CacheKey, SegmentStore};
/// use bat_model::KvSegment;
/// use bat_types::{Bytes, UserId};
///
/// let mut store = SegmentStore::new(Bytes::new(1 << 20), 4096);
/// let mut seg = KvSegment::empty(2, 4);
/// seg.segs.push(bat_model::SegTag::User);
/// seg.pos.push(0);
/// for l in &mut seg.layers {
///     l.push(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
/// }
/// let key = CacheKey::User(UserId::new(7));
/// assert!(store.insert(key, seg));
/// assert_eq!(store.get(key).unwrap().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentStore {
    pool: PagedPool,
    segments: HashMap<CacheKey, KvSegment>,
}

impl SegmentStore {
    /// A store over `capacity` bytes carved into `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(capacity: Bytes, page_bytes: u64) -> Self {
        SegmentStore {
            pool: PagedPool::new(capacity, page_bytes),
            segments: HashMap::new(),
        }
    }

    /// Bytes the packed segment keeps resident — what the pool is charged.
    pub fn charge_for(seg: &KvSegment) -> Bytes {
        Bytes::new(seg.packed_bytes() as u64)
    }

    /// Inserts a segment, charging the pool for its packed resident bytes
    /// (rounded up to whole pages). Returns `false` — storing nothing — if
    /// the key is already present or the segment does not fit.
    ///
    /// Segments cloned out of a forward's output are already compacted
    /// (plane capacity == length), so the charge equals the packed payload
    /// plus per-token metadata.
    pub fn insert(&mut self, key: CacheKey, seg: KvSegment) -> bool {
        if !self.pool.alloc(key, Self::charge_for(&seg)) {
            return false;
        }
        self.segments.insert(key, seg);
        true
    }

    /// The stored segment, ready for zero-copy splicing into a forward.
    pub fn get(&self, key: CacheKey) -> Option<&KvSegment> {
        self.segments.get(&key)
    }

    /// Removes a segment, releasing its pages.
    pub fn remove(&mut self, key: CacheKey) -> Option<KvSegment> {
        let seg = self.segments.remove(&key)?;
        self.pool.free(key);
        Some(seg)
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.segments.contains_key(&key)
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Bytes currently allocated (whole pages).
    pub fn used(&self) -> Bytes {
        self.pool.used()
    }

    /// Free capacity (whole pages).
    pub fn free_bytes(&self) -> Bytes {
        self.pool.free_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::{ItemId, UserId};

    fn seg_with(layers: usize, kv_dim: usize, tokens: usize) -> KvSegment {
        let mut seg = KvSegment::empty(layers, kv_dim);
        for t in 0..tokens {
            seg.segs.push(bat_model::SegTag::User);
            seg.pos.push(t as u32);
        }
        for l in &mut seg.layers {
            for t in 0..tokens {
                let col: Vec<f32> = (0..kv_dim).map(|c| (t * kv_dim + c) as f32).collect();
                l.push(&col, &col);
            }
        }
        seg
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut store = SegmentStore::new(Bytes::new(1 << 16), 256);
        let seg = seg_with(2, 4, 5).clone(); // clone compacts plane capacity
        let key = CacheKey::Item(ItemId::new(3));
        let charge = SegmentStore::charge_for(&seg);
        assert!(charge.as_u64() >= (2 * 2 * 4 * 5 * 4) as u64);
        assert!(store.insert(key, seg.clone()));
        assert!(!store.insert(key, seg.clone()), "duplicate rejected");
        assert_eq!(
            store.get(key).unwrap().layers[0].key(2),
            seg.layers[0].key(2)
        );
        assert!(store.used().as_u64() >= charge.as_u64());
        let back = store.remove(key).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(store.used(), Bytes::ZERO);
        assert!(store.remove(key).is_none(), "double remove is a no-op");
    }

    #[test]
    fn rejects_when_full_and_frees_make_room() {
        let seg = seg_with(1, 8, 16); // 2 planes blocks × 8×16×4B = 1 KiB packed
        let charge = SegmentStore::charge_for(&seg).as_u64();
        let mut store = SegmentStore::new(Bytes::new(charge.div_ceil(256) * 256), 256);
        assert!(store.insert(CacheKey::User(UserId::new(1)), seg.clone()));
        assert!(
            !store.insert(CacheKey::User(UserId::new(2)), seg.clone()),
            "second segment must not fit"
        );
        store.remove(CacheKey::User(UserId::new(1)));
        assert!(store.insert(CacheKey::User(UserId::new(2)), seg));
    }

    /// The charge follows the packed layout: a compacted clone of an
    /// over-reserved segment is charged less.
    #[test]
    fn charge_tracks_packed_residency() {
        let mut seg = seg_with(1, 4, 3);
        let compact = seg.clone(); // ColBlock::clone compacts capacity
        for l in &mut seg.layers {
            l.reserve(100);
        }
        assert!(SegmentStore::charge_for(&seg) > SegmentStore::charge_for(&compact));
    }
}
