//! The user-prefix cache region of the disaggregated pool.
//!
//! Two admission/replacement disciplines back the paper's comparisons:
//!
//! * **plain LRU** ([`UserCache::admit_lru`]) — what the UP baseline and the
//!   cache-agnostic scheduler use (§3.3.2, §5.3): always admit, evicting the
//!   least-recently-used entries until the new one fits;
//! * **hotness-aware** ([`UserCache::admit_if_hotter`]) — BAT's rule (§5.3):
//!   admit only if the incoming user's window frequency exceeds the
//!   frequency of the coldest cached users (`f_u(r) > min_{p∈C_u} f_p`),
//!   evicting those colder entries; otherwise reject, leaving the request to
//!   fall back to Item-as-prefix.
//!
//! The min-frequency lookup uses Redis-style deterministic sampling (the
//! paper's meta service maintains hotness asynchronously; an exact global
//! minimum over ~10⁵ decaying counters would be needlessly expensive).

use crate::hotness::FreqEstimator;
use crate::lru::LruIndex;
use bat_types::{Bytes, UserId};
use std::collections::{HashMap, HashSet};

/// Configuration of the user-prefix region.
#[derive(Debug, Clone)]
pub struct UserCacheConfig {
    /// Capacity in bytes.
    pub capacity: Bytes,
    /// Sliding window `W` of the frequency estimator, seconds.
    pub freq_window_secs: f64,
    /// Sample size for the approximate min-frequency search.
    pub min_freq_sample: usize,
    /// Page size of the PagedAttention-compatible allocator (§5.1): entry
    /// footprints round up to whole pages. The default matches vLLM-style
    /// 16-token pages of a Qwen2-1.5B KV layout (16 × 28 672 B).
    pub page_bytes: u64,
}

impl Default for UserCacheConfig {
    fn default() -> Self {
        UserCacheConfig {
            capacity: Bytes::from_gb(100),
            freq_window_secs: 300.0,
            min_freq_sample: 8,
            page_bytes: 16 * 28_672,
        }
    }
}

/// Result of an admission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The entry was cached; `evicted` lists the entries displaced.
    Admitted {
        /// Users whose entries were evicted to make room.
        evicted: Vec<UserId>,
    },
    /// The entry was not cached (too cold, or larger than the region).
    Rejected,
}

impl AdmitOutcome {
    /// Whether the entry was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmitOutcome::Admitted { .. })
    }
}

/// The user-prefix cache region.
///
/// ```
/// use bat_kvcache::{UserCache, UserCacheConfig};
/// use bat_types::{Bytes, UserId};
///
/// let mut cache = UserCache::new(UserCacheConfig::default());
/// let user = UserId::new(7);
/// cache.record_access(user, 0.0);
/// assert!(cache.lookup(user, 0.0).is_none(), "not yet admitted");
/// assert!(cache.admit_lru(user, Bytes::from_mb(29)).is_admitted());
/// assert!(cache.lookup(user, 1.0).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct UserCache {
    cfg: UserCacheConfig,
    used: Bytes,
    entries: HashMap<UserId, Bytes>,
    lru: LruIndex<UserId>,
    freq: FreqEstimator<UserId>,
    /// Dense key list + back-index for O(1) deterministic sampling.
    keys: Vec<UserId>,
    key_idx: HashMap<UserId, usize>,
    rng_state: u64,
}

impl UserCache {
    /// Creates an empty region.
    pub fn new(cfg: UserCacheConfig) -> Self {
        assert!(cfg.page_bytes > 0, "page size must be positive");
        UserCache {
            freq: FreqEstimator::new(cfg.freq_window_secs),
            cfg,
            used: Bytes::ZERO,
            entries: HashMap::new(),
            lru: LruIndex::new(),
            keys: Vec::new(),
            key_idx: HashMap::new(),
            rng_state: 0x5eed_5eed_5eed_5eed,
        }
    }

    /// Records a request by `user` at `now`, updating the frequency
    /// estimate. Call for **every** request, hit or miss — the meta service
    /// tracks hotness independently of cache residency (§5.1).
    pub fn record_access(&mut self, user: UserId, now: f64) -> f64 {
        self.freq.record(user, now)
    }

    /// Cache lookup: on hit, touches the LRU stamp and returns the entry
    /// size.
    pub fn lookup(&mut self, user: UserId, _now: f64) -> Option<Bytes> {
        let bytes = *self.entries.get(&user)?;
        self.lru.touch(user);
        Some(bytes)
    }

    /// Whether `user` is cached (no LRU side effect).
    pub fn contains(&self, user: UserId) -> bool {
        self.entries.contains_key(&user)
    }

    /// The page-rounded resident size of `user`'s entry, without touching
    /// the LRU stamp — what the meta service records for the entry.
    pub fn entry_bytes(&self, user: UserId) -> Option<Bytes> {
        self.entries.get(&user).copied()
    }

    /// The user's estimated requests-per-window at `now`.
    pub fn freq_per_window(&self, user: UserId, now: f64) -> f64 {
        self.freq.per_window(&user, now)
    }

    /// Bytes in use.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Region capacity.
    pub fn capacity(&self) -> Bytes {
        self.cfg.capacity
    }

    /// Number of cached users.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Plain-LRU admission: evicts least-recently-used entries until the new
    /// entry fits, then admits. Rejects only entries larger than the region.
    pub fn admit_lru(&mut self, user: UserId, bytes: Bytes) -> AdmitOutcome {
        let bytes = self.round_to_pages(bytes);
        if bytes > self.cfg.capacity {
            return AdmitOutcome::Rejected;
        }
        if self.entries.contains_key(&user) {
            self.lru.touch(user);
            return AdmitOutcome::Admitted { evicted: vec![] };
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.cfg.capacity {
            let victim = self
                .lru
                .pop_lru()
                .expect("used > 0 implies a cached entry exists");
            self.remove_entry(victim);
            evicted.push(victim);
        }
        self.insert_entry(user, bytes);
        AdmitOutcome::Admitted { evicted }
    }

    /// Hotness-aware admission (§5.3): admits if the entry fits in free
    /// space, or if the incoming user's window frequency strictly exceeds
    /// the (sampled) minimum frequency of cached users — evicting those
    /// colder entries. Otherwise rejects.
    pub fn admit_if_hotter(&mut self, user: UserId, bytes: Bytes, now: f64) -> AdmitOutcome {
        let bytes = self.round_to_pages(bytes);
        if bytes > self.cfg.capacity {
            return AdmitOutcome::Rejected;
        }
        if self.entries.contains_key(&user) {
            self.lru.touch(user);
            return AdmitOutcome::Admitted { evicted: vec![] };
        }
        let incoming = self.freq.per_window(&user, now);
        let mut victims: Vec<UserId> = Vec::new();
        let mut marked: HashSet<UserId> = HashSet::new();
        let mut freed = self.cfg.capacity.saturating_sub(self.used);
        while freed < bytes {
            let Some((victim, victim_freq)) = self.sampled_min_freq(now, &marked) else {
                return AdmitOutcome::Rejected;
            };
            if victim_freq >= incoming {
                // The coldest cached users are still at least as hot as the
                // incoming one: do not pollute the cache (§5.3).
                return AdmitOutcome::Rejected;
            }
            freed += self.entries[&victim];
            marked.insert(victim);
            victims.push(victim);
        }
        for &v in &victims {
            self.remove_entry(v);
        }
        self.insert_entry(user, bytes);
        AdmitOutcome::Admitted { evicted: victims }
    }

    /// The (sampled) coldest cached user and its window frequency at `now`,
    /// the `min_{p∈C_u} f_p` term of the paper's scheduling rule. `None` if
    /// the region is empty.
    pub fn min_cached_freq(&mut self, now: f64) -> Option<(UserId, f64)> {
        self.sampled_min_freq(now, &HashSet::new())
    }

    /// Invalidates every entry resident on cache worker
    /// `worker_index` of `num_workers`, under the pool's static partition
    /// (user id modulo worker count). This is what the meta service does
    /// when a cache worker drops out of the membership view: its entries
    /// are unreachable and must not count as cached.
    ///
    /// Returns `(entries, bytes)` invalidated. Deterministic regardless of
    /// hash-map iteration order.
    ///
    /// # Panics
    ///
    /// Panics if `worker_index >= num_workers` or `num_workers == 0`.
    pub fn invalidate_partition(
        &mut self,
        worker_index: usize,
        num_workers: usize,
    ) -> (u64, Bytes) {
        assert!(num_workers > 0, "pool needs at least one worker");
        assert!(worker_index < num_workers, "worker index out of range");
        let mut victims: Vec<UserId> = self
            .entries
            .keys()
            .filter(|u| u.as_u64() % num_workers as u64 == worker_index as u64)
            .copied()
            .collect();
        victims.sort_unstable();
        let mut bytes = Bytes::ZERO;
        for &user in &victims {
            bytes += self.entries[&user];
            self.remove_entry(user);
        }
        (victims.len() as u64, bytes)
    }

    /// Removes a user's entry explicitly; returns whether it was present.
    pub fn remove(&mut self, user: UserId) -> bool {
        if self.entries.contains_key(&user) {
            self.remove_entry(user);
            true
        } else {
            false
        }
    }

    fn insert_entry(&mut self, user: UserId, bytes: Bytes) {
        let bytes = self.round_to_pages(bytes);
        self.entries.insert(user, bytes);
        self.used += bytes;
        self.lru.touch(user);
        self.key_idx.insert(user, self.keys.len());
        self.keys.push(user);
    }

    /// Rounds an entry footprint up to whole pages (PagedAttention layout).
    fn round_to_pages(&self, bytes: Bytes) -> Bytes {
        Bytes::new(bytes.as_u64().div_ceil(self.cfg.page_bytes) * self.cfg.page_bytes)
    }

    fn remove_entry(&mut self, user: UserId) {
        if let Some(bytes) = self.entries.remove(&user) {
            self.used -= bytes;
        }
        self.lru.remove(&user);
        if let Some(idx) = self.key_idx.remove(&user) {
            let last = self.keys.len() - 1;
            self.keys.swap(idx, last);
            self.keys.pop();
            if idx < self.keys.len() {
                self.key_idx.insert(self.keys[idx], idx);
            }
        }
    }

    /// Deterministic sampled minimum over cached users' frequencies,
    /// skipping `exclude`. Scans everything when the region is small.
    fn sampled_min_freq(&mut self, now: f64, exclude: &HashSet<UserId>) -> Option<(UserId, f64)> {
        let live = self.keys.len().saturating_sub(exclude.len());
        if live == 0 {
            return None;
        }
        let mut best: Option<(UserId, f64)> = None;
        let consider = |cache: &UserCache, u: UserId, best: &mut Option<(UserId, f64)>| {
            let f = cache.freq.per_window(&u, now);
            if best.is_none_or(|(_, bf)| f < bf) {
                *best = Some((u, f));
            }
        };
        if live <= self.cfg.min_freq_sample * 2 {
            let keys: Vec<UserId> = self
                .keys
                .iter()
                .copied()
                .filter(|u| !exclude.contains(u))
                .collect();
            for u in keys {
                consider(self, u, &mut best);
            }
            return best;
        }
        let mut found = 0usize;
        let mut attempts = 0usize;
        while found < self.cfg.min_freq_sample && attempts < self.cfg.min_freq_sample * 8 {
            attempts += 1;
            // xorshift64* — deterministic, dependency-free.
            self.rng_state ^= self.rng_state >> 12;
            self.rng_state ^= self.rng_state << 25;
            self.rng_state ^= self.rng_state >> 27;
            let r = self.rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let u = self.keys[(r % self.keys.len() as u64) as usize];
            if exclude.contains(&u) {
                continue;
            }
            found += 1;
            consider(self, u, &mut best);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(i: u64) -> UserId {
        UserId::new(i)
    }

    fn cache(capacity: u64) -> UserCache {
        UserCache::new(UserCacheConfig {
            capacity: Bytes::new(capacity),
            freq_window_secs: 60.0,
            min_freq_sample: 4,
            page_bytes: 10,
        })
    }

    #[test]
    fn lru_admission_evicts_in_recency_order() {
        let mut c = cache(100);
        assert!(c.admit_lru(uid(1), Bytes::new(40)).is_admitted());
        assert!(c.admit_lru(uid(2), Bytes::new(40)).is_admitted());
        // Touch user 1 so user 2 becomes LRU.
        c.lookup(uid(1), 0.0);
        match c.admit_lru(uid(3), Bytes::new(40)) {
            AdmitOutcome::Admitted { evicted } => assert_eq!(evicted, vec![uid(2)]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(uid(1)) && c.contains(uid(3)) && !c.contains(uid(2)));
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = cache(100);
        assert_eq!(c.admit_lru(uid(1), Bytes::new(200)), AdmitOutcome::Rejected);
        assert_eq!(
            c.admit_if_hotter(uid(1), Bytes::new(200), 0.0),
            AdmitOutcome::Rejected
        );
    }

    #[test]
    fn hotter_user_displaces_colder() {
        let mut c = cache(100);
        // Cold user: one access long ago.
        c.record_access(uid(1), 0.0);
        assert!(c
            .admit_if_hotter(uid(1), Bytes::new(100), 0.0)
            .is_admitted());
        // Hot user: many recent accesses.
        for t in 0..20 {
            c.record_access(uid(2), 500.0 + t as f64);
        }
        let out = c.admit_if_hotter(uid(2), Bytes::new(100), 520.0);
        match out {
            AdmitOutcome::Admitted { evicted } => assert_eq!(evicted, vec![uid(1)]),
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn colder_user_is_rejected() {
        let mut c = cache(100);
        for t in 0..20 {
            c.record_access(uid(1), t as f64);
        }
        assert!(c
            .admit_if_hotter(uid(1), Bytes::new(100), 20.0)
            .is_admitted());
        // Newcomer with a single access is colder than the resident.
        c.record_access(uid(2), 21.0);
        assert_eq!(
            c.admit_if_hotter(uid(2), Bytes::new(50), 21.0),
            AdmitOutcome::Rejected
        );
        assert!(c.contains(uid(1)), "resident survives");
    }

    #[test]
    fn free_space_admits_without_eviction() {
        let mut c = cache(100);
        c.record_access(uid(1), 0.0);
        match c.admit_if_hotter(uid(1), Bytes::new(30), 0.0) {
            AdmitOutcome::Admitted { evicted } => assert!(evicted.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn readmission_is_idempotent() {
        let mut c = cache(100);
        assert!(c.admit_lru(uid(1), Bytes::new(50)).is_admitted());
        assert!(c.admit_lru(uid(1), Bytes::new(50)).is_admitted());
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), Bytes::new(50));
    }

    #[test]
    fn remove_releases_space() {
        let mut c = cache(100);
        c.admit_lru(uid(1), Bytes::new(60));
        assert!(c.remove(uid(1)));
        assert!(!c.remove(uid(1)));
        assert_eq!(c.used(), Bytes::ZERO);
        assert!(c.is_empty());
    }

    #[test]
    fn min_cached_freq_finds_coldest() {
        let mut c = cache(300);
        for t in 0..30 {
            c.record_access(uid(1), t as f64);
        }
        c.record_access(uid(2), 15.0);
        c.admit_lru(uid(1), Bytes::new(100));
        c.admit_lru(uid(2), Bytes::new(100));
        let (coldest, f) = c.min_cached_freq(30.0).unwrap();
        assert_eq!(coldest, uid(2));
        assert!(f < c.freq_per_window(uid(1), 30.0));
        // Empty cache has no minimum.
        assert!(cache(10).min_cached_freq(0.0).is_none());
    }

    #[test]
    fn entries_round_up_to_pages() {
        let mut c = UserCache::new(UserCacheConfig {
            capacity: Bytes::new(100),
            freq_window_secs: 60.0,
            min_freq_sample: 4,
            page_bytes: 16,
        });
        // 17 bytes occupies two 16-byte pages.
        assert!(c.admit_lru(uid(1), Bytes::new(17)).is_admitted());
        assert_eq!(c.used(), Bytes::new(32));
        assert_eq!(c.lookup(uid(1), 0.0), Some(Bytes::new(32)));
        // A 97-byte entry needs 7 pages = 112 > 100: rejected outright.
        assert_eq!(c.admit_lru(uid(2), Bytes::new(97)), AdmitOutcome::Rejected);
    }

    #[test]
    fn accounting_is_exact_under_churn() {
        let mut c = cache(500);
        for i in 0..100u64 {
            let t = i as f64;
            c.record_access(uid(i % 13), t);
            c.admit_lru(uid(i % 13), Bytes::new(10 + (i % 7) * 20));
            if i % 3 == 0 {
                c.remove(uid(i % 5));
            }
            let sum: Bytes = c.entries.values().copied().fold(Bytes::ZERO, |a, b| a + b);
            assert_eq!(sum, c.used());
            assert!(c.used() <= c.capacity());
            assert_eq!(c.keys.len(), c.entries.len());
        }
    }

    #[test]
    fn partition_invalidation_drops_exactly_the_dead_workers_users() {
        let mut c = cache(10_000);
        for i in 0..20u64 {
            assert!(c.admit_lru(uid(i), Bytes::new(10)).is_admitted());
        }
        // Worker 1 of 4 dies: users 1, 5, 9, 13, 17 are unreachable.
        let (entries, bytes) = c.invalidate_partition(1, 4);
        assert_eq!(entries, 5);
        assert_eq!(bytes, Bytes::new(50));
        for i in 0..20u64 {
            assert_eq!(c.contains(uid(i)), i % 4 != 1, "user {i}");
        }
        // Idempotent: nothing left on that partition.
        assert_eq!(c.invalidate_partition(1, 4), (0, Bytes::ZERO));
        assert_eq!(c.used(), Bytes::new(150));
    }
}
