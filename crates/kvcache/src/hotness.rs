//! The sliding-window access-frequency estimator (§5.3).
//!
//! The hotness-aware scheduler needs `f_u`, "how often a user issues
//! requests within a recent time window". The cache meta service "decays
//! its sliding-window frequency estimate" on each access and maintains the
//! statistics asynchronously.
//!
//! We implement the standard exponentially-decayed rate estimator: an
//! access at time `t` first decays the stored rate by `exp(-(t - last)/W)`
//! and then adds `1/W`. The estimate converges to the true arrival rate for
//! Poisson traffic and adapts within a window `W` — a faithful O(1)
//! realization of the paper's window metric.

use std::collections::HashMap;
use std::hash::Hash;

/// An exponentially-decayed rate estimator per key.
///
/// ```
/// use bat_kvcache::FreqEstimator;
///
/// let mut f = FreqEstimator::new(60.0);
/// for t in [0.0, 10.0, 20.0, 30.0] {
///     f.record("user", t);
/// }
/// // ~0.1 events/second, decaying while the key stays idle.
/// assert!(f.rate(&"user", 30.0) > f.rate(&"user", 300.0));
/// ```
#[derive(Debug, Clone)]
pub struct FreqEstimator<K> {
    window_secs: f64,
    state: HashMap<K, (f64, f64)>, // (rate, last_update)
}

impl<K: Hash + Eq + Clone> FreqEstimator<K> {
    /// Creates an estimator with the given window `W` in seconds (the paper
    /// evaluates W = 5 min and 60 min, Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive.
    pub fn new(window_secs: f64) -> Self {
        assert!(
            window_secs > 0.0 && window_secs.is_finite(),
            "window must be positive"
        );
        FreqEstimator {
            window_secs,
            state: HashMap::new(),
        }
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Records an access by `key` at time `now` (seconds) and returns the
    /// updated rate estimate (events/second).
    pub fn record(&mut self, key: K, now: f64) -> f64 {
        let entry = self.state.entry(key).or_insert((0.0, now));
        let dt = (now - entry.1).max(0.0);
        entry.0 = entry.0 * (-dt / self.window_secs).exp() + 1.0 / self.window_secs;
        entry.1 = now;
        entry.0
    }

    /// Current rate estimate for `key` at time `now`, decayed but without
    /// recording an access. Unknown keys rate 0.
    pub fn rate(&self, key: &K, now: f64) -> f64 {
        match self.state.get(key) {
            Some(&(rate, last)) => {
                let dt = (now - last).max(0.0);
                rate * (-dt / self.window_secs).exp()
            }
            None => 0.0,
        }
    }

    /// Estimated events *per window* (`rate × W`), the `f_u` quantity the
    /// scheduler compares.
    pub fn per_window(&self, key: &K, now: f64) -> f64 {
        self.rate(key, now) * self.window_secs
    }

    /// Drops a key's statistics (e.g. after cache eviction the paper keeps
    /// stats in the meta service, so calling this is optional).
    pub fn forget(&mut self, key: &K) {
        self.state.remove(key);
    }

    /// Iterates over the tracked keys (the background item refresh ranks
    /// them by current rate).
    pub fn iter_keys(&self) -> impl Iterator<Item = &K> {
        self.state.keys()
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }
}

/// The paper's window-similarity score (§5.3, Figure 4):
/// `1 − |f(t) − f(t−δ)| / (f(t) + f(t−δ))`, in `[0, 1]`, where 1 means the
/// two consecutive windows saw identical frequencies. Returns 1.0 when both
/// frequencies are zero (identically idle windows).
pub fn window_similarity(f_now: f64, f_prev: f64) -> f64 {
    let denom = f_now + f_prev;
    if denom <= 0.0 {
        return 1.0;
    }
    1.0 - (f_now - f_prev).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_converges_for_periodic_traffic() {
        let mut est = FreqEstimator::new(60.0);
        // One access every 2 seconds for 10 minutes → rate ≈ 0.5/s.
        let mut t = 0.0;
        let mut last = 0.0;
        while t < 600.0 {
            last = est.record("u", t);
            t += 2.0;
        }
        assert!(
            (last - 0.5).abs() < 0.05,
            "expected ≈0.5 events/s, got {last}"
        );
        assert!((est.per_window(&"u", t) - 30.0).abs() < 3.5);
    }

    #[test]
    fn rate_decays_when_idle() {
        let mut est = FreqEstimator::new(10.0);
        est.record("u", 0.0);
        let early = est.rate(&"u", 1.0);
        let late = est.rate(&"u", 50.0);
        assert!(early > late);
        assert!(late < 0.01 * early, "5 windows of idleness ≈ zero rate");
    }

    #[test]
    fn unknown_key_rates_zero() {
        let est: FreqEstimator<&str> = FreqEstimator::new(10.0);
        assert_eq!(est.rate(&"nobody", 5.0), 0.0);
    }

    #[test]
    fn forget_removes_state() {
        let mut est = FreqEstimator::new(10.0);
        est.record(1, 0.0);
        assert_eq!(est.len(), 1);
        est.forget(&1);
        assert!(est.is_empty());
        assert_eq!(est.rate(&1, 1.0), 0.0);
    }

    #[test]
    fn more_frequent_key_has_higher_rate() {
        let mut est = FreqEstimator::new(30.0);
        for i in 0..30 {
            est.record("hot", i as f64);
            if i % 10 == 0 {
                est.record("cold", i as f64);
            }
        }
        assert!(est.rate(&"hot", 30.0) > est.rate(&"cold", 30.0));
    }

    #[test]
    fn similarity_known_values() {
        assert_eq!(window_similarity(5.0, 5.0), 1.0);
        assert_eq!(window_similarity(0.0, 0.0), 1.0);
        assert_eq!(window_similarity(4.0, 0.0), 0.0);
        assert!((window_similarity(3.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _: FreqEstimator<u8> = FreqEstimator::new(0.0);
    }

    proptest! {
        /// Similarity is symmetric and within [0, 1].
        #[test]
        fn similarity_bounds(a in 0.0f64..1e6, b in 0.0f64..1e6) {
            let s = window_similarity(a, b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - window_similarity(b, a)).abs() < 1e-12);
        }

        /// Recording never produces a negative or NaN rate, and time-reversed
        /// queries (clock skew) are clamped rather than exploding.
        #[test]
        fn estimator_robust(times in proptest::collection::vec(0.0f64..1e4, 1..100)) {
            let mut est = FreqEstimator::new(60.0);
            for &t in &times {
                let r = est.record("k", t);
                prop_assert!(r.is_finite() && r >= 0.0);
            }
            // Query earlier than last update: decay clamps at dt = 0.
            let r = est.rate(&"k", 0.0);
            prop_assert!(r.is_finite() && r >= 0.0);
        }
    }
}
