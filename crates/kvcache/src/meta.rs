//! Cache entry identity at user/item granularity (§5.1).

use bat_types::{ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one logical KV entry in the disaggregated pool.
///
/// The paper stores KV entries at *user/item granularity*: "all prefix
/// tokens of a given user or item form one logical entry" (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheKey {
    /// A user-prefix entry.
    User(UserId),
    /// An item-prefix entry.
    Item(ItemId),
}

impl CacheKey {
    /// Whether this is a user-prefix entry.
    pub fn is_user(self) -> bool {
        matches!(self, CacheKey::User(_))
    }

    /// Whether this is an item-prefix entry.
    pub fn is_item(self) -> bool {
        matches!(self, CacheKey::Item(_))
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKey::User(u) => write!(f, "kv:{u}"),
            CacheKey::Item(i) => write!(f, "kv:{i}"),
        }
    }
}

impl From<UserId> for CacheKey {
    fn from(u: UserId) -> Self {
        CacheKey::User(u)
    }
}

impl From<ItemId> for CacheKey {
    fn from(i: ItemId) -> Self {
        CacheKey::Item(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_kinds() {
        let u: CacheKey = UserId::new(1).into();
        let i: CacheKey = ItemId::new(1).into();
        assert!(u.is_user() && !u.is_item());
        assert!(i.is_item() && !i.is_user());
        assert_ne!(u, i, "user and item entries never collide");
    }

    #[test]
    fn display_includes_kind_prefix() {
        assert_eq!(CacheKey::User(UserId::new(2)).to_string(), "kv:u2");
        assert_eq!(CacheKey::Item(ItemId::new(2)).to_string(), "kv:i2");
    }
}
