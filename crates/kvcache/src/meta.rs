//! Cache entry identity and the meta-service surface (§5.1).
//!
//! [`CacheKey`] names one logical KV entry; [`MetaIndex`] is the cache
//! meta service's behavioural contract — the index + hotness table that
//! tracks where every user/item entry lives. [`LocalMetaIndex`] is the
//! in-process single-node implementation; `bat-meta` provides a replicated
//! one behind the same trait, which is what lets the planner swap a
//! consensus-backed meta group in without touching cache logic.

use bat_types::{BatError, ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Identifier of one logical KV entry in the disaggregated pool.
///
/// The paper stores KV entries at *user/item granularity*: "all prefix
/// tokens of a given user or item form one logical entry" (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheKey {
    /// A user-prefix entry.
    User(UserId),
    /// An item-prefix entry.
    Item(ItemId),
}

impl CacheKey {
    /// Whether this is a user-prefix entry.
    pub fn is_user(self) -> bool {
        matches!(self, CacheKey::User(_))
    }

    /// Whether this is an item-prefix entry.
    pub fn is_item(self) -> bool {
        matches!(self, CacheKey::Item(_))
    }

    /// The user id, for user-prefix entries.
    pub fn as_user(self) -> Option<UserId> {
        match self {
            CacheKey::User(u) => Some(u),
            CacheKey::Item(_) => None,
        }
    }
}

impl fmt::Display for CacheKey {
    /// Renders `kv:u{id}` / `kv:i{id}` with the kind prefix emitted here,
    /// not inherited from the id type's own `Display` — so user and item
    /// entries can never collide textually even if the id formats change,
    /// and the string round-trips through [`CacheKey::from_str`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKey::User(u) => write!(f, "kv:u{}", u.as_u64()),
            CacheKey::Item(i) => write!(f, "kv:i{}", i.as_u64()),
        }
    }
}

impl FromStr for CacheKey {
    type Err = BatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = || BatError::InvalidRequest(format!("malformed cache key {s:?}"));
        let rest = s.strip_prefix("kv:").ok_or_else(invalid)?;
        let (kind, digits) = rest.split_at(rest.len().min(1));
        let id: u64 = digits.parse().map_err(|_| invalid())?;
        match kind {
            "u" => Ok(CacheKey::User(UserId::new(id))),
            "i" => Ok(CacheKey::Item(ItemId::new(id))),
            _ => Err(invalid()),
        }
    }
}

impl From<UserId> for CacheKey {
    fn from(u: UserId) -> Self {
        CacheKey::User(u)
    }
}

impl From<ItemId> for CacheKey {
    fn from(i: ItemId) -> Self {
        CacheKey::Item(i)
    }
}

/// Millisecond-quantized trace time, the hotness table's timestamp unit.
/// Quantizing keeps the table free of float state so replicated and local
/// indices agree bit-for-bit.
pub fn meta_time_ms(now_secs: f64) -> u64 {
    (now_secs * 1000.0).round() as u64
}

/// The cache meta service's behavioural contract: the authoritative index
/// of which KV entries exist (with their sizes) plus the hotness table and
/// the membership epoch of the view the index was built against.
///
/// Two implementations exist: [`LocalMetaIndex`] (single in-process node,
/// the seed behaviour) and `bat-meta`'s replicated client, which commits
/// every mutation through a leader-based command log. The planner drives
/// whichever it holds through this trait, so serving decisions cannot
/// depend on which one is wired in.
pub trait MetaIndex {
    /// Records that `key` now exists in the pool with `bytes` resident.
    fn register(&mut self, key: CacheKey, bytes: u64, now: f64);

    /// Removes `key` from the index (capacity eviction or invalidation).
    fn evict(&mut self, key: CacheKey, now: f64);

    /// Bumps `key`'s hotness: one more access at `now`.
    fn touch(&mut self, key: CacheKey, now: f64);

    /// Drops every *user* entry owned by the crashed worker
    /// (`user % num_workers == worker_index`), returning how many entries
    /// were invalidated. Item entries are HRCS-replicated and survive.
    fn drop_user_partition(&mut self, worker_index: usize, num_workers: usize, now: f64) -> u64;

    /// Notes that a worker rejoined (membership epoch advances; the index
    /// itself is unchanged — the worker rejoins empty).
    fn note_worker_restart(&mut self, worker_index: usize, now: f64);

    /// Whether `key` is currently indexed.
    fn contains(&self, key: CacheKey) -> bool;

    /// Number of indexed entries.
    fn num_entries(&self) -> usize;

    /// Total bytes the indexed entries hold.
    fn bytes_indexed(&self) -> u64;

    /// Membership epoch of the view this index reflects: bumps once per
    /// worker crash or restart routed through the index.
    fn view_epoch(&self) -> u64;

    /// Access count recorded for `key` (0 if never touched).
    fn hotness_count(&self, key: CacheKey) -> u64;

    /// Order-independent digest over index + hotness contents, for
    /// replica-agreement and fault-vs-fault-free identity checks.
    fn digest(&self) -> u64;
}

/// FNV-1a digest over the canonical (sorted) index + hotness contents.
/// Shared by every [`MetaIndex`] implementation so digests are comparable
/// across local and replicated backends.
pub fn meta_digest<'a>(
    index: impl Iterator<Item = (&'a CacheKey, &'a u64)>,
    hotness: impl Iterator<Item = (&'a CacheKey, &'a (u64, u64))>,
    view_epoch: u64,
) -> u64 {
    let mut h = bat_types::fnv::Fnv64::new();
    let mut mix = |v: u64| h.write_u64(v);
    let key_word = |k: &CacheKey| match *k {
        CacheKey::User(u) => u.as_u64() << 1,
        CacheKey::Item(i) => (i.as_u64() << 1) | 1,
    };
    for (k, bytes) in index {
        mix(key_word(k));
        mix(*bytes);
    }
    mix(u64::MAX); // section separator
    for (k, (count, last_ms)) in hotness {
        mix(key_word(k));
        mix(*count);
        mix(*last_ms);
    }
    mix(view_epoch);
    h.finish()
}

/// Single-node, in-process meta index: the behaviour every replicated
/// implementation must reproduce. Deterministic by construction (BTreeMap
/// ordering, millisecond-quantized timestamps).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalMetaIndex {
    index: BTreeMap<CacheKey, u64>,
    hotness: BTreeMap<CacheKey, (u64, u64)>,
    view_epoch: u64,
}

impl LocalMetaIndex {
    /// An empty index at view epoch 0.
    pub fn new() -> Self {
        LocalMetaIndex::default()
    }
}

impl MetaIndex for LocalMetaIndex {
    fn register(&mut self, key: CacheKey, bytes: u64, _now: f64) {
        self.index.insert(key, bytes);
    }

    fn evict(&mut self, key: CacheKey, _now: f64) {
        self.index.remove(&key);
    }

    fn touch(&mut self, key: CacheKey, now: f64) {
        let at = meta_time_ms(now);
        let slot = self.hotness.entry(key).or_insert((0, 0));
        slot.0 += 1;
        slot.1 = at;
    }

    fn drop_user_partition(&mut self, worker_index: usize, num_workers: usize, _now: f64) -> u64 {
        let victims: Vec<CacheKey> = self
            .index
            .keys()
            .filter(|k| {
                k.as_user()
                    .is_some_and(|u| u.as_u64() % num_workers as u64 == worker_index as u64)
            })
            .copied()
            .collect();
        for k in &victims {
            self.index.remove(k);
        }
        self.view_epoch += 1;
        victims.len() as u64
    }

    fn note_worker_restart(&mut self, _worker_index: usize, _now: f64) {
        self.view_epoch += 1;
    }

    fn contains(&self, key: CacheKey) -> bool {
        self.index.contains_key(&key)
    }

    fn num_entries(&self) -> usize {
        self.index.len()
    }

    fn bytes_indexed(&self) -> u64 {
        self.index.values().sum()
    }

    fn view_epoch(&self) -> u64 {
        self.view_epoch
    }

    fn hotness_count(&self, key: CacheKey) -> u64 {
        self.hotness.get(&key).map_or(0, |(c, _)| *c)
    }

    fn digest(&self) -> u64 {
        meta_digest(self.index.iter(), self.hotness.iter(), self.view_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_kinds() {
        let u: CacheKey = UserId::new(1).into();
        let i: CacheKey = ItemId::new(1).into();
        assert!(u.is_user() && !u.is_item());
        assert!(i.is_item() && !i.is_user());
        assert_ne!(u, i, "user and item entries never collide");
        assert_eq!(u.as_user(), Some(UserId::new(1)));
        assert_eq!(i.as_user(), None);
    }

    #[test]
    fn display_includes_kind_prefix() {
        assert_eq!(CacheKey::User(UserId::new(2)).to_string(), "kv:u2");
        assert_eq!(CacheKey::Item(ItemId::new(2)).to_string(), "kv:i2");
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for key in [
            CacheKey::User(UserId::new(0)),
            CacheKey::User(UserId::new(712)),
            CacheKey::Item(ItemId::new(712)),
            CacheKey::Item(ItemId::new(u64::MAX)),
        ] {
            let parsed: CacheKey = key.to_string().parse().unwrap();
            assert_eq!(parsed, key);
        }
    }

    #[test]
    fn from_str_rejects_malformed_keys() {
        for bad in [
            "", "kv:", "kv:x3", "kv:u", "kv:u-1", "kv:u3x", "u3", "kv:u 3",
        ] {
            assert!(bad.parse::<CacheKey>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn local_index_tracks_entries_hotness_and_epoch() {
        let mut m = LocalMetaIndex::new();
        let u2: CacheKey = UserId::new(2).into();
        let u5: CacheKey = UserId::new(5).into();
        let item: CacheKey = ItemId::new(2).into();

        m.register(u2, 100, 0.5);
        m.register(u5, 200, 0.6);
        m.register(item, 50, 0.7);
        m.touch(u2, 1.0);
        m.touch(u2, 2.0);
        assert_eq!(m.num_entries(), 3);
        assert_eq!(m.bytes_indexed(), 350);
        assert!(m.contains(u2));
        assert_eq!(m.hotness_count(u2), 2);
        assert_eq!(m.hotness_count(u5), 0);

        // Worker 2 of 3 owns users ≡ 2 (mod 3): u2 and u5. Item entries
        // survive the partition drop.
        let dropped = m.drop_user_partition(2, 3, 3.0);
        assert_eq!(dropped, 2);
        assert!(!m.contains(u2) && !m.contains(u5));
        assert!(m.contains(item));
        assert_eq!(m.view_epoch(), 1);

        m.note_worker_restart(2, 4.0);
        assert_eq!(m.view_epoch(), 2);
    }

    #[test]
    fn digest_reflects_contents() {
        let mut a = LocalMetaIndex::new();
        let mut b = LocalMetaIndex::new();
        assert_eq!(a.digest(), b.digest());
        a.register(UserId::new(1).into(), 10, 0.0);
        assert_ne!(a.digest(), b.digest());
        b.register(UserId::new(1).into(), 10, 9.0); // register time is not state
        assert_eq!(a.digest(), b.digest());
        a.touch(UserId::new(1).into(), 1.0);
        b.touch(UserId::new(1).into(), 1.0004); // same millisecond
        assert_eq!(a.digest(), b.digest());
        b.touch(UserId::new(1).into(), 2.0);
        assert_ne!(a.digest(), b.digest());
    }
}
