//! Fixed-size-page memory pool (PagedAttention-compatible, §5.1).
//!
//! KV entries are "physically organized into fixed-size pages compatible
//! with PagedAttention". The pool tracks page allocation per logical entry;
//! internal fragmentation (the tail of the last page) is therefore modeled
//! faithfully: an entry of `b` bytes consumes `ceil(b / page_bytes)` pages.

use crate::meta::CacheKey;
use bat_types::Bytes;
use std::collections::HashMap;

/// A paged allocator over a fixed capacity.
#[derive(Debug, Clone)]
pub struct PagedPool {
    page_bytes: u64,
    total_pages: u64,
    free_pages: u64,
    allocations: HashMap<CacheKey, u64>,
}

impl PagedPool {
    /// Creates a pool of `capacity` bytes carved into `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn new(capacity: Bytes, page_bytes: u64) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        let total_pages = capacity.as_u64() / page_bytes;
        PagedPool {
            page_bytes,
            total_pages,
            free_pages: total_pages,
            allocations: HashMap::new(),
        }
    }

    /// Pages needed for an entry of `bytes` bytes.
    #[inline]
    pub fn pages_for(&self, bytes: Bytes) -> u64 {
        bytes.as_u64().div_ceil(self.page_bytes)
    }

    /// Attempts to allocate an entry. Returns `false` (and allocates
    /// nothing) if the entry is already present or does not fit.
    pub fn alloc(&mut self, key: CacheKey, bytes: Bytes) -> bool {
        if self.allocations.contains_key(&key) {
            return false;
        }
        let pages = self.pages_for(bytes);
        if pages > self.free_pages {
            return false;
        }
        self.free_pages -= pages;
        self.allocations.insert(key, pages);
        true
    }

    /// Frees an entry, returning the number of pages released (0 if the key
    /// was not allocated).
    pub fn free(&mut self, key: CacheKey) -> u64 {
        match self.allocations.remove(&key) {
            Some(pages) => {
                self.free_pages += pages;
                pages
            }
            None => 0,
        }
    }

    /// Whether `key` is currently allocated.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.allocations.contains_key(&key)
    }

    /// Bytes currently allocated (in whole pages).
    pub fn used(&self) -> Bytes {
        Bytes::new((self.total_pages - self.free_pages) * self.page_bytes)
    }

    /// Free capacity (in whole pages).
    pub fn free_bytes(&self) -> Bytes {
        Bytes::new(self.free_pages * self.page_bytes)
    }

    /// Total capacity rounded down to whole pages.
    pub fn capacity(&self) -> Bytes {
        Bytes::new(self.total_pages * self.page_bytes)
    }

    /// Number of allocated entries.
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// Whether the pool has no allocations.
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::UserId;
    use proptest::prelude::*;

    fn key(i: u64) -> CacheKey {
        CacheKey::User(UserId::new(i))
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut p = PagedPool::new(Bytes::new(1000), 100);
        assert!(p.alloc(key(1), Bytes::new(250))); // 3 pages
        assert_eq!(p.used(), Bytes::new(300));
        assert_eq!(p.free(key(1)), 3);
        assert_eq!(p.used(), Bytes::ZERO);
        assert_eq!(p.free(key(1)), 0, "double free is a no-op");
    }

    #[test]
    fn rejects_duplicate_and_overflow() {
        let mut p = PagedPool::new(Bytes::new(1000), 100);
        assert!(p.alloc(key(1), Bytes::new(500)));
        assert!(!p.alloc(key(1), Bytes::new(100)), "duplicate rejected");
        assert!(!p.alloc(key(2), Bytes::new(600)), "overflow rejected");
        assert!(p.alloc(key(2), Bytes::new(500)));
        assert_eq!(p.free_bytes(), Bytes::ZERO);
    }

    #[test]
    fn internal_fragmentation_counted() {
        let mut p = PagedPool::new(Bytes::new(1000), 100);
        // 1 byte still takes a whole page.
        assert!(p.alloc(key(1), Bytes::new(1)));
        assert_eq!(p.used(), Bytes::new(100));
        assert_eq!(p.pages_for(Bytes::new(0)), 0);
        assert_eq!(p.pages_for(Bytes::new(100)), 1);
        assert_eq!(p.pages_for(Bytes::new(101)), 2);
    }

    #[test]
    fn capacity_rounds_down_to_pages() {
        let p = PagedPool::new(Bytes::new(1050), 100);
        assert_eq!(p.capacity(), Bytes::new(1000));
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_rejected() {
        let _ = PagedPool::new(Bytes::new(100), 0);
    }

    proptest! {
        /// Used + free always equals capacity; free never exceeds capacity.
        #[test]
        fn conservation(ops in proptest::collection::vec((0u64..20, 0u64..500), 1..60)) {
            let mut p = PagedPool::new(Bytes::new(2000), 64);
            for (k, b) in ops {
                if b % 2 == 0 {
                    let _ = p.alloc(key(k), Bytes::new(b));
                } else {
                    let _ = p.free(key(k));
                }
                prop_assert_eq!(p.used() + p.free_bytes(), p.capacity());
            }
        }
    }
}
