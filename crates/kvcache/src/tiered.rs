//! Two-tier user-prefix cache: DRAM + cold storage (§3.3.2 footnote).
//!
//! The paper stores KV caches in host memory and notes that "utilizing
//! cheap local/remote storage can achieve a larger cost-effective storage
//! space \[but\] might incur harmful access latency... we leave this for our
//! future exploration." This module explores it: a DRAM tier backed by a
//! larger, slower cold tier (NVMe or remote memory). Evictions from DRAM
//! *demote* to the cold tier instead of vanishing; cold hits *promote* back
//! (possibly demoting someone else), so the hierarchy behaves like a
//! classic inclusive-on-demotion two-level cache.
//!
//! The cold tier trades capacity for load latency — whether the trade wins
//! depends on the workload's reuse-distance distribution, which is exactly
//! what the `ablation_tiered_cache` harness measures.

use crate::lru::LruIndex;
use bat_types::{Bytes, UserId};
use std::collections::HashMap;

/// Which tier served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHit {
    /// Served from DRAM: PCIe-speed load.
    Dram,
    /// Served from the cold tier (and promoted): slow load.
    Cold,
}

/// Configuration of the two-tier cache.
#[derive(Debug, Clone)]
pub struct TieredConfig {
    /// DRAM tier capacity.
    pub dram_capacity: Bytes,
    /// Cold tier capacity (0 disables the cold tier).
    pub cold_capacity: Bytes,
}

/// A two-tier LRU user-prefix cache.
#[derive(Debug, Clone)]
pub struct TieredUserCache {
    cfg: TieredConfig,
    dram: HashMap<UserId, Bytes>,
    dram_lru: LruIndex<UserId>,
    dram_used: Bytes,
    cold: HashMap<UserId, Bytes>,
    cold_lru: LruIndex<UserId>,
    cold_used: Bytes,
}

impl TieredUserCache {
    /// Creates an empty two-tier cache.
    pub fn new(cfg: TieredConfig) -> Self {
        TieredUserCache {
            cfg,
            dram: HashMap::new(),
            dram_lru: LruIndex::new(),
            dram_used: Bytes::ZERO,
            cold: HashMap::new(),
            cold_lru: LruIndex::new(),
            cold_used: Bytes::ZERO,
        }
    }

    /// Bytes resident in DRAM.
    pub fn dram_used(&self) -> Bytes {
        self.dram_used
    }

    /// Bytes resident in the cold tier.
    pub fn cold_used(&self) -> Bytes {
        self.cold_used
    }

    /// Entries across both tiers.
    pub fn len(&self) -> usize {
        self.dram.len() + self.cold.len()
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.dram.is_empty() && self.cold.is_empty()
    }

    /// Looks up `user`; a cold hit promotes the entry to DRAM (demoting
    /// DRAM victims to the cold tier). Returns the entry size and the tier
    /// that served it.
    pub fn lookup(&mut self, user: UserId) -> Option<(Bytes, TierHit)> {
        if let Some(&bytes) = self.dram.get(&user) {
            self.dram_lru.touch(user);
            return Some((bytes, TierHit::Dram));
        }
        if let Some(&bytes) = self.cold.get(&user) {
            self.cold_remove(user);
            self.dram_insert(user, bytes);
            return Some((bytes, TierHit::Cold));
        }
        None
    }

    /// Admits a freshly computed entry into DRAM (LRU discipline), demoting
    /// DRAM victims to the cold tier. Entries larger than DRAM are not
    /// cached at all.
    pub fn admit(&mut self, user: UserId, bytes: Bytes) {
        if bytes > self.cfg.dram_capacity {
            return;
        }
        if self.dram.contains_key(&user) {
            self.dram_lru.touch(user);
            return;
        }
        // Re-admission from cold happens via lookup's promotion; an admit
        // for a cold-resident entry replaces it.
        if self.cold.contains_key(&user) {
            self.cold_remove(user);
        }
        self.dram_insert(user, bytes);
    }

    fn dram_insert(&mut self, user: UserId, bytes: Bytes) {
        while self.dram_used + bytes > self.cfg.dram_capacity {
            let victim = self
                .dram_lru
                .pop_lru()
                .expect("dram_used > 0 implies an entry");
            let victim_bytes = self.dram.remove(&victim).expect("lru tracks entries");
            self.dram_used -= victim_bytes;
            self.demote(victim, victim_bytes);
        }
        self.dram.insert(user, bytes);
        self.dram_used += bytes;
        self.dram_lru.touch(user);
    }

    fn demote(&mut self, user: UserId, bytes: Bytes) {
        if bytes > self.cfg.cold_capacity {
            return; // cold tier disabled or too small: entry is dropped
        }
        while self.cold_used + bytes > self.cfg.cold_capacity {
            let victim = self
                .cold_lru
                .pop_lru()
                .expect("cold_used > 0 implies an entry");
            let victim_bytes = self.cold.remove(&victim).expect("lru tracks entries");
            self.cold_used -= victim_bytes;
        }
        self.cold.insert(user, bytes);
        self.cold_used += bytes;
        self.cold_lru.touch(user);
    }

    fn cold_remove(&mut self, user: UserId) {
        if let Some(bytes) = self.cold.remove(&user) {
            self.cold_used -= bytes;
            self.cold_lru.remove(&user);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(i: u64) -> UserId {
        UserId::new(i)
    }

    fn cache(dram: u64, cold: u64) -> TieredUserCache {
        TieredUserCache::new(TieredConfig {
            dram_capacity: Bytes::new(dram),
            cold_capacity: Bytes::new(cold),
        })
    }

    #[test]
    fn dram_hit_then_demotion_then_cold_hit() {
        let mut c = cache(100, 200);
        c.admit(uid(1), Bytes::new(100));
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(100), TierHit::Dram)));
        // Admitting user 2 evicts user 1 to the cold tier.
        c.admit(uid(2), Bytes::new(100));
        assert_eq!(c.dram_used(), Bytes::new(100));
        assert_eq!(c.cold_used(), Bytes::new(100));
        // Cold hit promotes user 1 back, demoting user 2.
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(100), TierHit::Cold)));
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(100), TierHit::Dram)));
        assert_eq!(c.lookup(uid(2)), Some((Bytes::new(100), TierHit::Cold)));
    }

    #[test]
    fn cold_tier_disabled_drops_evictions() {
        let mut c = cache(100, 0);
        c.admit(uid(1), Bytes::new(100));
        c.admit(uid(2), Bytes::new(100));
        assert_eq!(c.lookup(uid(1)), None, "no cold tier: eviction is final");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cold_tier_evicts_lru_when_full() {
        let mut c = cache(100, 100);
        for i in 1..=3 {
            c.admit(uid(i), Bytes::new(100));
        }
        // Users 1 and 2 were demoted in order; cold holds only user 2.
        assert_eq!(c.lookup(uid(1)), None);
        assert_eq!(c.lookup(uid(2)), Some((Bytes::new(100), TierHit::Cold)));
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = cache(100, 100);
        c.admit(uid(1), Bytes::new(500));
        assert!(c.is_empty());
        assert_eq!(c.lookup(uid(1)), None);
    }

    #[test]
    fn accounting_stays_within_capacities() {
        let mut c = cache(250, 400);
        for i in 0..50u64 {
            c.admit(uid(i % 13), Bytes::new(40 + (i % 5) * 30));
            let _ = c.lookup(uid(i % 7));
            assert!(c.dram_used() <= Bytes::new(250));
            assert!(c.cold_used() <= Bytes::new(400));
            let dram_sum: u64 = c.dram.values().map(|b| b.as_u64()).sum();
            let cold_sum: u64 = c.cold.values().map(|b| b.as_u64()).sum();
            assert_eq!(dram_sum, c.dram_used().as_u64());
            assert_eq!(cold_sum, c.cold_used().as_u64());
        }
    }

    #[test]
    fn admit_replaces_cold_resident() {
        let mut c = cache(100, 100);
        c.admit(uid(1), Bytes::new(100));
        c.admit(uid(2), Bytes::new(100)); // demotes 1
        c.admit(uid(1), Bytes::new(80)); // fresh recompute replaces cold copy
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(80), TierHit::Dram)));
    }
}
