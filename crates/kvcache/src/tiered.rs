//! Two-tier KV cache accounting: DRAM + cold storage (§3.3.2 footnote).
//!
//! The paper stores KV caches in host memory and notes that "utilizing
//! cheap local/remote storage can achieve a larger cost-effective storage
//! space \[but\] might incur harmful access latency... we leave this for our
//! future exploration." This module explores it: a DRAM tier backed by a
//! larger, slower cold tier (NVMe or remote memory). Evictions from DRAM
//! *demote* to the cold tier instead of vanishing; cold hits *promote* back
//! (possibly demoting someone else), so the hierarchy behaves like a
//! classic inclusive-on-demotion two-level cache.
//!
//! [`TieredKvCache`] is the decision core: it is keyed by [`CacheKey`], so
//! user **and** item entries share one pool and one bookkeeping discipline
//! (the old `TieredUserCache` only modelled user entries, leaving item KV
//! outside tier accounting entirely), with the cold tier's budget split
//! per entry class so a partitioning controller can re-divide it online.
//! Every decision — hit, miss, admit, demotion, eviction, budget change —
//! is folded into an FNV-1a [`TieredKvCache::digest`]; the serve-side
//! `TieredKvPool` (crate `bat-tiers`) embeds this exact type for its
//! decisions, so oracle-vs-pool agreement is byte-for-byte by construction
//! and checked end-to-end by comparing digests.
//!
//! [`TieredUserCache`] remains as the user-only façade over the core
//! (item budget pinned to zero), preserving the original API for the
//! `ablation_tiered_cache` harness and older callers.
//!
//! The cold tier trades capacity for load latency — whether the trade wins
//! depends on the workload's reuse-distance distribution, which is exactly
//! what the `ablation_tiered_cache` and `ablation_tiers` harnesses measure.

use crate::lru::LruIndex;
use crate::meta::CacheKey;
use bat_types::{Bytes, UserId};
use std::collections::HashMap;

/// Which tier served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHit {
    /// Served from DRAM: PCIe-speed load.
    Dram,
    /// Served from the cold tier (and promoted): slow load.
    Cold,
}

/// Entry class a [`CacheKey`] belongs to — the axis the cold tier's budget
/// is partitioned along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryClass {
    /// User-prefix entries.
    User,
    /// Item-prefix entries.
    Item,
}

impl EntryClass {
    /// The class of a cache key.
    pub fn of(key: CacheKey) -> EntryClass {
        if key.is_user() {
            EntryClass::User
        } else {
            EntryClass::Item
        }
    }

    fn idx(self) -> usize {
        match self {
            EntryClass::User => 0,
            EntryClass::Item => 1,
        }
    }
}

/// Configuration of the two-tier user-prefix cache (legacy façade).
#[derive(Debug, Clone)]
pub struct TieredConfig {
    /// DRAM tier capacity.
    pub dram_capacity: Bytes,
    /// Cold tier capacity (0 disables the cold tier).
    pub cold_capacity: Bytes,
}

/// Configuration of the generalized two-tier cache.
#[derive(Debug, Clone)]
pub struct TieredKvConfig {
    /// DRAM tier capacity (shared by both classes, plain LRU).
    pub dram_capacity: Bytes,
    /// Cold-tier budget for user entries.
    pub cold_user_budget: Bytes,
    /// Cold-tier budget for item entries.
    pub cold_item_budget: Bytes,
}

/// Cumulative decision counters of a [`TieredKvCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Lookups served by DRAM.
    pub hot_hits: u64,
    /// Lookups served by the cold tier (promoting or not).
    pub cold_hits: u64,
    /// Lookups served by neither tier.
    pub misses: u64,
    /// Cold hits promoted back into DRAM.
    pub promotions: u64,
    /// DRAM victims demoted toward the cold tier.
    pub demotions: u64,
    /// Entries that left the cold tier without being promoted: LRU
    /// evictions, budget-shrink evictions, and demotions dropped because
    /// they exceed their class budget.
    pub cold_evictions: u64,
}

// FNV-1a via the shared `bat_types::fnv` module — the same digest family
// `RunStats::digest` uses: cheap, stable, and order-sensitive, so two
// caches agree iff their decision *sequences* agree, not just their totals.
use bat_types::fnv::Fnv64;

/// One cold-tier class region: its own map, recency order, and budget.
#[derive(Debug, Clone)]
struct ColdClass {
    map: HashMap<CacheKey, Bytes>,
    lru: LruIndex<CacheKey>,
    used: Bytes,
    budget: Bytes,
}

impl ColdClass {
    fn new(budget: Bytes) -> Self {
        ColdClass {
            map: HashMap::new(),
            lru: LruIndex::new(),
            used: Bytes::ZERO,
            budget,
        }
    }
}

/// A two-tier LRU cache over [`CacheKey`]s with a class-partitioned cold
/// tier and a decision digest.
///
/// This is accounting only — it tracks entry sizes and replacement
/// decisions, not payloads. The serve-side pool stores real quantized
/// blocks alongside, but routes **every** decision through an embedded
/// instance of this type, which is what makes the simulation oracle and
/// the real pool bitwise-comparable.
#[derive(Debug, Clone)]
pub struct TieredKvCache {
    dram_capacity: Bytes,
    dram: HashMap<CacheKey, Bytes>,
    dram_lru: LruIndex<CacheKey>,
    dram_used: Bytes,
    cold: [ColdClass; 2],
    counters: TierCounters,
    digest: Fnv64,
}

impl TieredKvCache {
    /// Creates an empty cache.
    pub fn new(cfg: TieredKvConfig) -> Self {
        TieredKvCache {
            dram_capacity: cfg.dram_capacity,
            dram: HashMap::new(),
            dram_lru: LruIndex::new(),
            dram_used: Bytes::ZERO,
            cold: [
                ColdClass::new(cfg.cold_user_budget),
                ColdClass::new(cfg.cold_item_budget),
            ],
            counters: TierCounters::default(),
            digest: Fnv64::new(),
        }
    }

    /// Bytes resident in DRAM.
    pub fn dram_used(&self) -> Bytes {
        self.dram_used
    }

    /// Bytes resident in the cold tier, both classes.
    pub fn cold_used(&self) -> Bytes {
        self.cold[0].used + self.cold[1].used
    }

    /// Bytes resident in one cold-tier class.
    pub fn cold_used_class(&self, class: EntryClass) -> Bytes {
        self.cold[class.idx()].used
    }

    /// Current cold-tier budget of one class.
    pub fn cold_budget(&self, class: EntryClass) -> Bytes {
        self.cold[class.idx()].budget
    }

    /// Entries across both tiers.
    pub fn len(&self) -> usize {
        self.dram.len() + self.cold[0].map.len() + self.cold[1].map.len()
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The decision counters so far.
    pub fn counters(&self) -> TierCounters {
        self.counters
    }

    /// FNV-1a digest of every decision taken so far. Two caches fed the
    /// same operation sequence hold the same digest; any divergence in a
    /// hit/miss/admit/demotion/eviction decision changes it.
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Whether `key` is resident in DRAM (no recency or counter effect).
    pub fn hot_contains(&self, key: CacheKey) -> bool {
        self.dram.contains_key(&key)
    }

    /// The cold-resident size of `key`, if any (no recency or counter
    /// effect) — the brownout ladder's "could we serve this from cold?"
    /// probe.
    pub fn cold_peek(&self, key: CacheKey) -> Option<Bytes> {
        self.cold[EntryClass::of(key).idx()].map.get(&key).copied()
    }

    /// Looks up `key`; a cold hit promotes the entry to DRAM (demoting
    /// DRAM victims to the cold tier). Returns the entry size and the tier
    /// that served it.
    pub fn lookup(&mut self, key: CacheKey) -> Option<(Bytes, TierHit)> {
        if let Some(&bytes) = self.dram.get(&key) {
            self.dram_lru.touch(key);
            self.counters.hot_hits += 1;
            self.fold_decision(1, key, 1, bytes);
            return Some((bytes, TierHit::Dram));
        }
        if let Some(bytes) = self.cold_remove(key) {
            self.counters.cold_hits += 1;
            self.counters.promotions += 1;
            self.fold_decision(1, key, 2, bytes);
            self.dram_insert(key, bytes);
            return Some((bytes, TierHit::Cold));
        }
        self.counters.misses += 1;
        self.fold_decision(1, key, 0, Bytes::ZERO);
        None
    }

    /// Serves `key` from the cold tier **without** promoting it — the
    /// brownout rung-2 path, which wants the bytes but must not shuffle
    /// tiers while the system is under pressure. Counts as a cold hit
    /// (or a miss) and refreshes the entry's cold recency.
    pub fn cold_serve(&mut self, key: CacheKey) -> Option<Bytes> {
        let class = &mut self.cold[EntryClass::of(key).idx()];
        match class.map.get(&key).copied() {
            Some(bytes) => {
                class.lru.touch(key);
                self.counters.cold_hits += 1;
                self.fold_decision(4, key, 1, bytes);
                Some(bytes)
            }
            None => {
                self.counters.misses += 1;
                self.fold_decision(4, key, 0, Bytes::ZERO);
                None
            }
        }
    }

    /// Admits a freshly computed entry into DRAM (LRU discipline), demoting
    /// DRAM victims to the cold tier. Entries larger than DRAM are not
    /// cached at all.
    pub fn admit(&mut self, key: CacheKey, bytes: Bytes) {
        if bytes > self.dram_capacity {
            self.fold_decision(2, key, 0, bytes);
            return;
        }
        if self.dram.contains_key(&key) {
            self.dram_lru.touch(key);
            self.fold_decision(2, key, 1, bytes);
            return;
        }
        // Re-admission from cold happens via lookup's promotion; an admit
        // for a cold-resident entry replaces it.
        let outcome = if self.cold_remove(key).is_some() {
            2
        } else {
            3
        };
        self.fold_decision(2, key, outcome, bytes);
        self.dram_insert(key, bytes);
    }

    /// Removes `key` from whichever tier holds it (partition invalidation,
    /// fault cleanup). Returns the freed size, if the key was resident.
    pub fn remove(&mut self, key: CacheKey) -> Option<Bytes> {
        if let Some(bytes) = self.dram.remove(&key) {
            self.dram_lru.remove(&key);
            self.dram_used -= bytes;
            self.fold_decision(3, key, 1, bytes);
            return Some(bytes);
        }
        if let Some(bytes) = self.cold_remove(key) {
            self.fold_decision(3, key, 2, bytes);
            return Some(bytes);
        }
        self.fold_decision(3, key, 0, Bytes::ZERO);
        None
    }

    /// Re-divides the cold tier's budget between the two classes (the
    /// partitioning controller's actuator). Shrinking a class below its
    /// occupancy evicts its LRU entries until it fits; the evicted keys are
    /// returned so a payload-carrying pool can drop its stored blocks.
    pub fn set_cold_budgets(&mut self, user: Bytes, item: Bytes) -> Vec<CacheKey> {
        self.fold(5);
        self.fold_u64(user.as_u64());
        self.fold_u64(item.as_u64());
        let mut victims = Vec::new();
        for (idx, budget) in [(0usize, user), (1usize, item)] {
            self.cold[idx].budget = budget;
            while self.cold[idx].used > budget {
                let victim = self.cold[idx]
                    .lru
                    .pop_lru()
                    .expect("cold used > 0 implies an entry");
                let bytes = self.cold[idx]
                    .map
                    .remove(&victim)
                    .expect("lru tracks entries");
                self.cold[idx].used -= bytes;
                self.counters.cold_evictions += 1;
                self.fold_decision(7, victim, 2, bytes);
                victims.push(victim);
            }
        }
        victims
    }

    /// Records a hit served by an *external* hot region (the planner's
    /// `UserCache`), when this cache only manages the cold side of the
    /// hierarchy. Keeps the ledger's conservation law and the decision
    /// digest covering the full lookup stream.
    pub fn note_hot_hit(&mut self, key: CacheKey, bytes: Bytes) {
        self.counters.hot_hits += 1;
        self.fold_decision(8, key, 1, bytes);
    }

    /// Removes `key` from the cold tier because an external hot region
    /// admitted it (the promotion half of a cold hit served through
    /// [`Self::cold_serve`]). Returns the cold-resident size, if any.
    pub fn promote_external(&mut self, key: CacheKey) -> Option<Bytes> {
        match self.cold_remove(key) {
            Some(bytes) => {
                self.counters.promotions += 1;
                self.fold_decision(9, key, 1, bytes);
                Some(bytes)
            }
            None => {
                self.fold_decision(9, key, 0, Bytes::ZERO);
                None
            }
        }
    }

    /// Demotes an entry evicted from an external hot region into the cold
    /// tier. Returns whether the entry entered cold, plus the keys its
    /// admission evicted (for payload cleanup).
    pub fn demote_external(&mut self, key: CacheKey, bytes: Bytes) -> (bool, Vec<CacheKey>) {
        self.counters.demotions += 1;
        self.demote(key, bytes)
    }

    /// Records an external hot-region eviction the admission policy chose
    /// *not* to demote (e.g. the entry's access rate is below the cold
    /// admission threshold). The entry is gone; the drop is part of the
    /// decision stream.
    pub fn drop_demotion(&mut self, key: CacheKey, bytes: Bytes) {
        self.counters.demotions += 1;
        self.counters.cold_evictions += 1;
        self.fold_decision(10, key, 0, bytes);
    }

    /// Panics if per-tier byte accounting diverged from the entry maps —
    /// the invariant the old field-poking tests asserted, now available to
    /// external callers (the integration suite runs it after every phase).
    pub fn check_invariants(&self) {
        let dram_sum: u64 = self.dram.values().map(|b| b.as_u64()).sum();
        assert_eq!(dram_sum, self.dram_used.as_u64(), "dram accounting drift");
        assert!(self.dram_used <= self.dram_capacity, "dram over capacity");
        for class in &self.cold {
            let sum: u64 = class.map.values().map(|b| b.as_u64()).sum();
            assert_eq!(sum, class.used.as_u64(), "cold accounting drift");
            assert!(class.used <= class.budget, "cold class over budget");
        }
    }

    fn dram_insert(&mut self, key: CacheKey, bytes: Bytes) {
        while self.dram_used + bytes > self.dram_capacity {
            let victim = self
                .dram_lru
                .pop_lru()
                .expect("dram_used > 0 implies an entry");
            let victim_bytes = self.dram.remove(&victim).expect("lru tracks entries");
            self.dram_used -= victim_bytes;
            self.counters.demotions += 1;
            let _ = self.demote(victim, victim_bytes);
        }
        self.dram.insert(key, bytes);
        self.dram_used += bytes;
        self.dram_lru.touch(key);
    }

    fn demote(&mut self, key: CacheKey, bytes: Bytes) -> (bool, Vec<CacheKey>) {
        let idx = EntryClass::of(key).idx();
        if bytes > self.cold[idx].budget {
            // Class region disabled or too small: the entry is dropped.
            self.counters.cold_evictions += 1;
            self.fold_decision(6, key, 0, bytes);
            return (false, Vec::new());
        }
        self.fold_decision(6, key, 1, bytes);
        let mut victims = Vec::new();
        while self.cold[idx].used + bytes > self.cold[idx].budget {
            let victim = self.cold[idx]
                .lru
                .pop_lru()
                .expect("cold used > 0 implies an entry");
            let victim_bytes = self.cold[idx]
                .map
                .remove(&victim)
                .expect("lru tracks entries");
            self.cold[idx].used -= victim_bytes;
            self.counters.cold_evictions += 1;
            self.fold_decision(7, victim, 1, victim_bytes);
            victims.push(victim);
        }
        self.cold[idx].map.insert(key, bytes);
        self.cold[idx].used += bytes;
        self.cold[idx].lru.touch(key);
        (true, victims)
    }

    fn cold_remove(&mut self, key: CacheKey) -> Option<Bytes> {
        let class = &mut self.cold[EntryClass::of(key).idx()];
        let bytes = class.map.remove(&key)?;
        class.used -= bytes;
        class.lru.remove(&key);
        Some(bytes)
    }

    #[inline]
    fn fold(&mut self, byte: u8) {
        self.digest.write_u8(byte);
    }

    #[inline]
    fn fold_u64(&mut self, v: u64) {
        self.digest.write_u64(v);
    }

    fn fold_decision(&mut self, op: u8, key: CacheKey, outcome: u8, bytes: Bytes) {
        self.fold(op);
        match key {
            CacheKey::User(u) => {
                self.fold(0);
                self.fold_u64(u.as_u64());
            }
            CacheKey::Item(i) => {
                self.fold(1);
                self.fold_u64(i.as_u64());
            }
        }
        self.fold(outcome);
        self.fold_u64(bytes.as_u64());
    }
}

/// A two-tier LRU user-prefix cache: the user-only façade over
/// [`TieredKvCache`] (item budget pinned to zero), preserving the original
/// API. Kept as the entry point for user-granularity studies and the
/// `ablation_tiered_cache` harness.
#[derive(Debug, Clone)]
pub struct TieredUserCache {
    inner: TieredKvCache,
}

impl TieredUserCache {
    /// Creates an empty two-tier cache.
    pub fn new(cfg: TieredConfig) -> Self {
        TieredUserCache {
            inner: TieredKvCache::new(TieredKvConfig {
                dram_capacity: cfg.dram_capacity,
                cold_user_budget: cfg.cold_capacity,
                cold_item_budget: Bytes::ZERO,
            }),
        }
    }

    /// Bytes resident in DRAM.
    pub fn dram_used(&self) -> Bytes {
        self.inner.dram_used()
    }

    /// Bytes resident in the cold tier.
    pub fn cold_used(&self) -> Bytes {
        self.inner.cold_used()
    }

    /// Entries across both tiers.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Looks up `user`; a cold hit promotes the entry to DRAM (demoting
    /// DRAM victims to the cold tier). Returns the entry size and the tier
    /// that served it.
    pub fn lookup(&mut self, user: UserId) -> Option<(Bytes, TierHit)> {
        self.inner.lookup(CacheKey::User(user))
    }

    /// Admits a freshly computed entry into DRAM (LRU discipline), demoting
    /// DRAM victims to the cold tier. Entries larger than DRAM are not
    /// cached at all.
    pub fn admit(&mut self, user: UserId, bytes: Bytes) {
        self.inner.admit(CacheKey::User(user), bytes)
    }

    /// The underlying generalized cache (decision counters and digest).
    pub fn core(&self) -> &TieredKvCache {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::ItemId;

    fn uid(i: u64) -> UserId {
        UserId::new(i)
    }

    fn ikey(i: u64) -> CacheKey {
        CacheKey::Item(ItemId::new(i))
    }

    fn ukey(i: u64) -> CacheKey {
        CacheKey::User(UserId::new(i))
    }

    fn cache(dram: u64, cold: u64) -> TieredUserCache {
        TieredUserCache::new(TieredConfig {
            dram_capacity: Bytes::new(dram),
            cold_capacity: Bytes::new(cold),
        })
    }

    fn kv_cache(dram: u64, user: u64, item: u64) -> TieredKvCache {
        TieredKvCache::new(TieredKvConfig {
            dram_capacity: Bytes::new(dram),
            cold_user_budget: Bytes::new(user),
            cold_item_budget: Bytes::new(item),
        })
    }

    #[test]
    fn dram_hit_then_demotion_then_cold_hit() {
        let mut c = cache(100, 200);
        c.admit(uid(1), Bytes::new(100));
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(100), TierHit::Dram)));
        // Admitting user 2 evicts user 1 to the cold tier.
        c.admit(uid(2), Bytes::new(100));
        assert_eq!(c.dram_used(), Bytes::new(100));
        assert_eq!(c.cold_used(), Bytes::new(100));
        // Cold hit promotes user 1 back, demoting user 2.
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(100), TierHit::Cold)));
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(100), TierHit::Dram)));
        assert_eq!(c.lookup(uid(2)), Some((Bytes::new(100), TierHit::Cold)));
        let n = c.core().counters();
        assert_eq!((n.hot_hits, n.cold_hits, n.promotions), (2, 2, 2));
        assert_eq!(n.demotions, 3);
    }

    #[test]
    fn cold_tier_disabled_drops_evictions() {
        let mut c = cache(100, 0);
        c.admit(uid(1), Bytes::new(100));
        c.admit(uid(2), Bytes::new(100));
        assert_eq!(c.lookup(uid(1)), None, "no cold tier: eviction is final");
        assert_eq!(c.len(), 1);
        assert_eq!(c.core().counters().cold_evictions, 1);
    }

    #[test]
    fn cold_tier_evicts_lru_when_full() {
        let mut c = cache(100, 100);
        for i in 1..=3 {
            c.admit(uid(i), Bytes::new(100));
        }
        // Users 1 and 2 were demoted in order; cold holds only user 2.
        assert_eq!(c.lookup(uid(1)), None);
        assert_eq!(c.lookup(uid(2)), Some((Bytes::new(100), TierHit::Cold)));
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = cache(100, 100);
        c.admit(uid(1), Bytes::new(500));
        assert!(c.is_empty());
        assert_eq!(c.lookup(uid(1)), None);
    }

    #[test]
    fn accounting_stays_within_capacities() {
        let mut c = cache(250, 400);
        for i in 0..50u64 {
            c.admit(uid(i % 13), Bytes::new(40 + (i % 5) * 30));
            let _ = c.lookup(uid(i % 7));
            assert!(c.dram_used() <= Bytes::new(250));
            assert!(c.cold_used() <= Bytes::new(400));
            c.core().check_invariants();
        }
        let n = c.core().counters();
        assert_eq!(n.hot_hits + n.cold_hits + n.misses, 50);
    }

    #[test]
    fn admit_replaces_cold_resident() {
        let mut c = cache(100, 100);
        c.admit(uid(1), Bytes::new(100));
        c.admit(uid(2), Bytes::new(100)); // demotes 1
        c.admit(uid(1), Bytes::new(80)); // fresh recompute replaces cold copy
        assert_eq!(c.lookup(uid(1)), Some((Bytes::new(80), TierHit::Dram)));
    }

    #[test]
    fn classes_share_dram_but_keep_separate_cold_budgets() {
        let mut c = kv_cache(100, 100, 100);
        c.admit(ukey(1), Bytes::new(100));
        c.admit(ikey(1), Bytes::new(100)); // demotes user 1 → user region
        c.admit(ukey(2), Bytes::new(100)); // demotes item 1 → item region
        assert_eq!(c.cold_used_class(EntryClass::User), Bytes::new(100));
        assert_eq!(c.cold_used_class(EntryClass::Item), Bytes::new(100));
        // Each class hits its own cold region independently.
        assert_eq!(c.lookup(ikey(1)), Some((Bytes::new(100), TierHit::Cold)));
        c.check_invariants();
    }

    #[test]
    fn item_demotions_respect_the_item_budget() {
        let mut c = kv_cache(100, 200, 0);
        c.admit(ikey(1), Bytes::new(100));
        c.admit(ikey(2), Bytes::new(100)); // item budget 0: demotion dropped
        assert_eq!(c.lookup(ikey(1)), None);
        assert_eq!(c.counters().cold_evictions, 1);
        // User demotions still land in the user region.
        c.admit(ukey(1), Bytes::new(100));
        c.admit(ukey(2), Bytes::new(100));
        assert_eq!(c.lookup(ukey(1)), Some((Bytes::new(100), TierHit::Cold)));
    }

    #[test]
    fn budget_shrink_evicts_lru_entries_of_that_class() {
        let mut c = kv_cache(100, 300, 0);
        for i in 1..=3 {
            c.admit(ukey(i), Bytes::new(100));
        }
        // Users 1 and 2 sit in cold (1 is LRU). Shrinking to 100 evicts 1.
        c.set_cold_budgets(Bytes::new(100), Bytes::ZERO);
        assert_eq!(c.cold_used(), Bytes::new(100));
        assert_eq!(c.lookup(ukey(1)), None);
        assert_eq!(c.lookup(ukey(2)), Some((Bytes::new(100), TierHit::Cold)));
        c.check_invariants();
    }

    #[test]
    fn cold_serve_hits_without_promoting() {
        let mut c = kv_cache(100, 100, 0);
        c.admit(ukey(1), Bytes::new(100));
        c.admit(ukey(2), Bytes::new(100)); // demotes 1
        assert_eq!(c.cold_serve(ukey(1)), Some(Bytes::new(100)));
        assert_eq!(c.cold_used(), Bytes::new(100), "no promotion happened");
        assert!(c.hot_contains(ukey(2)));
        assert_eq!(c.cold_serve(ukey(3)), None);
        let n = c.counters();
        assert_eq!((n.cold_hits, n.promotions, n.misses), (1, 0, 1));
    }

    #[test]
    fn remove_frees_either_tier() {
        let mut c = kv_cache(200, 100, 0);
        c.admit(ukey(1), Bytes::new(100));
        c.admit(ukey(2), Bytes::new(100));
        assert_eq!(c.remove(ukey(1)), Some(Bytes::new(100)));
        assert_eq!(c.remove(ukey(1)), None);
        assert_eq!(c.dram_used(), Bytes::new(100));
        c.check_invariants();
    }

    #[test]
    fn digest_tracks_the_decision_sequence() {
        let drive = |ops: &[(u64, u64)]| {
            let mut c = kv_cache(100, 100, 0);
            for &(u, b) in ops {
                c.admit(ukey(u), Bytes::new(b));
                let _ = c.lookup(ukey(u % 3));
            }
            c.digest()
        };
        let ops: Vec<(u64, u64)> = (0..20).map(|i| (i % 5, 40 + (i % 3) * 30)).collect();
        assert_eq!(drive(&ops), drive(&ops), "same sequence, same digest");
        let mut other = ops.clone();
        other[7].1 += 10; // one different admit size
        assert_ne!(drive(&ops), drive(&other), "divergence shows up");
    }

    #[test]
    fn facade_matches_core_driven_with_user_keys() {
        // The façade is the oracle for user-only workloads: driving the
        // generalized core with the same user keys must produce the same
        // decisions, digest included.
        let mut facade = cache(250, 400);
        let mut core = kv_cache(250, 400, 0);
        for i in 0..60u64 {
            let (u, b) = (i % 11, Bytes::new(30 + (i % 7) * 25));
            facade.admit(uid(u), b);
            core.admit(ukey(u), b);
            assert_eq!(facade.lookup(uid(i % 5)), core.lookup(ukey(i % 5)));
        }
        assert_eq!(facade.core().digest(), core.digest());
        assert_eq!(facade.core().counters(), core.counters());
    }
}
