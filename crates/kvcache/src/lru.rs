//! Exact least-recently-used ordering.
//!
//! The prefix-caching baselines (UP, IP) manage host-memory KV caches with
//! LRU replacement, following Mooncake (§3.3.2). This index tracks recency
//! with a monotonic stamp per key; both `touch` and `pop_lru` are
//! `O(log n)`.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// An LRU recency index over keys of type `K`.
///
/// ```
/// use bat_kvcache::LruIndex;
///
/// let mut lru = LruIndex::new();
/// lru.touch("a");
/// lru.touch("b");
/// lru.touch("a"); // "a" is now most recent
/// assert_eq!(lru.pop_lru(), Some("b"));
/// ```
#[derive(Debug, Clone)]
pub struct LruIndex<K> {
    stamps: HashMap<K, u64>,
    order: BTreeMap<u64, K>,
    next: u64,
}

impl<K: Hash + Eq + Clone> LruIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        LruIndex {
            stamps: HashMap::new(),
            order: BTreeMap::new(),
            next: 0,
        }
    }

    /// Marks `key` as most-recently used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        if let Some(old) = self.stamps.insert(key.clone(), self.next) {
            self.order.remove(&old);
        }
        self.order.insert(self.next, key);
        self.next += 1;
    }

    /// Removes and returns the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let (&stamp, _) = self.order.iter().next()?;
        let key = self.order.remove(&stamp)?;
        self.stamps.remove(&key);
        Some(key)
    }

    /// Peeks at the least-recently-used key without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        self.order.values().next()
    }

    /// Removes a specific key; returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.stamps.remove(key) {
            Some(stamp) => {
                self.order.remove(&stamp);
                true
            }
            None => false,
        }
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.stamps.contains_key(key)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Iterates over keys from least- to most-recently used.
    pub fn iter_lru_order(&self) -> impl Iterator<Item = &K> {
        self.order.values()
    }
}

impl<K: Hash + Eq + Clone> Default for LruIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eviction_order_is_recency() {
        let mut lru = LruIndex::new();
        for k in [1, 2, 3] {
            lru.touch(k);
        }
        lru.touch(1);
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(3));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn remove_specific_key() {
        let mut lru = LruIndex::new();
        lru.touch("x");
        lru.touch("y");
        assert!(lru.remove(&"x"));
        assert!(!lru.remove(&"x"));
        assert_eq!(lru.pop_lru(), Some("y"));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut lru = LruIndex::new();
        lru.touch(7);
        assert_eq!(lru.peek_lru(), Some(&7));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn iter_order_matches_pop_order() {
        let mut lru = LruIndex::new();
        for k in [5, 3, 9, 3] {
            lru.touch(k);
        }
        let order: Vec<i32> = lru.iter_lru_order().copied().collect();
        assert_eq!(order, vec![5, 9, 3]);
    }

    proptest! {
        /// Stamps and order maps never diverge; len is consistent.
        #[test]
        fn internal_consistency(ops in proptest::collection::vec((0u8..10, proptest::bool::ANY), 1..100)) {
            let mut lru = LruIndex::new();
            let mut reference = std::collections::HashSet::new();
            for (k, is_touch) in ops {
                if is_touch {
                    lru.touch(k);
                    reference.insert(k);
                } else {
                    let removed = lru.remove(&k);
                    prop_assert_eq!(removed, reference.remove(&k));
                }
                prop_assert_eq!(lru.len(), reference.len());
            }
            // Draining yields each key exactly once.
            let mut drained = Vec::new();
            while let Some(k) = lru.pop_lru() {
                drained.push(k);
            }
            drained.sort_unstable();
            let mut expect: Vec<u8> = reference.into_iter().collect();
            expect.sort_unstable();
            prop_assert_eq!(drained, expect);
        }
    }
}
