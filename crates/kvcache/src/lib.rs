//! The disaggregated KV cache pool (§5.1), accounting layer.
//!
//! At cluster scale the simulator tracks KV caches by *byte and token
//! accounting* rather than by materialized tensors (the real floats live in
//! `bat-model` for the accuracy experiments). This crate provides the
//! building blocks the paper's cache architecture needs:
//!
//! * [`pool::PagedPool`] — fixed-size-page allocation compatible with
//!   PagedAttention-style management (§5.1, "KV Cache Worker");
//! * [`lru::LruIndex`] — exact LRU ordering, the replacement policy of the
//!   UP/IP baselines (Mooncake-style, §3.3.2);
//! * [`hotness::FreqEstimator`] — the sliding-window user access-frequency
//!   estimator with asynchronous decay (§5.3);
//! * [`user_cache::UserCache`] — the user-prefix cache region with both
//!   plain-LRU and hotness-aware admission primitives;
//! * [`meta::CacheKey`] — user/item-granularity entry identifiers tracked by
//!   the cache meta service, and [`meta::MetaIndex`] — the meta service's
//!   behavioural contract, implemented locally here
//!   ([`meta::LocalMetaIndex`]) and as a replicated group in `bat-meta`;
//! * [`tiered::TieredKvCache`] — the DRAM + cold-storage hierarchy the
//!   paper's §3.3.2 footnote defers to future work, keyed by [`meta::CacheKey`]
//!   with a class-partitioned cold tier and a decision digest (the serve-side
//!   `bat-tiers` pool embeds it, so oracle and pool agree by construction),
//!   plus the user-only [`tiered::TieredUserCache`] façade;
//! * [`segments::SegmentStore`] — materialized packed [`bat_model::KvSegment`]s
//!   charged to a [`pool::PagedPool`] at their packed-layout resident size,
//!   so cached prefixes are stored in exactly the form forwards consume.

pub mod hotness;
pub mod lru;
pub mod meta;
pub mod pool;
pub mod segments;
pub mod tiered;
pub mod user_cache;

pub use hotness::FreqEstimator;
pub use lru::LruIndex;
pub use meta::{meta_digest, meta_time_ms, CacheKey, LocalMetaIndex, MetaIndex};
pub use pool::PagedPool;
pub use segments::SegmentStore;
pub use tiered::{
    EntryClass, TierCounters, TierHit, TieredConfig, TieredKvCache, TieredKvConfig, TieredUserCache,
};
pub use user_cache::{AdmitOutcome, UserCache, UserCacheConfig};
