//! JSON roundtrip property for [`SloStats`], plus the invariants the
//! runtime's conservation assertions lean on after a decode.

use bat_metrics::SloStats;
use proptest::prelude::*;
use proptest::TestRng;

fn any_stats(rng: &mut TestRng) -> SloStats {
    SloStats {
        submitted: rng.next_u64(),
        accepted: rng.next_u64(),
        rejected_queue_full: rng.next_u64(),
        rejected_infeasible: rng.next_u64(),
        rejected_brownout: rng.next_u64(),
        shed_expired: rng.next_u64(),
        completed: rng.next_u64(),
        deadline_misses: rng.next_u64(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slo_stats_json_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let stats = any_stats(&mut rng);
        let json = serde_json::to_string(&stats).expect("stats serialize");
        let back: SloStats = serde_json::from_str(&json).expect("stats deserialize");
        prop_assert_eq!(&back, &stats);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn derived_metrics_survive_the_roundtrip(seed in 0u64..u64::MAX) {
        // `rejected()` and friends are derived, not serialized: a decoded
        // struct must agree with its source on every derived quantity.
        let mut rng = TestRng::from_seed(seed);
        // Bound the counters so the sums cannot overflow u64.
        let mut stats = any_stats(&mut rng);
        for f in [
            &mut stats.submitted,
            &mut stats.accepted,
            &mut stats.rejected_queue_full,
            &mut stats.rejected_infeasible,
            &mut stats.rejected_brownout,
            &mut stats.shed_expired,
            &mut stats.deadline_misses,
        ] {
            *f %= 1 << 40;
        }
        stats.completed = stats.deadline_misses + rng.next_u64() % (1 << 40);
        let back: SloStats =
            serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
        prop_assert_eq!(back.rejected(), stats.rejected());
        prop_assert_eq!(back.goodput(), stats.goodput());
        prop_assert_eq!(back.conserved(), stats.conserved());
    }
}
