//! JSON roundtrip properties for [`SloStats`], [`BatchStats`] and
//! [`TierStats`], plus the invariants the runtime's conservation assertions
//! lean on after a decode — including back-compat: JSON written before the
//! elastic-membership fields existed must decode with those fields at zero.

use bat_metrics::{BatchStats, SloStats, TierStats};
use proptest::prelude::*;
use proptest::TestRng;

fn any_tier_stats(rng: &mut TestRng) -> TierStats {
    TierStats {
        hot_hits: rng.next_u64(),
        cold_hits: rng.next_u64(),
        misses: rng.next_u64(),
        promotions: rng.next_u64(),
        demotions: rng.next_u64(),
        cold_evictions: rng.next_u64(),
        brownout_cold_serves: rng.next_u64(),
        hot_occupancy_bytes: rng.next_u64(),
        cold_occupancy_bytes: rng.next_u64(),
        user_budget_bytes: rng.next_u64(),
        item_budget_bytes: rng.next_u64(),
    }
}

fn any_stats(rng: &mut TestRng) -> SloStats {
    SloStats {
        submitted: rng.next_u64(),
        accepted: rng.next_u64(),
        rejected_queue_full: rng.next_u64(),
        rejected_infeasible: rng.next_u64(),
        rejected_brownout: rng.next_u64(),
        shed_expired: rng.next_u64(),
        completed: rng.next_u64(),
        deadline_misses: rng.next_u64(),
        migrated: rng.next_u64(),
    }
}

fn any_batch_stats(rng: &mut TestRng) -> BatchStats {
    BatchStats {
        rounds: rng.next_u64(),
        chunks: rng.next_u64(),
        batched_tokens: rng.next_u64(),
        seat_refills: rng.next_u64(),
        peak_seated: rng.next_u64() as usize,
        max_idle_gap_over_chunk: (rng.next_u64() % 1_000_000) as f64 / 1e3,
        migrated_requests: rng.next_u64(),
        migrated_tokens: rng.next_u64(),
        drains: rng.next_u64(),
        joins: rng.next_u64(),
    }
}

/// Strips the elastic-membership fields from a serialized value, producing
/// the JSON an older build would have written.
fn strip_fields(json: &str, fields: &[&str]) -> String {
    let mut v: serde_json::Value = serde_json::from_str(json).expect("valid json");
    let serde_json::Value::Obj(entries) = &mut v else {
        panic!("stats serialize to an object, got {json}");
    };
    for f in fields {
        let before = entries.len();
        entries.retain(|(k, _)| k != f);
        assert!(entries.len() < before, "field {f} missing from {json}");
    }
    serde_json::to_string(&v).expect("stripped value re-serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slo_stats_json_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let stats = any_stats(&mut rng);
        let json = serde_json::to_string(&stats).expect("stats serialize");
        let back: SloStats = serde_json::from_str(&json).expect("stats deserialize");
        prop_assert_eq!(&back, &stats);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn derived_metrics_survive_the_roundtrip(seed in 0u64..u64::MAX) {
        // `rejected()` and friends are derived, not serialized: a decoded
        // struct must agree with its source on every derived quantity.
        let mut rng = TestRng::from_seed(seed);
        // Bound the counters so the sums cannot overflow u64.
        let mut stats = any_stats(&mut rng);
        for f in [
            &mut stats.submitted,
            &mut stats.accepted,
            &mut stats.rejected_queue_full,
            &mut stats.rejected_infeasible,
            &mut stats.rejected_brownout,
            &mut stats.shed_expired,
            &mut stats.deadline_misses,
        ] {
            *f %= 1 << 40;
        }
        stats.completed = stats.deadline_misses + rng.next_u64() % (1 << 40);
        let back: SloStats =
            serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
        prop_assert_eq!(back.rejected(), stats.rejected());
        prop_assert_eq!(back.goodput(), stats.goodput());
        prop_assert_eq!(back.conserved(), stats.conserved());
    }

    #[test]
    fn batch_stats_json_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let stats = any_batch_stats(&mut rng);
        let json = serde_json::to_string(&stats).expect("batch stats serialize");
        let back: BatchStats = serde_json::from_str(&json).expect("batch stats deserialize");
        prop_assert_eq!(&back, &stats);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn slo_stats_decode_pre_membership_json(seed in 0u64..u64::MAX) {
        // Back-compat: JSON from before the `migrated` ledger existed has
        // no such key; decoding must zero it and leave every other counter
        // (and the conservation verdict) untouched.
        let mut rng = TestRng::from_seed(seed);
        // Bound the counters so the derived sums cannot overflow u64.
        let mut stats = any_stats(&mut rng);
        for f in [
            &mut stats.submitted,
            &mut stats.accepted,
            &mut stats.rejected_queue_full,
            &mut stats.rejected_infeasible,
            &mut stats.rejected_brownout,
            &mut stats.shed_expired,
            &mut stats.completed,
            &mut stats.deadline_misses,
        ] {
            *f %= 1 << 40;
        }
        let old = strip_fields(&serde_json::to_string(&stats).unwrap(), &["migrated"]);
        let back: SloStats = serde_json::from_str(&old).expect("pre-membership json decodes");
        prop_assert_eq!(back.migrated, 0);
        prop_assert_eq!(back.submitted, stats.submitted);
        prop_assert_eq!(back.completed, stats.completed);
        prop_assert_eq!(back.rejected(), stats.rejected());
        prop_assert_eq!(back.conserved(), stats.conserved());
    }

    #[test]
    fn batch_stats_decode_pre_membership_json(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let stats = any_batch_stats(&mut rng);
        let old = strip_fields(
            &serde_json::to_string(&stats).unwrap(),
            &["migrated_requests", "migrated_tokens", "drains", "joins"],
        );
        let back: BatchStats = serde_json::from_str(&old).expect("pre-membership json decodes");
        prop_assert_eq!(back.migrated_requests, 0);
        prop_assert_eq!(back.migrated_tokens, 0);
        prop_assert_eq!(back.drains, 0);
        prop_assert_eq!(back.joins, 0);
        prop_assert_eq!(back.rounds, stats.rounds);
        prop_assert_eq!(back.chunks, stats.chunks);
        prop_assert_eq!(back.mean_round_width(), stats.mean_round_width());
    }

    #[test]
    fn tier_stats_json_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let stats = any_tier_stats(&mut rng);
        let json = serde_json::to_string(&stats).expect("tier stats serialize");
        let back: TierStats = serde_json::from_str(&json).expect("tier stats deserialize");
        prop_assert_eq!(&back, &stats);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn tier_derived_metrics_survive_the_roundtrip(seed in 0u64..u64::MAX) {
        // Bound the counters so the lookup sums cannot overflow u64, and
        // keep promotions ≤ cold_hits so `conserved()` holds by design.
        let mut rng = TestRng::from_seed(seed);
        let mut stats = any_tier_stats(&mut rng);
        for f in [
            &mut stats.hot_hits,
            &mut stats.cold_hits,
            &mut stats.misses,
            &mut stats.demotions,
            &mut stats.cold_evictions,
            &mut stats.brownout_cold_serves,
        ] {
            *f %= 1 << 40;
        }
        stats.promotions = if stats.cold_hits == 0 {
            0
        } else {
            rng.next_u64() % (stats.cold_hits + 1)
        };
        let back: TierStats =
            serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
        prop_assert_eq!(back.lookups(), stats.lookups());
        prop_assert_eq!(back.hits(), stats.hits());
        prop_assert_eq!(back.hit_rate(), stats.hit_rate());
        prop_assert_eq!(back.cold_hit_share(), stats.cold_hit_share());
        prop_assert!(back.conserved());
    }
}
