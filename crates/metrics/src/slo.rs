//! SLO accounting: goodput, sheds, rejections, deadline misses.
//!
//! [`SloStats`] is the overload control plane's ledger. Its conservation
//! law — every submitted request is completed, shed, or rejected, exactly
//! once — is what the serve-runtime proptest asserts across random fault
//! schedules: accepted work can never silently vanish, even when workers
//! crash mid-flight or deadlines expire in the queue.

use serde::{Deserialize, Serialize};

/// Counters describing what the admission control plane did to a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloStats {
    /// Requests offered by the trace.
    pub submitted: u64,
    /// Requests admitted past the controller.
    pub accepted: u64,
    /// Rejected on arrival: admission queue at its bound.
    pub rejected_queue_full: u64,
    /// Rejected on arrival: estimated wait + service blows the deadline.
    pub rejected_infeasible: u64,
    /// Rejected on arrival: brownout rung 3 shed a low-priority request.
    pub rejected_brownout: u64,
    /// Admitted, then swept from a queue after the deadline expired
    /// (typed as `BatError::DeadlineExceeded` at the shed point).
    pub shed_expired: u64,
    /// Admitted and fully served (possibly late).
    pub completed: u64,
    /// Completed, but after the deadline.
    pub deadline_misses: u64,
    /// Requests moved between workers by elastic membership (planned
    /// drains and crash requeues). Migration is movement, not a terminal
    /// outcome — it never appears on the right side of the conservation
    /// law; the ledger exists to prove migrated work still lands in
    /// exactly one of completed/shed/rejected.
    #[serde(default)]
    pub migrated: u64,
}

impl SloStats {
    /// Total arrivals rejected at admission, all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_infeasible + self.rejected_brownout
    }

    /// Requests that completed within their deadline (best-effort requests
    /// always count: no deadline, no miss).
    pub fn goodput(&self) -> u64 {
        self.completed - self.deadline_misses
    }

    /// Goodput as a fraction of submitted load; 1.0 for an empty run.
    pub fn goodput_ratio(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.goodput() as f64 / self.submitted as f64
        }
    }

    /// The conservation law: `submitted == completed + shed + rejected`
    /// and `accepted == completed + shed`. Every request reaches exactly
    /// one terminal outcome. The `migrated` ledger rides alongside:
    /// membership churn moves work but never adds or removes a terminal
    /// outcome, so the equation must hold with `migrated` at any value.
    pub fn conserved(&self) -> bool {
        self.submitted == self.completed + self.shed_expired + self.rejected()
            && self.accepted == self.completed + self.shed_expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_conserved_and_perfect() {
        let s = SloStats::default();
        assert!(s.conserved());
        assert_eq!(s.goodput_ratio(), 1.0);
    }

    #[test]
    fn conservation_law_detects_lost_requests() {
        let mut s = SloStats {
            submitted: 10,
            accepted: 8,
            rejected_queue_full: 1,
            rejected_infeasible: 1,
            shed_expired: 2,
            completed: 6,
            deadline_misses: 1,
            ..SloStats::default()
        };
        assert!(s.conserved());
        assert_eq!(s.rejected(), 2);
        assert_eq!(s.goodput(), 5);
        assert!((s.goodput_ratio() - 0.5).abs() < 1e-12);
        s.completed -= 1; // one request vanished
        assert!(!s.conserved());
    }

    #[test]
    fn migration_is_not_a_terminal_outcome() {
        let s = SloStats {
            submitted: 4,
            accepted: 4,
            completed: 3,
            shed_expired: 1,
            migrated: 7, // requests can migrate more than once
            ..SloStats::default()
        };
        assert!(s.conserved(), "migration must not perturb conservation");
    }

    #[test]
    fn pre_membership_serializations_default_migrated() {
        let back: SloStats = serde_json::from_str(
            r#"{"submitted":5,"accepted":4,"rejected_queue_full":1,
                "rejected_infeasible":0,"rejected_brownout":0,
                "shed_expired":1,"completed":3,"deadline_misses":0}"#,
        )
        .unwrap();
        assert_eq!(back.migrated, 0);
        assert!(back.conserved());
    }
}
