//! Continuous-batching accounting: rounds, chunks, seat occupancy, idle gaps.
//!
//! [`BatchStats`] is the slot scheduler's ledger. The counter fields are
//! planner-side decisions — both engines run the same slot machine on
//! nominal arrival time, so every one of them must agree bit-for-bit
//! between the simulator and the threaded runtime (they are folded into
//! `RunStats::digest`). The `max_idle_gap_over_chunk` observation backs
//! the `ablation_batching` gate: at saturation a continuously-batched
//! worker must never sit idle longer than one chunk while work is pending.

use serde::{Deserialize, Serialize};

/// Counters describing what the slot-based batch scheduler did to a run.
///
/// All-zero (`Default`) when continuous batching is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Fused worker rounds executed (one round = one chunk from each
    /// seated request on a worker, priced under a single batch overhead).
    pub rounds: u64,
    /// Prefill/scoring chunks retired across all rounds.
    pub chunks: u64,
    /// Tokens processed through batched rounds.
    pub batched_tokens: u64,
    /// Seats refilled from the global pending queue the moment a request
    /// retired — the continuous-batching events a per-request batcher
    /// (which waits for request boundaries) can never produce.
    pub seat_refills: u64,
    /// Peak concurrently-seated requests across all workers.
    pub peak_seated: usize,
    /// Largest observed worker idle gap while pending work existed,
    /// normalized to that worker's mean chunk service time. Observational
    /// (excluded from the digest): the ablation gate asserts ≤ 1.0 at
    /// saturation.
    pub max_idle_gap_over_chunk: f64,
    /// Requests moved off a worker by a planned drain (or a crash requeue)
    /// and re-queued on the surviving membership. One request can migrate
    /// more than once; each move counts. Paired with the conservation law
    /// this proves elastic membership loses nothing: every migrated
    /// request still reaches exactly one terminal outcome.
    #[serde(default)]
    pub migrated_requests: u64,
    /// Unfinished tokens those migrations carried to their new worker.
    /// Tokens already retired in earlier rounds stay retired — migration
    /// moves only *remaining* work, so nothing is double-counted.
    #[serde(default)]
    pub migrated_tokens: u64,
    /// Planned worker drains the scheduler executed.
    #[serde(default)]
    pub drains: u64,
    /// Planned worker joins re-planned into the slot map mid-run.
    #[serde(default)]
    pub joins: u64,
}

impl BatchStats {
    /// Mean chunks fused per round; 0 for an empty (or disabled) run.
    pub fn mean_round_width(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.chunks as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let b = BatchStats::default();
        assert_eq!(b.rounds, 0);
        assert_eq!(b.mean_round_width(), 0.0);
    }

    #[test]
    fn round_width_is_chunks_per_round() {
        let b = BatchStats {
            rounds: 4,
            chunks: 10,
            ..BatchStats::default()
        };
        assert!((b.mean_round_width() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pre_membership_serializations_default_migration_fields() {
        // JSON written before elastic membership existed has none of the
        // migrated/drain/join fields; they must read back as zero.
        let back: BatchStats = serde_json::from_str(
            r#"{"rounds":3,"chunks":6,"batched_tokens":100,
                "seat_refills":2,"peak_seated":4,"max_idle_gap_over_chunk":0.5}"#,
        )
        .unwrap();
        assert_eq!(back.migrated_requests, 0);
        assert_eq!(back.migrated_tokens, 0);
        assert_eq!(back.drains, 0);
        assert_eq!(back.joins, 0);
        assert_eq!(back.rounds, 3);
    }
}
