//! Evaluation metrics for the BAT reproduction.
//!
//! Two metric families back the paper's evaluation:
//!
//! * **Ranking quality** ([`ranking`]): Recall@k, MRR@k and NDCG@k over the
//!   ground-truth item's rank, as used in Table 3 (§6.3).
//! * **Serving statistics** ([`stats`]): percentile estimation (P99 latency,
//!   Figure 9), empirical CDFs (Figure 2), and streaming mean/max summaries.
//! * **SLO accounting** ([`slo`]): goodput/shed/deadline-miss counters with
//!   the overload control plane's conservation law.
//! * **Tier accounting** ([`tiers`]): hot/cold hit, promotion/demotion and
//!   occupancy counters for the tiered KV pool.
//! * **Batch accounting** ([`batching`]): round/chunk/seat-occupancy
//!   counters for the continuous cross-request batch scheduler.
//!
//! # Example
//!
//! ```
//! use bat_metrics::ranking::RankingMetrics;
//!
//! // Ground-truth ranks (0-based) of four evaluated requests.
//! let m = RankingMetrics::from_ranks(&[0, 2, 7, 12]);
//! assert_eq!(m.recall_at(10), 0.75);
//! assert!(m.mrr_at(10) > 0.3);
//! ```

pub mod batching;
pub mod ranking;
pub mod slo;
pub mod stats;
pub mod tiers;

pub use batching::BatchStats;
pub use ranking::RankingMetrics;
pub use slo::SloStats;
pub use stats::{Cdf, Percentiles, Summary};
pub use tiers::TierStats;
