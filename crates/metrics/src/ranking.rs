//! Ranking-quality metrics: Recall@k, MRR@k, NDCG@k (§6.3).
//!
//! The paper's evaluation follows LlamaRec \[82\]: each test request has one
//! ground-truth item among the candidates, so all three metrics are
//! functions of the ground-truth item's rank:
//!
//! * `Recall@k` — fraction of requests with rank < k;
//! * `MRR@k` — mean of `1/(rank+1)` for rank < k, else 0;
//! * `NDCG@k` — mean of `1/log2(rank+2)` for rank < k, else 0
//!   (IDCG is 1 with a single relevant item).

use serde::{Deserialize, Serialize};

/// Aggregated ranking metrics over a set of evaluated requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingMetrics {
    /// 0-based rank of the ground-truth item per request.
    ranks: Vec<usize>,
}

impl RankingMetrics {
    /// Builds metrics from 0-based ground-truth ranks (rank 0 = top-1).
    pub fn from_ranks(ranks: &[usize]) -> Self {
        RankingMetrics {
            ranks: ranks.to_vec(),
        }
    }

    /// Number of evaluated requests.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether no requests were evaluated.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// `Recall@k`: fraction of requests whose ground truth ranks in the
    /// top `k`.
    ///
    /// Returns 0.0 for an empty evaluation set.
    pub fn recall_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().filter(|&&r| r < k).count() as f64 / self.ranks.len() as f64
    }

    /// `MRR@k`: mean reciprocal rank, zero beyond the cut-off.
    pub fn mrr_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|&r| if r < k { 1.0 / (r as f64 + 1.0) } else { 0.0 })
            .sum::<f64>()
            / self.ranks.len() as f64
    }

    /// `NDCG@k` with binary relevance and a single relevant item
    /// (IDCG = 1).
    pub fn ndcg_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|&r| {
                if r < k {
                    1.0 / (r as f64 + 2.0).log2()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / self.ranks.len() as f64
    }

    /// Percentile-bootstrap 95 % confidence interval of any metric of this
    /// evaluation set: resamples the per-request ranks with replacement
    /// `resamples` times and takes the 2.5/97.5 percentiles of the metric.
    /// Deterministic in `seed`. Returns `(lo, hi)`, or `(0, 0)` for an
    /// empty set.
    ///
    /// ```
    /// use bat_metrics::RankingMetrics;
    ///
    /// let m = RankingMetrics::from_ranks(&[0, 1, 3, 8, 12, 2, 0, 5]);
    /// let (lo, hi) = m.bootstrap_ci(|m| m.recall_at(10), 500, 7);
    /// let point = m.recall_at(10);
    /// assert!(lo <= point && point <= hi);
    /// ```
    pub fn bootstrap_ci(
        &self,
        metric: impl Fn(&RankingMetrics) -> f64,
        resamples: usize,
        seed: u64,
    ) -> (f64, f64) {
        if self.ranks.is_empty() || resamples == 0 {
            return (0.0, 0.0);
        }
        let n = self.ranks.len();
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut stats: Vec<f64> = (0..resamples)
            .map(|_| {
                let resample: Vec<usize> = (0..n)
                    .map(|_| self.ranks[(next() % n as u64) as usize])
                    .collect();
                metric(&RankingMetrics { ranks: resample })
            })
            .collect();
        stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = |q: f64| ((q * resamples as f64) as usize).min(resamples - 1);
        (stats[idx(0.025)], stats[idx(0.975)])
    }

    /// The six columns of the paper's Table 3, in paper order:
    /// `(Recall@10, MRR@10, NDCG@10, Recall@5, MRR@5, NDCG@5)`.
    pub fn table3_row(&self) -> [f64; 6] {
        [
            self.recall_at(10),
            self.mrr_at(10),
            self.ndcg_at(10),
            self.recall_at(5),
            self.mrr_at(5),
            self.ndcg_at(5),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let m = RankingMetrics::from_ranks(&[0, 0, 0]);
        assert_eq!(m.recall_at(10), 1.0);
        assert_eq!(m.mrr_at(10), 1.0);
        assert_eq!(m.ndcg_at(10), 1.0);
    }

    #[test]
    fn all_misses_score_zero() {
        let m = RankingMetrics::from_ranks(&[10, 20, 99]);
        assert_eq!(m.recall_at(10), 0.0);
        assert_eq!(m.mrr_at(10), 0.0);
        assert_eq!(m.ndcg_at(10), 0.0);
    }

    #[test]
    fn empty_set_scores_zero() {
        let m = RankingMetrics::from_ranks(&[]);
        assert!(m.is_empty());
        assert_eq!(m.recall_at(5), 0.0);
        assert_eq!(m.mrr_at(5), 0.0);
        assert_eq!(m.ndcg_at(5), 0.0);
    }

    #[test]
    fn known_values() {
        // rank 1 → RR = 1/2, NDCG = 1/log2(3).
        let m = RankingMetrics::from_ranks(&[1]);
        assert!((m.mrr_at(10) - 0.5).abs() < 1e-12);
        assert!((m.ndcg_at(10) - 1.0 / 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn cutoff_matters() {
        let m = RankingMetrics::from_ranks(&[7]);
        assert_eq!(m.recall_at(5), 0.0);
        assert_eq!(m.recall_at(10), 1.0);
    }

    #[test]
    fn table3_row_order() {
        let m = RankingMetrics::from_ranks(&[0, 6]);
        let row = m.table3_row();
        assert_eq!(row[0], m.recall_at(10));
        assert_eq!(row[3], m.recall_at(5));
        // Recall@10 ≥ Recall@5 always.
        assert!(row[0] >= row[3]);
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let m = RankingMetrics::from_ranks(&[0, 2, 4, 9, 11, 1, 0, 7, 3, 20]);
        for metric in [
            |m: &RankingMetrics| m.recall_at(10),
            |m: &RankingMetrics| m.mrr_at(10),
            |m: &RankingMetrics| m.ndcg_at(10),
        ] {
            let (lo, hi) = m.bootstrap_ci(metric, 400, 3);
            let point = metric(&m);
            assert!(
                lo <= point + 1e-12 && point <= hi + 1e-12,
                "{lo} {point} {hi}"
            );
            assert!(lo >= 0.0 && hi <= 1.0);
        }
        // Deterministic in the seed.
        assert_eq!(
            m.bootstrap_ci(|m| m.recall_at(10), 200, 5),
            m.bootstrap_ci(|m| m.recall_at(10), 200, 5)
        );
        // Degenerate inputs.
        assert_eq!(
            RankingMetrics::from_ranks(&[]).bootstrap_ci(|m| m.recall_at(10), 100, 1),
            (0.0, 0.0)
        );
    }

    #[test]
    fn bootstrap_ci_tightens_with_more_data() {
        let small = RankingMetrics::from_ranks(&[0, 5, 12, 3]);
        let ranks: Vec<usize> = (0..400).map(|i| [0, 5, 12, 3][i % 4]).collect();
        let large = RankingMetrics::from_ranks(&ranks);
        let (lo_s, hi_s) = small.bootstrap_ci(|m| m.recall_at(10), 400, 9);
        let (lo_l, hi_l) = large.bootstrap_ci(|m| m.recall_at(10), 400, 9);
        assert!(hi_l - lo_l < hi_s - lo_s, "more data must tighten the CI");
    }

    proptest! {
        /// All metrics lie in [0, 1] and are monotone in k.
        #[test]
        fn metrics_bounded_and_monotone(ranks in proptest::collection::vec(0usize..50, 1..100)) {
            let m = RankingMetrics::from_ranks(&ranks);
            for k in [1usize, 5, 10, 20] {
                for v in [m.recall_at(k), m.mrr_at(k), m.ndcg_at(k)] {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
            }
            prop_assert!(m.recall_at(10) >= m.recall_at(5));
            prop_assert!(m.mrr_at(10) >= m.mrr_at(5));
            prop_assert!(m.ndcg_at(10) >= m.ndcg_at(5));
            // Recall dominates NDCG dominates MRR at any fixed k (since
            // 1 ≥ 1/log2(r+2) ≥ 1/(r+1) for r ≥ 0).
            prop_assert!(m.recall_at(10) >= m.ndcg_at(10) - 1e-12);
            prop_assert!(m.ndcg_at(10) >= m.mrr_at(10) - 1e-12);
        }
    }
}
