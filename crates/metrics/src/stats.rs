//! Serving statistics: percentiles, CDFs and streaming summaries.

use serde::{Deserialize, Serialize};

/// Exact percentile estimation over a collected sample (used for the P99
/// latency curves of Figure 9).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "percentile samples must not be NaN");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) with linear interpolation between
    /// order statistics (Hyndman–Fan type 7, the R/NumPy default), or
    /// `None` if no samples were recorded.
    ///
    /// Interpolation matters at the tail: with nearest-rank, one straggler
    /// sample can swing the reported P99 by the whole straggler latency
    /// the moment the sample count crosses a rank boundary, which made
    /// small-sample tail assertions flaky. The interpolated estimate moves
    /// continuously with the sample values.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.sorted = true;
        }
        let n = self.samples.len();
        let h = (n - 1) as f64 * q;
        let lo = h.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = h - lo as f64;
        Some(self.samples[lo] + (self.samples[hi] - self.samples[lo]) * frac)
    }

    /// P99, the paper's SLO percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// P90, the overload ablation's goodput percentile.
    pub fn p90(&mut self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// P50 (median).
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// An empirical CDF over `f64` values (Figures 2c/2d report access-frequency
/// CDFs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (order irrelevant).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted }
    }

    /// `P(X ≤ x)`; 0.0 for an empty sample.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample `x` with `P(X ≤ x) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or the CDF is empty.
    pub fn inverse(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.sorted.is_empty(), "inverse of empty CDF");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }

    /// Evenly-spaced `(x, P(X ≤ x))` points for plotting, `n ≥ 2`.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// Streaming count/mean/min/max summary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        let mut p = Percentiles::new();
        for v in 1..=100 {
            p.record(v as f64);
        }
        // Type-7: h = 99 * q, so P99 = 1 + 99*0.99 = 99.01, P50 = 50.5.
        assert!((p.p99().unwrap() - 99.01).abs() < 1e-9);
        assert!((p.p50().unwrap() - 50.5).abs() < 1e-9);
        assert!((p.p90().unwrap() - 90.1).abs() < 1e-9);
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.mean(), Some(50.5));
    }

    #[test]
    fn interpolated_tail_moves_continuously() {
        // Nine fast samples and one straggler: nearest-rank P90 snapped to
        // the straggler outright; interpolation blends proportionally, so
        // the estimate is a continuous function of the straggler latency.
        let tail = |straggler: f64| {
            let mut p = Percentiles::new();
            for _ in 0..9 {
                p.record(1.0);
            }
            p.record(straggler);
            p.quantile(0.9).unwrap()
        };
        assert!((tail(5.0) - (1.0 + 4.0 * 0.1)).abs() < 1e-9);
        assert!(tail(5.0) < tail(6.0));
        assert!(tail(6.0) < 6.0);
    }

    #[test]
    fn percentiles_empty_and_single() {
        let mut p = Percentiles::new();
        assert_eq!(p.p99(), None);
        assert_eq!(p.mean(), None);
        p.record(7.0);
        assert_eq!(p.p99(), Some(7.0));
        assert_eq!(p.p50(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn percentiles_reject_nan() {
        Percentiles::new().record(f64::NAN);
    }

    #[test]
    fn cdf_basic_shape() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(2.0), 0.5);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.inverse(0.5), 2.0);
        assert_eq!(cdf.inverse(1.0), 4.0);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf = Cdf::from_samples(&[5.0, 1.0, 3.0, 3.0, 9.0]);
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples(&[]);
        assert_eq!(cdf.at(1.0), 0.0);
        assert!(cdf.curve(5).is_empty());
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for v in [3.0, -1.0, 10.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(10.0));
        assert_eq!(s.mean(), Some(4.0));
    }

    proptest! {
        /// quantile() is monotone in q and bounded by min/max.
        #[test]
        fn quantile_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut p = Percentiles::new();
            for &s in &samples { p.record(s); }
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = i as f64 / 10.0;
                let v = p.quantile(q).unwrap();
                prop_assert!(v >= prev);
                prev = v;
            }
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p.quantile(0.0).unwrap() >= lo - 1e-9);
            prop_assert!(p.quantile(1.0).unwrap() <= hi + 1e-9);
        }

        /// CDF and inverse are consistent: at(inverse(q)) ≥ q.
        #[test]
        fn cdf_inverse_consistency(samples in proptest::collection::vec(-100.0f64..100.0, 1..100), q in 0.01f64..1.0) {
            let cdf = Cdf::from_samples(&samples);
            let x = cdf.inverse(q);
            prop_assert!(cdf.at(x) >= q - 1e-9);
        }
    }
}
