//! Tiered-cache accounting: hot/cold hits, promotions, demotions,
//! occupancy, and the adaptive user/item budget split.
//!
//! [`TierStats`] is the tiered KV pool's ledger, the tier-side analogue of
//! [`crate::SloStats`]. Its lookup conservation law — every tier lookup is
//! a hot hit, a cold hit, or a miss, exactly once — is what the sim/serve
//! equivalence tests assert: the serve-side pool and the simulation oracle
//! must produce not just the same totals but the same decision sequence
//! (checked separately via the pool's decision digest).

use serde::{Deserialize, Serialize};

/// Counters describing what the tiered KV pool did during a run.
///
/// All fields are cumulative event counts except the `*_bytes` fields,
/// which are end-of-run snapshots of occupancy and the partition budgets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Lookups answered by the hot (DRAM-modelled, f32) tier.
    pub hot_hits: u64,
    /// Lookups answered by the cold (quantized) tier.
    pub cold_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Cold entries promoted back into the hot tier after a cold hit.
    pub promotions: u64,
    /// Hot-tier evictions demoted (quantized) into the cold tier.
    pub demotions: u64,
    /// Cold-tier entries evicted outright (fell off the cold LRU, or were
    /// dropped by the admission policy / partition shrink).
    pub cold_evictions: u64,
    /// Brownout rung-2 faults served from the local cold tier instead of
    /// recomputing at the fault site.
    pub brownout_cold_serves: u64,
    /// Hot-tier bytes resident at end of run.
    pub hot_occupancy_bytes: u64,
    /// Cold-tier quantized bytes resident at end of run.
    pub cold_occupancy_bytes: u64,
    /// Cold-tier budget currently assigned to user entries by the
    /// partitioning controller.
    pub user_budget_bytes: u64,
    /// Cold-tier budget currently assigned to item entries.
    pub item_budget_bytes: u64,
}

impl TierStats {
    /// Total tier lookups, all outcomes.
    pub fn lookups(&self) -> u64 {
        self.hot_hits + self.cold_hits + self.misses
    }

    /// Lookups answered by either tier.
    pub fn hits(&self) -> u64 {
        self.hot_hits + self.cold_hits
    }

    /// Hit rate across both tiers; 0.0 for a run with no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }

    /// Fraction of hits that had to come from the cold tier.
    pub fn cold_hit_share(&self) -> f64 {
        if self.hits() == 0 {
            0.0
        } else {
            self.cold_hits as f64 / self.hits() as f64
        }
    }

    /// The lookup conservation law: hot + cold + miss == lookups (trivially
    /// true by construction here, but asserted after serde decodes and
    /// cross-process merges where a field could have been dropped).
    pub fn conserved(&self) -> bool {
        self.hot_hits + self.cold_hits + self.misses == self.lookups()
            && self.cold_hits >= self.promotions
    }

    /// Folds another ledger into this one: counters add, occupancy and
    /// budget snapshots take the other side's values (the merge order is
    /// oldest → newest, so the last snapshot wins).
    pub fn merge(&mut self, other: &TierStats) {
        self.hot_hits += other.hot_hits;
        self.cold_hits += other.cold_hits;
        self.misses += other.misses;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.cold_evictions += other.cold_evictions;
        self.brownout_cold_serves += other.brownout_cold_serves;
        self.hot_occupancy_bytes = other.hot_occupancy_bytes;
        self.cold_occupancy_bytes = other.cold_occupancy_bytes;
        self.user_budget_bytes = other.user_budget_bytes;
        self.item_budget_bytes = other.item_budget_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_conserved_with_zero_rates() {
        let t = TierStats::default();
        assert!(t.conserved());
        assert_eq!(t.hit_rate(), 0.0);
        assert_eq!(t.cold_hit_share(), 0.0);
    }

    #[test]
    fn rates_and_merge() {
        let mut a = TierStats {
            hot_hits: 6,
            cold_hits: 2,
            misses: 2,
            promotions: 2,
            demotions: 3,
            hot_occupancy_bytes: 100,
            ..TierStats::default()
        };
        assert_eq!(a.lookups(), 10);
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(a.cold_hit_share(), 0.25);
        let b = TierStats {
            hot_hits: 4,
            misses: 1,
            hot_occupancy_bytes: 40,
            user_budget_bytes: 7,
            ..TierStats::default()
        };
        a.merge(&b);
        assert_eq!(a.hot_hits, 10);
        assert_eq!(a.lookups(), 15);
        assert_eq!(a.hot_occupancy_bytes, 40, "snapshot takes the newer value");
        assert_eq!(a.user_budget_bytes, 7);
        assert!(a.conserved());
    }
}
