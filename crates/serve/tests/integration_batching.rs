//! Cross-engine integration test for continuous batching: the threaded
//! serve runtime and the discrete-event simulator must form bitwise
//! identical batches on the same trace at every worker count.
//!
//! Batch formation runs on nominal arrival times and priced services in
//! both engines, so slot seating, chunk retirement, round fusion — and
//! therefore the whole `RunStats` digest — are pure functions of the
//! trace. Wall-clock jitter, thread interleaving, and the `BAT_THREADS`
//! pool width (CI runs this file at 1 and 8) must all be invisible.

use bat_serve::{ServeOptions, ServeRuntime, TransportKind};
use bat_sim::{
    BatchingConfig, EngineConfig, FaultSchedule, OverloadConfig, ServingEngine, SystemKind,
};
use bat_types::WorkerId;
use bat_types::{Bytes, ClusterConfig, DatasetConfig, ModelConfig, RankRequest, SloBudget};
use bat_workload::{TraceGenerator, Workload};

fn cluster(nodes: usize) -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node();
    c.num_nodes = nodes;
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

fn short_prompt_dataset() -> DatasetConfig {
    DatasetConfig {
        num_users: 300,
        avg_user_tokens: 120,
        avg_item_tokens: 8,
        candidates_per_request: 10,
        ..DatasetConfig::games()
    }
}

fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    g.generate(secs, rate)
}

fn batched_config(ds: &DatasetConfig, nodes: usize) -> EngineConfig {
    EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        cluster(nodes),
        ds,
    )
    .with_batching(Some(BatchingConfig {
        slots_per_worker: 8,
        chunk_tokens: 512,
    }))
}

#[test]
fn batch_formation_matches_simulator_across_worker_counts() {
    let ds = short_prompt_dataset();
    let t = trace(&ds, 1.0, 300.0);
    for nodes in [1usize, 2, 4, 8] {
        let cfg = batched_config(&ds, nodes);
        let sim = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt.completed, t.len(), "{nodes} workers dropped requests");
        assert!(sim.batching.rounds > 0, "no rounds at {nodes} workers");
        // Wider clusters spread 300 qps too thin to co-seat chunks; the
        // fusion property itself is only observable under saturation.
        if nodes <= 2 {
            assert!(
                sim.batching.rounds < sim.batching.chunks,
                "rounds must fuse chunks across requests at {nodes} workers"
            );
        }
        assert_eq!(
            sim.batching, rt.batching,
            "batching ledger diverged at {nodes} worker threads"
        );
        assert_eq!(
            sim.digest(),
            rt.digest(),
            "stats digest diverged at {nodes} worker threads"
        );
    }
}

#[test]
fn overloaded_batching_conserves_and_matches_simulator() {
    // A deadline tight enough to force admission rejections plus a burst
    // past capacity: the slot scheduler's occupancy feeds the admission
    // backlog identically in both engines, so even the rejected/shed
    // split must agree bitwise.
    let ds = short_prompt_dataset();
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    g.set_slo(SloBudget::with_deadline(0.08));
    let t = g.generate(1.0, 400.0);
    let cfg = batched_config(&ds, 2).with_slo(Some(OverloadConfig::default()));
    let sim = ServingEngine::new(cfg.clone()).unwrap().run(&t);
    let rt = ServeRuntime::new(cfg, ServeOptions::default())
        .unwrap()
        .serve(&t);
    assert_eq!(rt.slo.submitted, t.len() as u64);
    assert!(
        rt.slo.conserved(),
        "submitted != completed + shed + rejected"
    );
    assert_eq!(sim.slo, rt.slo, "SLO ledger diverged");
    assert_eq!(sim.digest(), rt.digest(), "stats digest diverged");
}

#[test]
fn kill_schedule_digest_matches_simulator_across_worker_counts() {
    // A validated kill schedule must leave a survivor after every crash,
    // so the matrix starts at 2 workers; the 1-worker case is pinned by
    // the fault-free parity test above.
    let ds = short_prompt_dataset();
    let t = trace(&ds, 2.0, 150.0);
    for nodes in [2usize, 4, 8] {
        let schedule = FaultSchedule::random(17, nodes, 2.0, 1);
        assert!(!schedule.is_empty(), "seed 17 must schedule a crash");
        let cfg = batched_config(&ds, nodes).with_faults(Some(schedule));
        let sim = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(
            rt.completed,
            t.len(),
            "a crash must never drop work at {nodes} workers"
        );
        assert!(!sim.faults.is_quiet(), "the crash must be observed");
        assert_eq!(
            sim.batching, rt.batching,
            "batching ledger diverged under kill at {nodes} workers"
        );
        assert_eq!(
            sim.digest(),
            rt.digest(),
            "stats digest diverged under kill at {nodes} workers"
        );
    }
}

#[test]
fn chaos_membership_schedules_match_simulator() {
    // The CI chaos matrix runs this file at BAT_THREADS=1 and 8: three
    // seeded schedules mixing planned drain/join with crash/restart, on
    // top of an SLO controller so the *extended* conservation law
    // (submitted == completed + shed + rejected, with `migrated` a pure
    // movement ledger) is checked under churn, not just at steady state.
    let ds = short_prompt_dataset();
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    g.set_slo(SloBudget::with_deadline(0.2));
    let t = g.generate(2.0, 150.0);
    let mut membership_events = 0;
    for seed in [3u64, 5, 9] {
        let schedule = FaultSchedule::random_membership(seed, 4, 2.0, 2);
        membership_events += schedule.events().len();
        let cfg = batched_config(&ds, 4)
            .with_slo(Some(OverloadConfig::default()))
            .with_faults(Some(schedule));
        let sim = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt.slo.submitted, t.len() as u64, "seed {seed}");
        assert!(
            rt.slo.conserved(),
            "seed {seed}: submitted != completed + shed + rejected"
        );
        assert!(
            rt.batching.migrated_tokens >= rt.batching.migrated_requests,
            "seed {seed}: a migrated chunk carries at least one token"
        );
        assert_eq!(
            rt.slo.migrated, rt.batching.migrated_requests,
            "seed {seed}: the SLO migration ledger mirrors the machine"
        );
        assert_eq!(sim.slo, rt.slo, "seed {seed}: SLO ledger diverged");
        assert_eq!(
            sim.batching, rt.batching,
            "seed {seed}: batching ledger diverged"
        );
        assert_eq!(
            sim.digest(),
            rt.digest(),
            "seed {seed}: stats digest diverged"
        );
    }
    assert!(
        membership_events > 0,
        "at least one chaos seed must schedule churn"
    );
}

#[test]
fn batched_child_processes_survive_sigkill_and_count_chunks_once() {
    bat_serve::maybe_child_worker();
    // A real SIGKILL of a real OS process severs the Unix socket with a
    // round frame potentially mid-flight. The register-unacked-before-send
    // rollback (a frame that fails to send is withdrawn before any
    // completion could race it) must compose with the slot machine's
    // crash-requeue: the dead worker's chunks reform into fresh rounds on
    // the survivor under new round seqs, so no chunk is ever counted twice
    // in `BatchStats` — pinned here in the strongest form, bitwise ledger
    // and digest equality with the simulator.
    let ds = short_prompt_dataset();
    let t = trace(&ds, 3.0, 100.0);
    let schedule = FaultSchedule::single_crash(2, WorkerId::new(1), 0.8, 2.0).unwrap();
    let cfg = || batched_config(&ds, 2).with_faults(Some(schedule.clone()));
    let sim = ServingEngine::new(cfg()).unwrap().run(&t);
    let opts = ServeOptions {
        transport: TransportKind::Uds,
        processes: true,
        child_args: vec![
            "batched_child_processes_survive_sigkill_and_count_chunks_once".to_string(),
            "--exact".to_string(),
            "--test-threads=1".to_string(),
            "--quiet".to_string(),
        ],
        ..ServeOptions::default()
    };
    let rt = ServeRuntime::new(cfg(), opts).unwrap().serve(&t);
    assert_eq!(
        rt.completed,
        t.len(),
        "a SIGKILLed batched worker must not lose work"
    );
    assert!(!rt.faults.is_quiet(), "the kill must be observed");
    assert_eq!(
        sim.batching, rt.batching,
        "a chunk was lost or double-counted across the SIGKILL"
    );
    assert_eq!(sim.digest(), rt.digest(), "stats digest diverged");
}
