//! Cross-engine integration test for continuous batching: the threaded
//! serve runtime and the discrete-event simulator must form bitwise
//! identical batches on the same trace at every worker count.
//!
//! Batch formation runs on nominal arrival times and priced services in
//! both engines, so slot seating, chunk retirement, round fusion — and
//! therefore the whole `RunStats` digest — are pure functions of the
//! trace. Wall-clock jitter, thread interleaving, and the `BAT_THREADS`
//! pool width (CI runs this file at 1 and 8) must all be invisible.

use bat_serve::{ServeOptions, ServeRuntime};
use bat_sim::{BatchingConfig, EngineConfig, OverloadConfig, ServingEngine, SystemKind};
use bat_types::{Bytes, ClusterConfig, DatasetConfig, ModelConfig, RankRequest, SloBudget};
use bat_workload::{TraceGenerator, Workload};

fn cluster(nodes: usize) -> ClusterConfig {
    let mut c = ClusterConfig::a100_4node();
    c.num_nodes = nodes;
    c.node.kv_cache_capacity = Bytes::from_gb(20);
    c
}

fn short_prompt_dataset() -> DatasetConfig {
    DatasetConfig {
        num_users: 300,
        avg_user_tokens: 120,
        avg_item_tokens: 8,
        candidates_per_request: 10,
        ..DatasetConfig::games()
    }
}

fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    g.generate(secs, rate)
}

fn batched_config(ds: &DatasetConfig, nodes: usize) -> EngineConfig {
    EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        cluster(nodes),
        ds,
    )
    .with_batching(Some(BatchingConfig {
        slots_per_worker: 8,
        chunk_tokens: 512,
    }))
}

#[test]
fn batch_formation_matches_simulator_across_worker_counts() {
    let ds = short_prompt_dataset();
    let t = trace(&ds, 1.0, 300.0);
    for nodes in [1usize, 2, 4, 8] {
        let cfg = batched_config(&ds, nodes);
        let sim = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt.completed, t.len(), "{nodes} workers dropped requests");
        assert!(sim.batching.rounds > 0, "no rounds at {nodes} workers");
        // Wider clusters spread 300 qps too thin to co-seat chunks; the
        // fusion property itself is only observable under saturation.
        if nodes <= 2 {
            assert!(
                sim.batching.rounds < sim.batching.chunks,
                "rounds must fuse chunks across requests at {nodes} workers"
            );
        }
        assert_eq!(
            sim.batching, rt.batching,
            "batching ledger diverged at {nodes} worker threads"
        );
        assert_eq!(
            sim.digest(),
            rt.digest(),
            "stats digest diverged at {nodes} worker threads"
        );
    }
}

#[test]
fn overloaded_batching_conserves_and_matches_simulator() {
    // A deadline tight enough to force admission rejections plus a burst
    // past capacity: the slot scheduler's occupancy feeds the admission
    // backlog identically in both engines, so even the rejected/shed
    // split must agree bitwise.
    let ds = short_prompt_dataset();
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    g.set_slo(SloBudget::with_deadline(0.08));
    let t = g.generate(1.0, 400.0);
    let cfg = batched_config(&ds, 2).with_slo(Some(OverloadConfig::default()));
    let sim = ServingEngine::new(cfg.clone()).unwrap().run(&t);
    let rt = ServeRuntime::new(cfg, ServeOptions::default())
        .unwrap()
        .serve(&t);
    assert_eq!(rt.slo.submitted, t.len() as u64);
    assert!(
        rt.slo.conserved(),
        "submitted != completed + shed + rejected"
    );
    assert_eq!(sim.slo, rt.slo, "SLO ledger diverged");
    assert_eq!(sim.digest(), rt.digest(), "stats digest diverged");
}
