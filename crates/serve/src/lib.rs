//! The multi-threaded serving runtime.
//!
//! `bat-sim` proves the design in virtual time; this crate runs the same
//! components on real OS threads, mirroring Figure 3's deployment:
//!
//! * a **scheduler thread** replays the trace open-loop, drives the shared
//!   [`bat_sim::RequestPlanner`] (policy decision + cache transactions) and
//!   dispatches jobs to the least-loaded worker;
//! * one **inference-worker thread per node** consumes its queue over a
//!   crossbeam channel, batches opportunistically under the
//!   max-batched-tokens limit, and "executes" each batch by sleeping the
//!   cost model's duration (scaled by [`ServeOptions::time_scale`] so tests
//!   run in milliseconds);
//! * the **collector** aggregates completions into the same [`bat_sim::RunStats`]
//!   the simulator emits.
//!
//! Because both stacks share the planner, their cache behavior (hit rates,
//! prefix decisions, computed tokens) is identical by construction; the
//! runtime additionally validates the concurrency architecture — channel
//! backpressure, shared meta-service locking, shutdown.

pub mod runtime;

pub use runtime::{ServeOptions, ServeRuntime};
