//! The multi-threaded serving runtime.
//!
//! `bat-sim` proves the design in virtual time; this crate runs the same
//! components on real OS threads — and, in `--processes` mode, real OS
//! processes — mirroring Figure 3's deployment:
//!
//! * a **scheduler thread** replays the trace open-loop, drives the shared
//!   [`bat_sim::RequestPlanner`] (policy decision + cache transactions) and
//!   dispatches jobs to the least-loaded worker as [`bat_net`] frames over
//!   a pluggable [`bat_net::Transport`] (in-process channels, Unix domain
//!   sockets, or TCP — see [`TransportKind`]);
//! * one **inference worker per node** — a thread or a child process —
//!   runs [`run_net_worker`]: it batches opportunistically under the
//!   max-batched-tokens limit and "executes" each batch by sleeping the
//!   cost model's duration (scaled by [`ServeOptions::time_scale`] so tests
//!   run in milliseconds);
//! * the **collector** aggregates completions into the same [`bat_sim::RunStats`]
//!   the simulator emits.
//!
//! Because both stacks share the planner, their cache behavior (hit rates,
//! prefix decisions, computed tokens) is identical by construction — and
//! identical across transports, which the integration suite pins with
//! [`bat_sim::RunStats::digest`]. The runtime additionally validates the
//! concurrency architecture: credit backpressure, exactly-once re-dispatch
//! across worker kills, shared meta-service locking, orderly shutdown.

pub mod net_worker;
pub mod runtime;

pub use net_worker::{maybe_child_worker, run_net_worker, CHILD_INDEX_ENV, CHILD_SOCKET_ENV};
pub use runtime::{ServeOptions, ServeRuntime, TransportKind};
