//! The transport-facing inference worker loop.
//!
//! One function, [`run_net_worker`], serves a worker's whole life over any
//! [`Conn`] — in-process channel, in-process socket, or a socket from a
//! child OS process. The loop speaks the bat-net vocabulary:
//!
//! 1. First frame in is a [`HelloMsg`]: worker index, the scheduler's
//!    virtual clock at send time (the worker's clock base), and the
//!    batching/cost parameters.
//! 2. [`DispatchMsg`] frames are batched opportunistically under the
//!    max-batched-tokens limit, swept for expired deadlines (expired
//!    entries complete as `Shed` without being paid for), "executed" by
//!    sleeping the priced duration, and answered with [`CompletionMsg`]s.
//! 3. A worker whose `alive` flag is lowered (in-process fault injection)
//!    bounces every dispatch back as an [`OrphanMsg`] instead of serving
//!    it — the scheduler re-dispatches; work is never dropped. Child
//!    processes don't need the flag: their crash *is* the process kill,
//!    and the parent re-issues whatever they never acknowledged.
//! 4. A [`ShutdownMsg`] — or the peer disconnecting — ends the loop.
//!
//! [`maybe_child_worker`] is the child-process entry point: binaries (and
//! the integration test) call it first thing in `main`; when the
//! `BAT_NET_WORKER_SOCKET` environment variable is set the process
//! connects back to the parent, serves until shutdown, and exits without
//! ever returning to the caller.

use bat_net::{
    CompletionMsg, Conn, DispatchMsg, HelloMsg, NetError, OrphanMsg, WireCodec, WireOutcome,
    MSG_DISPATCH, MSG_HELLO, MSG_SHUTDOWN,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Environment variable carrying the parent's Unix-socket path; its
/// presence turns the process into a worker (see [`maybe_child_worker`]).
pub const CHILD_SOCKET_ENV: &str = "BAT_NET_WORKER_SOCKET";

/// Environment variable carrying the worker index, for diagnostics.
pub const CHILD_INDEX_ENV: &str = "BAT_NET_WORKER_INDEX";

/// Serves one worker's lifetime over `conn`.
///
/// `alive` is the in-process fault-injection flag: while it reads `false`
/// the worker bounces dispatches back as orphans instead of serving them.
/// Child processes pass `None` — their failure mode is the real one.
///
/// Returns `Ok(())` on orderly shutdown *or* peer disconnect (at the end
/// of a run the scheduler may simply drop its end).
///
/// # Errors
///
/// Propagates protocol violations — a non-hello first frame, undecodable
/// payloads, unexpected frame types — as typed [`NetError`]s.
pub fn run_net_worker(conn: &dyn Conn, alive: Option<&AtomicBool>) -> Result<(), NetError> {
    let first = match conn.recv() {
        Ok(frame) => frame,
        Err(NetError::Disconnected) => return Ok(()),
        Err(e) => return Err(e),
    };
    if first.msg_type != MSG_HELLO {
        return Err(NetError::UnknownMsgType(first.msg_type));
    }
    let hello = HelloMsg::from_frame(&first)?;
    let base = Instant::now();
    // The worker's virtual clock: the scheduler's clock at hello time plus
    // locally elapsed scaled time. Skew is one frame's delivery latency.
    let vnow = move || hello.virtual_now + base.elapsed().as_secs_f64() / hello.scale;
    let is_killed = || alive.is_some_and(|a| !a.load(Ordering::Acquire));

    loop {
        let frame = match conn.recv() {
            Ok(frame) => frame,
            Err(NetError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        let first = match frame.msg_type {
            MSG_SHUTDOWN => return Ok(()),
            MSG_DISPATCH => DispatchMsg::from_frame(&frame)?,
            other => return Err(NetError::UnknownMsgType(other)),
        };
        if is_killed() {
            // Crashed (in-process injection): hand the job straight back.
            conn.send(
                OrphanMsg {
                    worker: hello.worker,
                    item: first,
                }
                .to_frame(),
            )?;
            continue;
        }
        // Opportunistic batching under max-batched-tokens.
        let mut batch = vec![first];
        let mut tokens = batch[0].suffix_tokens;
        let mut shutdown_after_batch = false;
        while tokens < hello.max_batch_tokens {
            match conn.try_recv()? {
                Some(f) if f.msg_type == MSG_DISPATCH => {
                    let item = DispatchMsg::from_frame(&f)?;
                    tokens += item.suffix_tokens;
                    batch.push(item);
                }
                Some(f) if f.msg_type == MSG_SHUTDOWN => {
                    shutdown_after_batch = true;
                    break;
                }
                Some(f) => return Err(NetError::UnknownMsgType(f.msg_type)),
                None => break,
            }
        }
        // Deadline sweep: expired entries are shed before the batch pays
        // for them — serving dead work would only delay live work.
        let sweep_now = vnow();
        let mut served = Vec::with_capacity(batch.len());
        for item in batch {
            let expired = item
                .deadline_rel
                .is_some_and(|d| sweep_now - item.arrival_virtual > d);
            if expired {
                conn.send(
                    CompletionMsg {
                        worker: hello.worker,
                        seq: item.seq,
                        suffix_tokens: item.suffix_tokens,
                        outcome: WireOutcome::Shed,
                    }
                    .to_frame(),
                )?;
            } else {
                served.push(item);
            }
        }
        if !served.is_empty() {
            let service: f64 = (hello.batch_overhead
                + served.iter().map(|j| j.service_virtual).sum::<f64>())
                * hello.slowdown;
            thread::sleep(Duration::from_secs_f64(service * hello.scale));
            let now = vnow();
            for job in served {
                // A job can never complete before it arrived; clamp out
                // cross-thread clock jitter.
                let latency = (now - job.arrival_virtual).max(0.0);
                conn.send(
                    CompletionMsg {
                        worker: hello.worker,
                        seq: job.seq,
                        suffix_tokens: job.suffix_tokens,
                        outcome: WireOutcome::Completed {
                            latency_virtual: latency,
                            missed: job.deadline_rel.is_some_and(|d| latency > d),
                        },
                    }
                    .to_frame(),
                )?;
            }
        }
        if shutdown_after_batch {
            return Ok(());
        }
    }
}

/// Child-process entry point. Call this first thing in `main` (and in the
/// integration test function re-entered by a spawned test binary): when
/// [`CHILD_SOCKET_ENV`] is set, the process connects back to the parent
/// over that Unix socket, serves as a worker, and **exits** — it never
/// returns to the caller. When the variable is absent this is a no-op.
pub fn maybe_child_worker() {
    let Ok(path) = std::env::var(CHILD_SOCKET_ENV) else {
        return;
    };
    #[cfg(unix)]
    {
        use bat_net::{Transport, UdsTransport};
        let code = match UdsTransport::new().connect(&path) {
            Ok(conn) => match run_net_worker(conn.as_ref(), None) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("bat-net child worker: {e}");
                    1
                }
            },
            Err(e) => {
                eprintln!("bat-net child worker: connect {path}: {e}");
                1
            }
        };
        std::process::exit(code);
    }
    #[cfg(not(unix))]
    {
        eprintln!("bat-net child worker requested on a non-unix platform ({path})");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_net::{ChannelConn, ShutdownMsg};

    fn hello(scale: f64, max_batch_tokens: u64) -> HelloMsg {
        HelloMsg {
            worker: 0,
            scale,
            virtual_now: 0.0,
            max_batch_tokens,
            batch_overhead: 0.0,
            slowdown: 1.0,
        }
    }

    #[test]
    fn serves_dispatches_until_shutdown() {
        let (parent, worker) = ChannelConn::pair();
        let handle = thread::spawn(move || run_net_worker(worker.as_ref(), None));
        parent.send(hello(1e-4, 1000).to_frame()).unwrap();
        for seq in 0..3u64 {
            parent
                .send(
                    DispatchMsg {
                        seq,
                        arrival_virtual: 0.0,
                        suffix_tokens: 10,
                        service_virtual: 0.001,
                        deadline_rel: None,
                    }
                    .to_frame(),
                )
                .unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..3 {
            let c = CompletionMsg::from_frame(&parent.recv().unwrap()).unwrap();
            assert!(matches!(c.outcome, WireOutcome::Completed { .. }));
            seen.push(c.seq);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        parent.send(ShutdownMsg.to_frame()).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn killed_worker_bounces_orphans() {
        let (parent, worker) = ChannelConn::pair();
        let alive = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&alive);
        let handle = thread::spawn(move || run_net_worker(worker.as_ref(), Some(&flag)));
        parent.send(hello(1e-4, 1000).to_frame()).unwrap();
        let d = DispatchMsg {
            seq: 9,
            arrival_virtual: 0.5,
            suffix_tokens: 64,
            service_virtual: 0.001,
            deadline_rel: None,
        };
        parent.send(d.to_frame()).unwrap();
        let o = OrphanMsg::from_frame(&parent.recv().unwrap()).unwrap();
        assert_eq!(o.item, d);
        // Restart: the same worker loop serves again.
        alive.store(true, Ordering::Release);
        parent.send(d.to_frame()).unwrap();
        let c = CompletionMsg::from_frame(&parent.recv().unwrap()).unwrap();
        assert_eq!(c.seq, 9);
        parent.send(ShutdownMsg.to_frame()).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn expired_deadlines_are_shed() {
        let (parent, worker) = ChannelConn::pair();
        let handle = thread::spawn(move || run_net_worker(worker.as_ref(), None));
        // Clock base 10.0: a job that arrived at 0.0 with a 1-second
        // deadline is already expired on receipt.
        parent
            .send(
                HelloMsg {
                    virtual_now: 10.0,
                    ..hello(1e-4, 1000)
                }
                .to_frame(),
            )
            .unwrap();
        parent
            .send(
                DispatchMsg {
                    seq: 1,
                    arrival_virtual: 0.0,
                    suffix_tokens: 10,
                    service_virtual: 0.001,
                    deadline_rel: Some(1.0),
                }
                .to_frame(),
            )
            .unwrap();
        let c = CompletionMsg::from_frame(&parent.recv().unwrap()).unwrap();
        assert_eq!(c.outcome, WireOutcome::Shed);
        parent.close();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn non_hello_first_frame_is_a_typed_error() {
        let (parent, worker) = ChannelConn::pair();
        let handle = thread::spawn(move || run_net_worker(worker.as_ref(), None));
        parent
            .send(
                DispatchMsg {
                    seq: 0,
                    arrival_virtual: 0.0,
                    suffix_tokens: 1,
                    service_virtual: 0.0,
                    deadline_rel: None,
                }
                .to_frame(),
            )
            .unwrap();
        assert!(matches!(
            handle.join().unwrap(),
            Err(NetError::UnknownMsgType(bat_net::MSG_DISPATCH))
        ));
    }
}
