//! Threaded serving runtime implementation.

use bat_metrics::{Percentiles, SloStats};
use bat_sim::{EngineConfig, FaultKind, OverloadController, RequestPlanner, RunStats};
use bat_types::{BatError, Bytes, RankRequest, RejectReason};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Options of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Wall-clock seconds per simulated second. `1e-3` compresses a
    /// 60-second trace into 60 ms of real sleeping (plus scheduling
    /// overhead); `1.0` runs in real time.
    pub time_scale: f64,
    /// Per-worker channel depth; the scheduler blocks when a worker's
    /// queue is full (backpressure).
    pub queue_depth: usize,
    /// Failure injection: slow worker `index` down by `factor` (a GPU
    /// throttling or a noisy neighbor). The least-loaded dispatcher must
    /// route around it without dropping work. When `None`, the engine
    /// config's [`EngineConfig::straggler`] applies instead, so one config
    /// drives both execution paths.
    pub straggler: Option<(usize, f64)>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            time_scale: 1e-3,
            queue_depth: 1024,
            straggler: None,
        }
    }
}

/// A dispatched job: priced durations plus accounting, in virtual seconds.
#[derive(Debug, Clone)]
struct WorkItem {
    arrival_virtual: f64,
    suffix_tokens: u64,
    service_virtual: f64,
    /// Completion deadline relative to arrival, virtual seconds. `None`
    /// when the request is best-effort or the control plane is off.
    deadline_rel: Option<f64>,
}

/// The terminal outcome of one submitted request. Exactly one of these is
/// delivered per trace entry — `submitted == completed + shed + rejected`
/// is the conservation law the proptest asserts.
#[derive(Debug)]
enum Completion {
    /// Served; `missed` when the deadline had already passed.
    Completed { latency_virtual: f64, missed: bool },
    /// Admitted, then swept from a worker queue after its deadline expired
    /// ([`BatError::DeadlineExceeded`]).
    Shed,
    /// Refused at admission ([`BatError::Rejected`]).
    Rejected(RejectReason),
}

/// Queue-side deadline check: the typed shed outcome for an expired entry.
///
/// # Errors
///
/// Returns [`BatError::DeadlineExceeded`] when the entry's deadline passed
/// while it sat in the queue.
fn deadline_check(item: &WorkItem, now_virtual: f64) -> Result<(), BatError> {
    match item.deadline_rel {
        Some(d) if now_virtual - item.arrival_virtual > d => Err(BatError::DeadlineExceeded),
        _ => Ok(()),
    }
}

/// Everything one worker-thread incarnation needs. Cloneable so the fault
/// supervisor can respawn a worker (fresh thread, same queue) after a
/// scheduled restart.
#[derive(Clone)]
struct WorkerCtx {
    rx: Receiver<WorkItem>,
    done_tx: Sender<Completion>,
    /// Dead-letter queue: work found in a killed worker's channel is
    /// forwarded here and redispatched by the scheduler — requests are
    /// never dropped.
    orphan_tx: Sender<WorkItem>,
    queued: Arc<AtomicU64>,
    /// Liveness flag flipped by the fault supervisor. The thread exits
    /// when it observes `false`.
    alive: Arc<AtomicBool>,
    /// Jobs dispatched but not yet completed, across all workers.
    outstanding: Arc<AtomicU64>,
    slowdown: f64,
}

/// Timing parameters shared by every worker incarnation.
#[derive(Clone, Copy)]
struct WorkerParams {
    scale: f64,
    max_batch_tokens: u64,
    batch_overhead: f64,
    start: Instant,
}

/// One worker-thread incarnation: drain the queue, batching
/// opportunistically, until the channel closes or the supervisor kills it.
fn run_worker(ctx: &WorkerCtx, p: WorkerParams) {
    while let Ok(first) = ctx.rx.recv() {
        if !ctx.alive.load(Ordering::Acquire) {
            // Killed while blocked on the queue: hand the item back to the
            // scheduler and exit.
            ctx.queued.fetch_sub(first.suffix_tokens, Ordering::Relaxed);
            let _ = ctx.orphan_tx.send(first);
            break;
        }
        // Opportunistic batching under max-batched-tokens.
        let mut batch = vec![first];
        let mut tokens = batch[0].suffix_tokens;
        while tokens < p.max_batch_tokens {
            match ctx.rx.try_recv() {
                Ok(item) => {
                    tokens += item.suffix_tokens;
                    batch.push(item);
                }
                Err(_) => break,
            }
        }
        // Deadline sweep: expired entries are shed before the batch pays
        // for them — serving dead work would only delay live work.
        let sweep_now = p.start.elapsed().as_secs_f64() / p.scale;
        let mut served = Vec::with_capacity(batch.len());
        for item in batch {
            match deadline_check(&item, sweep_now) {
                Err(BatError::DeadlineExceeded) => {
                    ctx.queued.fetch_sub(item.suffix_tokens, Ordering::Relaxed);
                    ctx.done_tx
                        .send(Completion::Shed)
                        .expect("collector outlives workers");
                    ctx.outstanding.fetch_sub(1, Ordering::Release);
                }
                _ => served.push(item),
            }
        }
        if served.is_empty() {
            if !ctx.alive.load(Ordering::Acquire) {
                break;
            }
            continue;
        }
        let service: f64 = (p.batch_overhead
            + served.iter().map(|j| j.service_virtual).sum::<f64>())
            * ctx.slowdown;
        thread::sleep(Duration::from_secs_f64(service * p.scale));
        let now = p.start.elapsed().as_secs_f64() / p.scale;
        for job in served {
            ctx.queued.fetch_sub(job.suffix_tokens, Ordering::Relaxed);
            // A job can never complete before it arrived; clamp out
            // scheduler-thread jitter.
            let latency = (now - job.arrival_virtual).max(0.0);
            ctx.done_tx
                .send(Completion::Completed {
                    latency_virtual: latency,
                    missed: job.deadline_rel.is_some_and(|d| latency > d),
                })
                .expect("collector outlives workers");
            ctx.outstanding.fetch_sub(1, Ordering::Release);
        }
        if !ctx.alive.load(Ordering::Acquire) {
            // Killed mid-batch: the in-flight responses were already
            // computed and delivered; exit now.
            break;
        }
    }
}

/// Tombstone drainer for a killed worker: forwards anything still in (or
/// later sent to) its queue to the dead-letter channel, until the worker is
/// restarted or the run ends.
fn drain_dead_worker(ctx: &WorkerCtx) {
    while !ctx.alive.load(Ordering::Acquire) {
        match ctx.rx.try_recv() {
            Ok(item) => {
                ctx.queued.fetch_sub(item.suffix_tokens, Ordering::Relaxed);
                if ctx.orphan_tx.send(item).is_err() {
                    return;
                }
            }
            Err(TryRecvError::Empty) => thread::sleep(Duration::from_micros(200)),
            Err(TryRecvError::Disconnected) => return,
        }
    }
}

/// The threaded serving runtime.
///
/// ```
/// use bat_serve::{ServeOptions, ServeRuntime};
/// use bat_sim::{EngineConfig, SystemKind};
/// use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
/// use bat_workload::{TraceGenerator, Workload};
///
/// let ds = DatasetConfig::games();
/// let cfg = EngineConfig::for_system(
///     SystemKind::Bat,
///     ModelConfig::qwen2_1_5b(),
///     ClusterConfig::a100_4node().with_nodes(2),
///     &ds,
/// );
/// let mut gen = TraceGenerator::new(Workload::new(ds, 1), 2);
/// let trace = gen.generate(1.0, 20.0);
/// let stats = ServeRuntime::new(cfg, ServeOptions::default())
///     .expect("preset configs validate")
///     .serve(&trace);
/// assert_eq!(stats.completed, trace.len());
/// ```
pub struct ServeRuntime {
    cfg: EngineConfig,
    opts: ServeOptions,
}

impl ServeRuntime {
    /// Builds a runtime from a validated engine configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineConfig::validate`] failures, and rejects
    /// non-positive time scales.
    pub fn new(cfg: EngineConfig, opts: ServeOptions) -> Result<Self, BatError> {
        cfg.validate()?;
        if opts.time_scale <= 0.0 || !opts.time_scale.is_finite() {
            return Err(BatError::InvalidConfig(
                "time_scale must be positive and finite".to_owned(),
            ));
        }
        if opts.queue_depth == 0 {
            return Err(BatError::InvalidConfig(
                "queue_depth must be positive".to_owned(),
            ));
        }
        if let Some((w, factor)) = opts.straggler {
            if w >= cfg.cluster.num_nodes {
                return Err(BatError::InvalidConfig(format!(
                    "straggler worker {w} out of range"
                )));
            }
            if factor < 1.0 || !factor.is_finite() {
                return Err(BatError::InvalidConfig(
                    "straggler factor must be ≥ 1".to_owned(),
                ));
            }
        }
        Ok(ServeRuntime { cfg, opts })
    }

    /// The engine configuration this runtime serves.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Serves a trace to completion and returns aggregate statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn serve(&self, trace: &[RankRequest]) -> RunStats {
        for w in trace.windows(2) {
            assert!(
                w[1].arrival >= w[0].arrival,
                "trace must be sorted by arrival"
            );
        }
        let n_workers = self.cfg.cluster.num_nodes;
        let scale = self.opts.time_scale;
        let schedule = self.cfg.faults.clone();

        let planner = Mutex::new(RequestPlanner::from_config(&self.cfg));
        let queued_tokens: Vec<Arc<AtomicU64>> = (0..n_workers)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        let alive: Vec<Arc<AtomicBool>> = (0..n_workers)
            .map(|_| Arc::new(AtomicBool::new(true)))
            .collect();
        let outstanding = Arc::new(AtomicU64::new(0));
        // True once every scheduled fault has been delivered (immediately,
        // when there is no schedule).
        let supervisor_done = Arc::new(AtomicBool::new(
            schedule.as_ref().is_none_or(|s| s.is_empty()),
        ));

        let mut worker_txs: Vec<Sender<WorkItem>> = Vec::with_capacity(n_workers);
        let mut worker_rxs: Vec<Receiver<WorkItem>> = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx) = bounded::<WorkItem>(self.opts.queue_depth);
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }
        // Exactly one terminal event per submitted request, so the channel
        // is sized from the submitted work itself — a depth derived from
        // queue_depth * n_workers deadlocks the moment a burst outruns it.
        let (done_tx, done_rx) = bounded::<Completion>(trace.len().max(1));
        let (orphan_tx, orphan_rx) = unbounded::<WorkItem>();

        let params = WorkerParams {
            scale,
            max_batch_tokens: self.cfg.cluster.max_batched_tokens as u64,
            batch_overhead: self.cfg.batch_overhead_secs,
            start: Instant::now(),
        };
        let start = params.start;
        let virtual_now = move || start.elapsed().as_secs_f64() / scale;

        // One straggler knob for both execution paths: explicit runtime
        // options win, otherwise the engine config's injection applies.
        let straggler = self.opts.straggler.or(self.cfg.straggler);
        let straggler_factor = move |w: usize| match straggler {
            Some((idx, factor)) if idx == w => factor,
            _ => 1.0,
        };
        let worker_ctx: Vec<WorkerCtx> = (0..n_workers)
            .map(|w| WorkerCtx {
                rx: worker_rxs[w].clone(),
                done_tx: done_tx.clone(),
                orphan_tx: orphan_tx.clone(),
                queued: Arc::clone(&queued_tokens[w]),
                alive: Arc::clone(&alive[w]),
                outstanding: Arc::clone(&outstanding),
                slowdown: straggler_factor(w),
            })
            .collect();
        // The scheduler delivers the terminal event for rejected arrivals
        // itself (they never reach a worker).
        let sched_done_tx = done_tx.clone();
        drop(worker_rxs);
        drop(done_tx);
        drop(orphan_tx);

        // Shared accounting filled by the scheduler thread.
        let totals = Mutex::new(SchedTotals::default());

        let stats = thread::scope(|scope| {
            // Inference workers: drain their queue, batching opportunistically.
            for ctx in &worker_ctx {
                let ctx = ctx.clone();
                scope.spawn(move || run_worker(&ctx, params));
            }

            // Fault supervisor: walks the schedule in scaled wall-clock
            // time, killing and respawning real worker threads. The cache
            // accounting of each fault lives in the planner (driven by
            // nominal request arrivals); this thread only makes the failure
            // physically real.
            if let Some(schedule) = schedule.clone() {
                let ctxs = worker_ctx.clone();
                let done_flag = Arc::clone(&supervisor_done);
                scope.spawn(move || {
                    for event in schedule.events() {
                        let target = event.at_secs * scale;
                        loop {
                            let elapsed = start.elapsed().as_secs_f64();
                            if elapsed >= target {
                                break;
                            }
                            thread::sleep(Duration::from_secs_f64((target - elapsed).min(0.002)));
                        }
                        match event.kind {
                            FaultKind::WorkerCrash(w) => {
                                let ctx = ctxs[w.index()].clone();
                                ctx.alive.store(false, Ordering::Release);
                                // Tombstone drainer: bounce queued work back
                                // to the scheduler while the worker is down.
                                scope.spawn(move || drain_dead_worker(&ctx));
                            }
                            FaultKind::WorkerRestart(w) => {
                                let ctx = ctxs[w.index()].clone();
                                ctx.alive.store(true, Ordering::Release);
                                scope.spawn(move || run_worker(&ctx, params));
                            }
                            // Link, partition and meta faults have no
                            // thread-level effect; the planner (which hosts
                            // the replicated meta group and the reachability
                            // matrix) prices/plans them on nominal time.
                            // Slowed links included: hedged pulls and backoff
                            // retries are planner decisions, not thread ones.
                            FaultKind::LinkDegrade { .. }
                            | FaultKind::LinkRestore
                            | FaultKind::MetaStall { .. }
                            | FaultKind::MetaCrash(_)
                            | FaultKind::MetaRestart(_)
                            | FaultKind::CutLink { .. }
                            | FaultKind::HealLink { .. }
                            | FaultKind::SlowLink { .. } => {}
                        }
                    }
                    done_flag.store(true, Ordering::Release);
                });
            }

            // Scheduler thread: replay arrivals, plan, dispatch.
            let planner_ref = &planner;
            let totals_ref = &totals;
            let queued_ref = &queued_tokens;
            let alive_ref = &alive;
            let outstanding_ref = &outstanding;
            let supervisor_done_ref = &supervisor_done;
            scope.spawn(move || {
                let mut rotate = 0usize;
                // The admission controller runs on *nominal* arrival times
                // with planner cost estimates — identical inputs to the
                // simulator's controller, so for the same trace + schedule
                // the two paths reject the exact same requests.
                let mut controller = self.cfg.slo.map(|c| {
                    let cap = {
                        let p = planner_ref.lock();
                        (0..n_workers)
                            .filter(|&i| p.is_worker_alive(i))
                            .map(|i| 1.0 / straggler_factor(i))
                            .sum()
                    };
                    OverloadController::new(c, cap)
                });
                // Least-loaded dispatch (§5.1 load balancing) over the
                // currently-live workers. Ties rotate instead of always
                // picking the lowest index, so an idle-but-slow worker does
                // not swallow every tied dispatch.
                let dispatch = |item: WorkItem, rotate: &mut usize| {
                    let live: Vec<usize> = (0..n_workers)
                        .filter(|&i| alive_ref[i].load(Ordering::Acquire))
                        .collect();
                    // A validated schedule never kills the whole cluster;
                    // fall back to anyone just in case of flag races.
                    let candidates: &[usize] = if live.is_empty() {
                        &(0..n_workers).collect::<Vec<_>>()
                    } else {
                        &live
                    };
                    // Snapshot every candidate's load once: workers decrement
                    // these atomics concurrently, so re-reading them while
                    // filtering can leave no candidate equal to a stale
                    // minimum (an empty tie set, and a panicking dispatch).
                    let loads: Vec<(usize, u64)> = candidates
                        .iter()
                        .map(|&i| (i, queued_ref[i].load(Ordering::Relaxed)))
                        .collect();
                    let min_load = loads
                        .iter()
                        .map(|&(_, load)| load)
                        .min()
                        .expect("at least one candidate");
                    let tied: Vec<usize> = loads
                        .iter()
                        .filter(|&&(_, load)| load == min_load)
                        .map(|&(i, _)| i)
                        .collect();
                    let w = tied[*rotate % tied.len()];
                    *rotate = rotate.wrapping_add(1);
                    queued_ref[w].fetch_add(item.suffix_tokens, Ordering::Relaxed);
                    worker_txs[w].send(item).expect("worker outlives scheduler");
                };
                for req in trace {
                    let arrival = req.arrival.as_secs();
                    // Open-loop pacing in scaled time.
                    loop {
                        let now = virtual_now();
                        if now >= arrival {
                            break;
                        }
                        thread::sleep(Duration::from_secs_f64(
                            ((arrival - now) * scale).min(0.005),
                        ));
                    }
                    let now = virtual_now();
                    // Plan on the *nominal* arrival time, never the jittery
                    // virtual clock: the fault cursor then advances through
                    // the same states as the simulator's, which is what
                    // keeps the two paths' cache accounting identical.
                    let admitted = {
                        let mut p = planner_ref.lock();
                        if let Some(ctl) = controller.as_mut() {
                            // Admission sees the fault state planning would.
                            p.advance_faults(arrival);
                            ctl.set_capacity(
                                (0..n_workers)
                                    .filter(|&i| p.is_worker_alive(i))
                                    .map(|i| 1.0 / straggler_factor(i))
                                    .sum(),
                            );
                            let est = p.admission_estimate_secs(req);
                            let decision = ctl.on_arrival(
                                arrival,
                                est,
                                req.slo.deadline_secs,
                                req.slo.priority,
                            );
                            match decision.into_result() {
                                Ok(()) => {
                                    p.set_brownout_rung(ctl.rung());
                                }
                                Err(BatError::Rejected { reason }) => {
                                    drop(p);
                                    sched_done_tx
                                        .send(Completion::Rejected(reason))
                                        .expect("collector outlives scheduler");
                                    continue;
                                }
                                Err(_) => unreachable!("into_result only rejects"),
                            }
                        }
                        let planned = p.plan(req, arrival);
                        let price = p.price(&planned);
                        (planned, price)
                    };
                    let (planned, price) = admitted;
                    {
                        let mut t = totals_ref.lock();
                        t.accepted += 1;
                        t.total_tokens += req.total_tokens() as u64;
                        t.reused_tokens += planned.reused_tokens();
                        t.computed_tokens += planned.suffix_tokens;
                        t.remote_bytes += planned.remote_bytes;
                        t.compute_secs += price.0;
                        t.load_secs += price.1;
                        t.net_secs += price.2;
                        if self.cfg.caching {
                            match planned.prefix {
                                bat_types::PrefixKind::User => t.up_requests += 1,
                                bat_types::PrefixKind::Item => t.ip_requests += 1,
                            }
                        }
                    }
                    outstanding_ref.fetch_add(1, Ordering::AcqRel);
                    dispatch(
                        WorkItem {
                            arrival_virtual: now,
                            suffix_tokens: planned.suffix_tokens,
                            service_virtual: price.0 + price.1 + price.2,
                            deadline_rel: if controller.is_some() {
                                req.slo.deadline_secs
                            } else {
                                None
                            },
                        },
                        &mut rotate,
                    );
                    // Re-dispatch anything a dead worker bounced back.
                    while let Ok(item) = orphan_rx.try_recv() {
                        dispatch(item, &mut rotate);
                    }
                }
                // Post-trace drain: keep re-dispatching orphans until every
                // dispatched job has completed and every scheduled fault
                // has been delivered. Requests are never dropped, even when
                // the last arrivals landed on a worker that then died.
                loop {
                    while let Ok(item) = orphan_rx.try_recv() {
                        dispatch(item, &mut rotate);
                    }
                    if outstanding_ref.load(Ordering::Acquire) == 0
                        && supervisor_done_ref.load(Ordering::Acquire)
                    {
                        break;
                    }
                    thread::sleep(Duration::from_micros(500));
                }
                drop(worker_txs); // closes queues → workers drain and exit
            });

            // Collector: the scope's main flow. Exactly one terminal event
            // per trace request arrives — served, shed, or rejected; faults
            // re-route work, they never drop it — so count them out rather
            // than waiting for channel disconnect (the fault supervisor
            // keeps sender clones alive).
            let mut latencies = Percentiles::new();
            let mut completed = 0usize;
            let mut slo = SloStats {
                submitted: trace.len() as u64,
                ..SloStats::default()
            };
            for _ in 0..trace.len() {
                match done_rx.recv() {
                    Ok(Completion::Completed {
                        latency_virtual,
                        missed,
                    }) => {
                        latencies.record(latency_virtual);
                        completed += 1;
                        slo.completed += 1;
                        if missed {
                            slo.deadline_misses += 1;
                        }
                    }
                    Ok(Completion::Shed) => slo.shed_expired += 1,
                    Ok(Completion::Rejected(reason)) => match reason {
                        RejectReason::QueueFull => slo.rejected_queue_full += 1,
                        RejectReason::DeadlineInfeasible => slo.rejected_infeasible += 1,
                        RejectReason::BrownoutShed => slo.rejected_brownout += 1,
                    },
                    Err(_) => break,
                }
            }
            let span = virtual_now() - trace.first().map_or(0.0, |r| r.arrival.as_secs());
            let t = totals.lock();
            let mut stats = RunStats::from_counters(
                self.cfg.label.clone(),
                completed,
                span.max(1e-9),
                t.total_tokens,
                t.reused_tokens,
                t.computed_tokens,
                t.remote_bytes,
                t.compute_secs,
                t.net_secs,
                t.load_secs,
                t.up_requests,
                t.ip_requests,
                &mut latencies,
            );
            if self.cfg.slo.is_some() {
                slo.accepted = t.accepted;
                stats.slo = slo;
            }
            drop(t);
            if let Some(report) = planner.lock().finish_faults() {
                stats.faults = report;
            }
            stats
        });
        stats
    }
}

#[derive(Debug, Default)]
struct SchedTotals {
    total_tokens: u64,
    reused_tokens: u64,
    computed_tokens: u64,
    remote_bytes: Bytes,
    compute_secs: f64,
    net_secs: f64,
    load_secs: f64,
    up_requests: usize,
    ip_requests: usize,
    /// Requests admitted past the overload controller (all of them when
    /// the control plane is off). Counted at the admission point so the
    /// conservation law `accepted == completed + shed` is a real check,
    /// not an identity.
    accepted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_sim::{ServingEngine, SystemKind};
    use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
    use bat_workload::{TraceGenerator, Workload};

    fn small_cluster() -> ClusterConfig {
        let mut c = ClusterConfig::a100_4node();
        c.num_nodes = 2;
        c.node.kv_cache_capacity = Bytes::from_gb(20);
        c
    }

    fn config(kind: SystemKind, ds: &DatasetConfig) -> EngineConfig {
        EngineConfig::for_system(kind, ModelConfig::qwen2_1_5b(), small_cluster(), ds)
    }

    fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.generate(secs, rate)
    }

    #[test]
    fn serves_all_requests() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 2.0, 20.0);
        let rt = ServeRuntime::new(config(SystemKind::Bat, &ds), ServeOptions::default()).unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len());
        assert!(stats.p99_latency_ms > 0.0);
    }

    #[test]
    fn cache_accounting_matches_simulator() {
        // Same planner, same trace, same arrival order → identical token
        // accounting between the threaded runtime and the DES.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 3.0, 30.0);
        let mut sim = ServingEngine::new(config(SystemKind::UserPrefix, &ds)).unwrap();
        let sim_stats = sim.run(&t);
        let rt = ServeRuntime::new(config(SystemKind::UserPrefix, &ds), ServeOptions::default())
            .unwrap();
        let rt_stats = rt.serve(&t);
        assert_eq!(rt_stats.total_tokens, sim_stats.total_tokens);
        // Frequency estimates see slightly different clocks, but with the
        // static UP policy reuse depends only on LRU residency → exact.
        assert_eq!(rt_stats.reused_tokens, sim_stats.reused_tokens);
        assert_eq!(rt_stats.up_requests, sim_stats.up_requests);
    }

    #[test]
    fn cache_accounting_matches_simulator_under_faults() {
        // The same fault schedule drives both engines through identical
        // planner states (the fault cursor advances on nominal arrival
        // times in both), so cache accounting — and the fault report
        // itself — must agree bit-for-bit even though this runtime kills
        // and respawns real threads while the DES only reshuffles a heap.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 4.0, 30.0);
        let schedule =
            bat_sim::FaultSchedule::single_crash(2, bat_types::WorkerId::new(1), 1.0, 2.5).unwrap();
        let cfg = |s: &bat_sim::FaultSchedule| {
            config(SystemKind::UserPrefix, &ds).with_faults(Some(s.clone()))
        };
        let sim_stats = ServingEngine::new(cfg(&schedule)).unwrap().run(&t);
        let rt_stats = ServeRuntime::new(cfg(&schedule), ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt_stats.completed, t.len(), "faults must never drop work");
        assert_eq!(rt_stats.total_tokens, sim_stats.total_tokens);
        assert_eq!(rt_stats.reused_tokens, sim_stats.reused_tokens);
        assert_eq!(rt_stats.up_requests, sim_stats.up_requests);
        assert_eq!(rt_stats.faults, sim_stats.faults);
        assert!(!rt_stats.faults.is_quiet(), "the crash must be observed");
    }

    #[test]
    fn recompute_runtime_reuses_nothing() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 20.0);
        let rt =
            ServeRuntime::new(config(SystemKind::Recompute, &ds), ServeOptions::default()).unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.reused_tokens, 0);
        assert_eq!(stats.completed, t.len());
    }

    #[test]
    fn rejects_bad_options() {
        let ds = DatasetConfig::games();
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 0.0,
                queue_depth: 8,
                straggler: None
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 1e-3,
                queue_depth: 0,
                straggler: None
            }
        )
        .is_err());
    }

    #[test]
    fn straggler_worker_is_routed_around() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 2.0, 60.0);
        let healthy = ServeRuntime::new(config(SystemKind::Bat, &ds), ServeOptions::default())
            .unwrap()
            .serve(&t);
        let degraded = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((0, 5.0)),
                ..ServeOptions::default()
            },
        )
        .unwrap()
        .serve(&t);
        // No work is lost, and a 5x slowdown of one of two workers must not
        // degrade tail latency by anything close to 5x (dispatch routes
        // around it). Interpolated P90, not nearest-rank P99: the
        // nearest-rank tail snapped to a single worst-case thread wakeup
        // and flaked on loaded hosts, while the mean this test used to
        // assert on hid genuine routing regressions. The interpolated
        // estimate moves continuously with the sample values, so one
        // jittery sample shifts it proportionally, not wholesale.
        assert_eq!(degraded.completed, t.len());
        assert!(
            degraded.p90_latency_ms < healthy.p90_latency_ms * 4.0 + 2.0 * healthy.mean_latency_ms,
            "straggler p90 {} vs healthy p90 {} (mean {})",
            degraded.p90_latency_ms,
            healthy.p90_latency_ms,
            healthy.mean_latency_ms
        );
    }

    #[test]
    fn straggler_options_are_validated() {
        let ds = DatasetConfig::games();
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((99, 2.0)),
                ..ServeOptions::default()
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((0, 0.5)),
                ..ServeOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn slo_control_plane_rejects_and_conserves_under_burst() {
        use bat_sim::OverloadConfig;
        use bat_types::{Priority, SloBudget};
        let ds = DatasetConfig::games();
        // A burst far beyond two workers' capacity, every request carrying
        // a tight deadline: the controller must shed, and every submitted
        // request must still reach exactly one terminal outcome.
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.set_slo(SloBudget::with_deadline(0.05).at_priority(Priority::Low));
        let t = g.generate(1.0, 400.0);
        let cfg = config(SystemKind::Bat, &ds).with_slo(Some(OverloadConfig::default()));
        let stats = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(stats.slo.submitted, t.len() as u64);
        assert!(
            stats.slo.conserved(),
            "conservation violated: {:?}",
            stats.slo
        );
        assert!(
            stats.slo.rejected() > 0,
            "a 400 qps burst on 2 workers must trip admission control"
        );
        assert!(stats.completed < t.len(), "shedding must actually shed");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        /// The conservation law across random fault schedules with the SLO
        /// control plane on: `submitted == completed + shed + rejected` and
        /// `accepted == completed + shed`, no matter which workers crash
        /// when. Few cases — each spins up a real threaded runtime — but
        /// each case covers a different crash/restart interleaving.
        #[test]
        fn conservation_holds_across_random_fault_schedules(seed in 0u64..1000) {
            use bat_sim::OverloadConfig;
            use bat_types::SloBudget;
            let ds = DatasetConfig::games();
            let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), seed.wrapping_add(7));
            g.set_slo(SloBudget::with_deadline(0.2));
            let t = g.generate(2.0, 60.0);
            let schedule = bat_sim::FaultSchedule::random(seed, 2, 2.0, 1);
            let cfg = config(SystemKind::Bat, &ds)
                .with_faults(Some(schedule))
                .with_slo(Some(OverloadConfig::default()));
            let stats = ServeRuntime::new(cfg, ServeOptions::default())
                .unwrap()
                .serve(&t);
            proptest::prop_assert_eq!(stats.slo.submitted, t.len() as u64);
            proptest::prop_assert!(stats.slo.conserved(), "not conserved: {:?}", stats.slo);
        }
    }

    #[test]
    fn overload_applies_backpressure_but_completes() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 300.0);
        let rt = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 1e-4,
                queue_depth: 4,
                straggler: None,
            },
        )
        .unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len(), "backpressure must not drop work");
    }
}
