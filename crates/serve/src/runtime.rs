//! Threaded serving runtime over the pluggable transport layer.
//!
//! The scheduler, workers, and collector are wired through [`bat_net`]'s
//! [`Transport`] trait: every dispatch, completion, orphan bounce, and
//! shutdown crosses a [`Conn`] as an encoded frame. The backend is a
//! construction-time choice ([`TransportKind`]):
//!
//! * **Channel** — in-process crossbeam channels, the deterministic
//!   oracle. No byte serialization, no sockets; immune to transport bugs
//!   by construction.
//! * **Uds / Tcp** — the same frames over real OS sockets. With
//!   [`ServeOptions::processes`], workers run as **child OS processes**
//!   connected over Unix domain sockets: a worker crash is a process
//!   kill, and a rejoin is a fresh process accepted on the same listener.
//!
//! The scheduler plans on *nominal* arrival times with the shared
//! [`bat_sim::RequestPlanner`], so every planner-side statistic —
//! token accounting, admission decisions, the fault report — is identical
//! across backends for the same seeded trace; the integration suite pins
//! [`RunStats::digest`] equality between the channel oracle and each
//! socket path, including under worker-kill fault schedules.
//!
//! Exactly-once delivery across crashes: the parent records every
//! dispatched frame in a per-link un-acknowledged map tagged with the
//! link's connection incarnation. A completion or orphan bounce retires
//! the entry; a link going down requeues every entry of that incarnation
//! for re-dispatch. Work is never dropped and never double-served.

use crate::net_worker::{run_net_worker, CHILD_INDEX_ENV, CHILD_SOCKET_ENV};
use bat_metrics::{BatchStats, Percentiles, SloStats};
use bat_net::{
    ChannelTransport, CompletionMsg, Conn, DispatchMsg, HelloMsg, Listener, OrphanMsg, ShutdownMsg,
    TcpTransport, Transport, WireCodec, WireOutcome, MSG_COMPLETION, MSG_ORPHAN,
};
use bat_sim::{
    BatchScheduler, EngineConfig, FaultKind, OverloadController, RequestPlanner, RoundRecord,
    RunStats,
};
use bat_types::{BatError, Bytes, PrefixKind, RankRequest, RejectReason};
use crossbeam::channel::{unbounded, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Which transport backend carries frames between scheduler and workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process crossbeam channels — the deterministic oracle.
    #[default]
    Channel,
    /// Unix domain sockets (unix only). Required for
    /// [`ServeOptions::processes`].
    Uds,
    /// Loopback TCP sockets.
    Tcp,
}

/// Options of the threaded runtime.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Wall-clock seconds per simulated second. `1e-3` compresses a
    /// 60-second trace into 60 ms of real sleeping (plus scheduling
    /// overhead); `1.0` runs in real time.
    pub time_scale: f64,
    /// Per-worker dispatch credit: the scheduler stops sending to a worker
    /// holding this many unfinished jobs (backpressure).
    pub queue_depth: usize,
    /// Failure injection: slow worker `index` down by `factor` (a GPU
    /// throttling or a noisy neighbor). The least-loaded dispatcher must
    /// route around it without dropping work. When `None`, the engine
    /// config's [`EngineConfig::straggler`] applies instead, so one config
    /// drives both execution paths.
    pub straggler: Option<(usize, f64)>,
    /// Which backend carries the frames.
    pub transport: TransportKind,
    /// Run each worker as a child OS process connected over a Unix domain
    /// socket (requires [`TransportKind::Uds`]). The child re-executes the
    /// current binary with [`ServeOptions::child_args`]; the entry path
    /// must call [`crate::maybe_child_worker`] before doing anything else.
    pub processes: bool,
    /// Arguments passed to the re-executed binary in `processes` mode.
    /// For a `cargo test` binary this is
    /// `[test_fn_name, "--exact", "--test-threads=1", "--quiet"]`, which
    /// re-enters the very test function that spawned the child.
    pub child_args: Vec<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            time_scale: 1e-3,
            queue_depth: 1024,
            straggler: None,
            transport: TransportKind::Channel,
            processes: false,
            child_args: Vec::new(),
        }
    }
}

/// How long setup waits for a spawned worker (thread or process) to
/// connect back, and a restarted child to rejoin.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

/// Everything the parent tracks about one worker link.
struct Link {
    /// Connection incarnation + current conn, swapped together under one
    /// lock so an un-acknowledged entry is always tagged with the
    /// incarnation of the conn its frame was actually sent on.
    conn: Mutex<(u64, Option<Arc<dyn Conn>>)>,
    /// Suffix tokens dispatched but not yet finished — the least-loaded
    /// dispatch weight.
    queued: AtomicU64,
    /// Jobs dispatched but not yet finished on this link (backpressure
    /// credit).
    inflight: AtomicU64,
    /// Liveness, flipped by the fault supervisor (in-process: shared with
    /// the worker thread, which bounces work while false) and by the
    /// collector when a link drops unexpectedly.
    alive: Arc<AtomicBool>,
    /// Dispatched-but-unfinished frames, `seq → (incarnation, msg)`;
    /// requeued when incarnation `≤` a dead conn's.
    unacked: Mutex<HashMap<u64, (u64, DispatchMsg)>>,
    /// The worker's OS process, in `processes` mode.
    child: Mutex<Option<std::process::Child>>,
}

impl Link {
    fn new() -> Self {
        Link {
            conn: Mutex::new((0, None)),
            queued: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            alive: Arc::new(AtomicBool::new(true)),
            unacked: Mutex::new(HashMap::new()),
            child: Mutex::new(None),
        }
    }

    /// Snapshot of `(incarnation, conn)` for a send.
    fn current(&self) -> (u64, Option<Arc<dyn Conn>>) {
        let g = self.conn.lock();
        (g.0, g.1.clone())
    }
}

/// What the collector consumes: everything that changes per-link
/// accounting funnels through this one channel, so the collector is the
/// single writer for retirement bookkeeping.
enum Event {
    /// A worker finished (served or shed) a job.
    Done(CompletionMsg),
    /// A crashed in-process worker bounced a job back unserved.
    Orphan(OrphanMsg),
    /// A link's connection died; requeue that incarnation's unacked work.
    Down { worker: usize, incarnation: u64 },
    /// The scheduler refused a request at admission.
    Rejected(RejectReason),
}

/// Reads one connection until it dies, forwarding worker frames to the
/// collector. Stream order guarantees completions sent before a crash are
/// processed before the crash's `Down`.
fn run_reader(conn: Arc<dyn Conn>, worker: usize, incarnation: u64, events: Sender<Event>) {
    loop {
        let event = match conn.recv() {
            Ok(frame) => match frame.msg_type {
                MSG_COMPLETION => CompletionMsg::from_frame(&frame).map(Event::Done),
                MSG_ORPHAN => OrphanMsg::from_frame(&frame).map(Event::Orphan),
                other => Err(bat_net::NetError::UnknownMsgType(other)),
            },
            Err(e) => Err(e),
        };
        match event {
            Ok(event) => {
                if events.send(event).is_err() {
                    return;
                }
            }
            Err(_) => {
                // Disconnect or protocol violation: either way this conn
                // is done; the collector requeues its unfinished work.
                let _ = events.send(Event::Down {
                    worker,
                    incarnation,
                });
                return;
            }
        }
    }
}

/// Spawns one child worker process re-executing the current binary.
fn spawn_child(
    child_args: &[String],
    socket: &str,
    index: usize,
) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    std::process::Command::new(exe)
        .args(child_args)
        .env(CHILD_SOCKET_ENV, socket)
        .env(CHILD_INDEX_ENV, index.to_string())
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .spawn()
}

/// Monotonic tag making concurrent runs' socket paths unique within one
/// parent process.
fn next_run_tag() -> u64 {
    static TAG: AtomicU64 = AtomicU64::new(0);
    TAG.fetch_add(1, Ordering::Relaxed)
}

/// Everything the physical fault supervisor needs to break — and mend —
/// real workers while the planner prices the same schedule on nominal
/// time. Shared between the per-request and the batched serve paths.
struct SupervisorCtx<'a> {
    schedule: bat_sim::FaultSchedule,
    scale: f64,
    start: Instant,
    links: &'a [Link],
    listeners: &'a [Box<dyn Listener>],
    processes: bool,
    child_args: Vec<String>,
    dial: Vec<String>,
    events: Sender<Event>,
    done: Arc<AtomicBool>,
}

/// Walks the fault schedule in scaled wall-clock time, making membership
/// events physically real: crashes kill worker threads (liveness flag) or
/// child processes (SIGKILL); drains stop new seating and let the worker
/// finish what it holds before exiting; restarts and joins wire a fresh
/// worker (thread flag flip, or a respawned child accepted on the same
/// listener under a bumped link incarnation) back into the cluster. All
/// *accounting* for these events lives in the planner and the batch
/// machine, driven on nominal time — this thread only touches the world.
fn spawn_fault_supervisor<'scope>(
    scope: &'scope thread::Scope<'scope, '_>,
    ctx: SupervisorCtx<'scope>,
    hello: impl Fn(usize, f64) -> HelloMsg + Send + 'scope,
) {
    scope.spawn(move || {
        let SupervisorCtx {
            schedule,
            scale,
            start,
            links,
            listeners,
            processes,
            child_args,
            dial,
            events,
            done,
        } = ctx;
        for event in schedule.events() {
            let target = event.at_secs * scale;
            loop {
                let elapsed = start.elapsed().as_secs_f64();
                if elapsed >= target {
                    break;
                }
                thread::sleep(Duration::from_secs_f64((target - elapsed).min(0.002)));
            }
            match event.kind {
                FaultKind::WorkerCrash(w) => {
                    let link = &links[w.index()];
                    link.alive.store(false, Ordering::Release);
                    if processes {
                        // Real crash: SIGKILL. The link's reader observes
                        // the disconnect and the collector requeues
                        // whatever the child never finished.
                        if let Some(mut child) = link.child.lock().take() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                    }
                    // In-process workers bounce dispatches as orphans
                    // while their flag is down.
                }
                FaultKind::WorkerDrain(w) => {
                    // Planned departure: stop seating new work, then let
                    // the worker finish what it already holds. A child
                    // process gets the shutdown frame *behind* its queued
                    // frames — it serves them, acks, and exits cleanly;
                    // its conn closing then requeues anything it never
                    // processed. In-process workers bounce dispatches
                    // that race past the flag.
                    let link = &links[w.index()];
                    link.alive.store(false, Ordering::Release);
                    if processes {
                        if let (_, Some(conn)) = link.current() {
                            let _ = conn.send(ShutdownMsg.to_frame());
                        }
                    }
                }
                FaultKind::WorkerRestart(w) | FaultKind::WorkerJoin(w) => {
                    let w = w.index();
                    let link = &links[w];
                    if processes {
                        // Planned scale-out (or a scheduled recovery):
                        // spawn a fresh process, accept it on the same
                        // listener, and swap the link to the new
                        // incarnation.
                        match spawn_child(&child_args, &dial[w], w) {
                            Ok(child) => match listeners[w].accept_timeout(ACCEPT_TIMEOUT) {
                                Ok(conn) => {
                                    let vnow = start.elapsed().as_secs_f64() / scale;
                                    if conn.send(hello(w, vnow).to_frame()).is_ok() {
                                        let inc = {
                                            let mut g = link.conn.lock();
                                            g.0 += 1;
                                            g.1 = Some(Arc::clone(&conn));
                                            g.0
                                        };
                                        *link.child.lock() = Some(child);
                                        link.alive.store(true, Ordering::Release);
                                        let events = events.clone();
                                        scope.spawn(move || {
                                            run_reader(conn, w, inc, events);
                                        });
                                    }
                                }
                                Err(e) => {
                                    eprintln!("worker {w} rejoin accept failed: {e}");
                                }
                            },
                            Err(e) => {
                                eprintln!("worker {w} respawn failed: {e}");
                            }
                        }
                    } else {
                        link.alive.store(true, Ordering::Release);
                    }
                }
                // Link, partition and meta faults have no thread-level
                // effect; the planner (which hosts the replicated meta
                // group and the reachability matrix) prices/plans them on
                // nominal time. Slowed links included: hedged pulls and
                // backoff retries are planner decisions, not thread ones.
                FaultKind::LinkDegrade { .. }
                | FaultKind::LinkRestore
                | FaultKind::MetaStall { .. }
                | FaultKind::MetaCrash(_)
                | FaultKind::MetaRestart(_)
                | FaultKind::CutLink { .. }
                | FaultKind::HealLink { .. }
                | FaultKind::SlowLink { .. } => {}
            }
        }
        done.store(true, Ordering::Release);
    });
}

/// The threaded serving runtime.
///
/// ```
/// use bat_serve::{ServeOptions, ServeRuntime};
/// use bat_sim::{EngineConfig, SystemKind};
/// use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
/// use bat_workload::{TraceGenerator, Workload};
///
/// let ds = DatasetConfig::games();
/// let cfg = EngineConfig::for_system(
///     SystemKind::Bat,
///     ModelConfig::qwen2_1_5b(),
///     ClusterConfig::a100_4node().with_nodes(2),
///     &ds,
/// );
/// let mut gen = TraceGenerator::new(Workload::new(ds, 1), 2);
/// let trace = gen.generate(1.0, 20.0);
/// let stats = ServeRuntime::new(cfg, ServeOptions::default())
///     .expect("preset configs validate")
///     .serve(&trace);
/// assert_eq!(stats.completed, trace.len());
/// ```
pub struct ServeRuntime {
    cfg: EngineConfig,
    opts: ServeOptions,
}

impl ServeRuntime {
    /// Builds a runtime from a validated engine configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineConfig::validate`] failures, and rejects
    /// non-positive time scales, zero queue depths, out-of-range straggler
    /// options, and transport combinations this platform cannot run
    /// (`processes` without [`TransportKind::Uds`]; any socket backend
    /// requirement the OS lacks).
    pub fn new(cfg: EngineConfig, opts: ServeOptions) -> Result<Self, BatError> {
        cfg.validate()?;
        if opts.time_scale <= 0.0 || !opts.time_scale.is_finite() {
            return Err(BatError::InvalidConfig(format!(
                "time_scale must be a finite number of wall seconds per \
                 simulated second in (0, ∞); got {}",
                opts.time_scale
            )));
        }
        if opts.queue_depth == 0 {
            return Err(BatError::InvalidConfig(
                "queue_depth (per-worker dispatch credits) must be ≥ 1; got 0".to_owned(),
            ));
        }
        if let Some((w, factor)) = opts.straggler {
            if w >= cfg.cluster.num_nodes {
                return Err(BatError::InvalidConfig(format!(
                    "straggler worker index must be < cluster.num_nodes ({}); got {w}",
                    cfg.cluster.num_nodes
                )));
            }
            if factor < 1.0 || !factor.is_finite() {
                return Err(BatError::InvalidConfig(format!(
                    "straggler slowdown factor must be finite and ≥ 1.0; got {factor}"
                )));
            }
        }
        if opts.processes && opts.transport != TransportKind::Uds {
            return Err(BatError::InvalidConfig(format!(
                "processes = true requires transport = Uds \
                 (child workers dial back over Unix sockets); got {:?}",
                opts.transport
            )));
        }
        if cfg!(not(unix)) && opts.transport == TransportKind::Uds {
            return Err(BatError::InvalidConfig(
                "transport = Uds requires a unix platform; use Channel or Tcp here".to_owned(),
            ));
        }
        Ok(ServeRuntime { cfg, opts })
    }

    /// The engine configuration this runtime serves.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Builds the configured transport backend.
    fn transport(&self) -> Arc<dyn Transport> {
        match self.opts.transport {
            TransportKind::Channel => Arc::new(ChannelTransport::new()),
            TransportKind::Tcp => Arc::new(TcpTransport::new()),
            #[cfg(unix)]
            TransportKind::Uds => Arc::new(bat_net::UdsTransport::new()),
            #[cfg(not(unix))]
            TransportKind::Uds => unreachable!("rejected by ServeRuntime::new"),
        }
    }

    /// The listen address for worker `w` on the configured backend.
    fn listen_addr(&self, run_tag: u64, w: usize) -> String {
        match self.opts.transport {
            TransportKind::Channel => format!("worker-{w}"),
            TransportKind::Tcp => "127.0.0.1:0".to_owned(),
            TransportKind::Uds => std::env::temp_dir()
                .join(format!(
                    "bat-serve-{}-{run_tag}-{w}.sock",
                    std::process::id()
                ))
                .to_string_lossy()
                .into_owned(),
        }
    }

    /// Serves a trace to completion and returns aggregate statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time, or if a worker
    /// fails to connect during setup.
    #[allow(clippy::too_many_lines)]
    pub fn serve(&self, trace: &[RankRequest]) -> RunStats {
        for w in trace.windows(2) {
            assert!(
                w[1].arrival >= w[0].arrival,
                "trace must be sorted by arrival"
            );
        }
        if self.cfg.batching.is_some() {
            return self.serve_batched(trace);
        }
        let n_workers = self.cfg.cluster.num_nodes;
        let scale = self.opts.time_scale;
        let schedule = self.cfg.faults.clone();

        let planner = Mutex::new(RequestPlanner::from_config(&self.cfg));
        let outstanding = Arc::new(AtomicU64::new(0));
        // True once every scheduled fault has been delivered (immediately,
        // when there is no schedule).
        let supervisor_done = Arc::new(AtomicBool::new(
            schedule.as_ref().is_none_or(|s| s.is_empty()),
        ));

        // Bind every worker's endpoint up front; listeners stay alive for
        // the whole run so restarted child processes can rejoin.
        let transport = self.transport();
        let run_tag = next_run_tag();
        let mut listeners: Vec<Box<dyn Listener>> = Vec::with_capacity(n_workers);
        let mut dial_addrs: Vec<String> = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let listener = transport
                .listen(&self.listen_addr(run_tag, w))
                .expect("transport endpoint binds");
            dial_addrs.push(listener.local_addr());
            listeners.push(listener);
        }

        let links: Vec<Link> = (0..n_workers).map(|_| Link::new()).collect();
        let (event_tx, event_rx) = unbounded::<Event>();
        let (orphan_tx, orphan_rx) = unbounded::<DispatchMsg>();

        let start = Instant::now();
        let virtual_now = move || start.elapsed().as_secs_f64() / scale;

        // One straggler knob for both execution paths: explicit runtime
        // options win, otherwise the engine config's injection applies.
        let straggler = self.opts.straggler.or(self.cfg.straggler);
        let straggler_factor = move |w: usize| match straggler {
            Some((idx, factor)) if idx == w => factor,
            _ => 1.0,
        };
        let max_batch_tokens = self.cfg.cluster.max_batched_tokens as u64;
        let batch_overhead = self.cfg.batch_overhead_secs;
        let hello = move |w: usize, vnow: f64| HelloMsg {
            worker: w as u32,
            scale,
            virtual_now: vnow,
            max_batch_tokens,
            batch_overhead,
            slowdown: straggler_factor(w),
        };

        // Shared accounting filled by the scheduler thread.
        let totals = Mutex::new(SchedTotals::default());

        let stats = thread::scope(|scope| {
            // Start every worker: a child process dialing back over UDS,
            // or an in-process thread running the identical loop over the
            // configured transport.
            for (w, link) in links.iter().enumerate() {
                if self.opts.processes {
                    let child = spawn_child(&self.opts.child_args, &dial_addrs[w], w)
                        .expect("child worker spawns");
                    *link.child.lock() = Some(child);
                } else {
                    let addr = dial_addrs[w].clone();
                    let alive = Arc::clone(&link.alive);
                    let transport = Arc::clone(&transport);
                    scope.spawn(move || match transport.connect(&addr) {
                        Ok(conn) => {
                            if let Err(e) = run_net_worker(conn.as_ref(), Some(&alive)) {
                                eprintln!("worker {w}: {e}");
                            }
                        }
                        Err(e) => eprintln!("worker {w}: connect {addr}: {e}"),
                    });
                }
            }
            // Accept each worker, handshake, and attach its reader.
            for (w, link) in links.iter().enumerate() {
                let conn = listeners[w]
                    .accept_timeout(ACCEPT_TIMEOUT)
                    .expect("worker connects back during setup");
                conn.send(hello(w, virtual_now()).to_frame())
                    .expect("worker accepts hello");
                *link.conn.lock() = (0, Some(Arc::clone(&conn)));
                let events = event_tx.clone();
                scope.spawn(move || run_reader(conn, w, 0, events));
            }

            // Fault supervisor: makes failures and membership events
            // physically real — killing, draining, and respawning real
            // workers — while the planner prices the same schedule on
            // nominal request arrivals.
            if let Some(schedule) = schedule.clone() {
                spawn_fault_supervisor(
                    scope,
                    SupervisorCtx {
                        schedule,
                        scale,
                        start,
                        links: &links,
                        listeners: &listeners,
                        processes: self.opts.processes,
                        child_args: self.opts.child_args.clone(),
                        dial: dial_addrs.clone(),
                        events: event_tx.clone(),
                        done: Arc::clone(&supervisor_done),
                    },
                    hello,
                );
            }

            // Scheduler thread: replay arrivals, plan, dispatch frames.
            let planner_ref = &planner;
            let totals_ref = &totals;
            let links_ref = &links;
            let outstanding_ref = &outstanding;
            let supervisor_done_ref = &supervisor_done;
            let sched_events = event_tx.clone();
            let queue_depth = self.opts.queue_depth as u64;
            scope.spawn(move || {
                let mut rotate = 0usize;
                let mut next_seq = 0u64;
                // The admission controller runs on *nominal* arrival times
                // with planner cost estimates — identical inputs to the
                // simulator's controller, so for the same trace + schedule
                // the two paths reject the exact same requests.
                let mut controller = self.cfg.slo.map(|c| {
                    let cap = {
                        let p = planner_ref.lock();
                        (0..n_workers)
                            .filter(|&i| p.is_worker_alive(i))
                            .map(|i| 1.0 / straggler_factor(i))
                            .sum()
                    };
                    OverloadController::new(c, cap)
                });
                // Least-loaded dispatch (§5.1 load balancing) over the
                // currently-live workers. Ties rotate instead of always
                // picking the lowest index, so an idle-but-slow worker does
                // not swallow every tied dispatch. The loop re-selects when
                // the chosen worker is out of credit (backpressure) or its
                // link dies mid-send.
                let dispatch = |item: DispatchMsg, rotate: &mut usize| {
                    loop {
                        let live: Vec<usize> = (0..n_workers)
                            .filter(|&i| links_ref[i].alive.load(Ordering::Acquire))
                            .collect();
                        // A validated schedule never kills the whole
                        // cluster for good; wait out the gap between a
                        // crash and its scheduled restart.
                        if live.is_empty() {
                            thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                        // Snapshot every candidate's load once: the
                        // collector decrements these atomics concurrently,
                        // so re-reading them while filtering can leave no
                        // candidate equal to a stale minimum.
                        let loads: Vec<(usize, u64)> = live
                            .iter()
                            .map(|&i| (i, links_ref[i].queued.load(Ordering::Relaxed)))
                            .collect();
                        let min_load = loads
                            .iter()
                            .map(|&(_, load)| load)
                            .min()
                            .expect("at least one candidate");
                        let tied: Vec<usize> = loads
                            .iter()
                            .filter(|&&(_, load)| load == min_load)
                            .map(|&(i, _)| i)
                            .collect();
                        let w = tied[*rotate % tied.len()];
                        let link = &links_ref[w];
                        if link.inflight.load(Ordering::Acquire) >= queue_depth {
                            // Out of credit: wait for completions to free
                            // a slot (or for the liveness set to change).
                            thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                        *rotate = rotate.wrapping_add(1);
                        // Register BEFORE sending so a completion can
                        // never race past its own bookkeeping; incarnation
                        // and conn are read together so the entry's tag
                        // always matches the conn the frame went to.
                        let (inc, conn) = link.current();
                        link.unacked.lock().insert(item.seq, (inc, item));
                        link.queued.fetch_add(item.suffix_tokens, Ordering::Relaxed);
                        link.inflight.fetch_add(1, Ordering::AcqRel);
                        let sent = conn
                            .as_ref()
                            .is_some_and(|c| c.send(item.to_frame()).is_ok());
                        if sent {
                            return;
                        }
                        // The link died under us: roll back and re-select.
                        link.unacked.lock().remove(&item.seq);
                        link.queued.fetch_sub(item.suffix_tokens, Ordering::Relaxed);
                        link.inflight.fetch_sub(1, Ordering::AcqRel);
                        link.alive.store(false, Ordering::Release);
                    }
                };
                for req in trace {
                    let arrival = req.arrival.as_secs();
                    // Open-loop pacing in scaled time.
                    loop {
                        let now = virtual_now();
                        if now >= arrival {
                            break;
                        }
                        thread::sleep(Duration::from_secs_f64(
                            ((arrival - now) * scale).min(0.005),
                        ));
                    }
                    let now = virtual_now();
                    // Plan on the *nominal* arrival time, never the jittery
                    // virtual clock: the fault cursor then advances through
                    // the same states as the simulator's, which is what
                    // keeps the two paths' cache accounting identical.
                    let admitted = {
                        let mut p = planner_ref.lock();
                        if let Some(ctl) = controller.as_mut() {
                            // Admission sees the fault state planning would.
                            p.advance_faults(arrival);
                            ctl.set_capacity(
                                (0..n_workers)
                                    .filter(|&i| p.is_worker_alive(i))
                                    .map(|i| 1.0 / straggler_factor(i))
                                    .sum(),
                            );
                            let est = p.admission_estimate_secs(req);
                            let decision = ctl.on_arrival(
                                arrival,
                                est,
                                req.slo.deadline_secs,
                                req.slo.priority,
                            );
                            match decision.into_result() {
                                Ok(()) => {
                                    p.set_brownout_rung(ctl.rung());
                                }
                                Err(BatError::Rejected { reason }) => {
                                    drop(p);
                                    assert!(
                                        sched_events.send(Event::Rejected(reason)).is_ok(),
                                        "collector outlives scheduler"
                                    );
                                    continue;
                                }
                                Err(_) => unreachable!("into_result only rejects"),
                            }
                        }
                        let planned = p.plan(req, arrival);
                        let price = p.price(&planned);
                        (planned, price)
                    };
                    let (planned, price) = admitted;
                    {
                        let mut t = totals_ref.lock();
                        t.accepted += 1;
                        t.total_tokens += req.total_tokens() as u64;
                        t.reused_tokens += planned.reused_tokens();
                        t.computed_tokens += planned.suffix_tokens;
                        t.remote_bytes += planned.remote_bytes;
                        t.compute_secs += price.0;
                        t.load_secs += price.1;
                        t.net_secs += price.2;
                        if self.cfg.caching {
                            match planned.prefix {
                                bat_types::PrefixKind::User => t.up_requests += 1,
                                bat_types::PrefixKind::Item => t.ip_requests += 1,
                            }
                        }
                    }
                    outstanding_ref.fetch_add(1, Ordering::AcqRel);
                    let seq = next_seq;
                    next_seq += 1;
                    dispatch(
                        DispatchMsg {
                            seq,
                            arrival_virtual: now,
                            suffix_tokens: planned.suffix_tokens,
                            service_virtual: price.0 + price.1 + price.2,
                            deadline_rel: if controller.is_some() {
                                req.slo.deadline_secs
                            } else {
                                None
                            },
                        },
                        &mut rotate,
                    );
                    // Re-dispatch anything bounced or requeued off a dead
                    // worker.
                    while let Ok(item) = orphan_rx.try_recv() {
                        dispatch(item, &mut rotate);
                    }
                }
                // Post-trace drain: keep re-dispatching orphans until every
                // dispatched job has completed and every scheduled fault
                // has been delivered. Requests are never dropped, even when
                // the last arrivals landed on a worker that then died.
                loop {
                    while let Ok(item) = orphan_rx.try_recv() {
                        dispatch(item, &mut rotate);
                    }
                    if outstanding_ref.load(Ordering::Acquire) == 0
                        && supervisor_done_ref.load(Ordering::Acquire)
                    {
                        break;
                    }
                    thread::sleep(Duration::from_micros(500));
                }
                // Orderly shutdown: every worker (live or bounced-out)
                // gets the frame; a dead child's send just fails.
                for link in links_ref {
                    if let (_, Some(conn)) = link.current() {
                        let _ = conn.send(ShutdownMsg.to_frame());
                    }
                }
            });

            // Collector: the scope's main flow, and the single writer for
            // per-link retirement accounting. Exactly one terminal event
            // per trace request arrives — served, shed, or rejected;
            // faults re-route work, they never drop it — so count them out
            // rather than waiting for channel disconnect.
            let mut latencies = Percentiles::new();
            let mut completed = 0usize;
            let mut slo = SloStats {
                submitted: trace.len() as u64,
                ..SloStats::default()
            };
            let mut terminal = 0usize;
            while terminal < trace.len() {
                match event_rx.recv() {
                    Ok(Event::Done(c)) => {
                        let link = &links[c.worker as usize];
                        link.queued.fetch_sub(c.suffix_tokens, Ordering::Relaxed);
                        link.inflight.fetch_sub(1, Ordering::AcqRel);
                        link.unacked.lock().remove(&c.seq);
                        outstanding.fetch_sub(1, Ordering::Release);
                        terminal += 1;
                        match c.outcome {
                            WireOutcome::Completed {
                                latency_virtual,
                                missed,
                            } => {
                                latencies.record(latency_virtual);
                                completed += 1;
                                slo.completed += 1;
                                if missed {
                                    slo.deadline_misses += 1;
                                }
                            }
                            WireOutcome::Shed => slo.shed_expired += 1,
                            // Workers never reject; the scheduler does.
                            WireOutcome::Rejected(reason) => count_reject(&mut slo, reason),
                        }
                    }
                    Ok(Event::Orphan(o)) => {
                        let link = &links[o.worker as usize];
                        link.queued
                            .fetch_sub(o.item.suffix_tokens, Ordering::Relaxed);
                        link.inflight.fetch_sub(1, Ordering::AcqRel);
                        link.unacked.lock().remove(&o.item.seq);
                        let _ = orphan_tx.send(o.item);
                    }
                    Ok(Event::Down {
                        worker,
                        incarnation,
                    }) => {
                        let link = &links[worker];
                        {
                            let g = link.conn.lock();
                            if g.0 == incarnation {
                                // Unexpected death of the current conn
                                // (child crash outside the schedule, or a
                                // stream error): stop dispatching to it.
                                link.alive.store(false, Ordering::Release);
                            }
                        }
                        // Requeue everything sent on this (or an earlier)
                        // incarnation; entries sent on a newer conn stay.
                        let requeue: Vec<DispatchMsg> = {
                            let mut un = link.unacked.lock();
                            let seqs: Vec<u64> = un
                                .iter()
                                .filter(|(_, (inc, _))| *inc <= incarnation)
                                .map(|(&seq, _)| seq)
                                .collect();
                            seqs.iter()
                                .map(|seq| un.remove(seq).expect("seq just listed").1)
                                .collect()
                        };
                        for item in requeue {
                            link.queued.fetch_sub(item.suffix_tokens, Ordering::Relaxed);
                            link.inflight.fetch_sub(1, Ordering::AcqRel);
                            let _ = orphan_tx.send(item);
                        }
                    }
                    Ok(Event::Rejected(reason)) => {
                        terminal += 1;
                        count_reject(&mut slo, reason);
                    }
                    Err(_) => break,
                }
            }
            let span = virtual_now() - trace.first().map_or(0.0, |r| r.arrival.as_secs());
            let t = totals.lock();
            let mut stats = RunStats::from_counters(
                self.cfg.label.clone(),
                completed,
                span.max(1e-9),
                t.total_tokens,
                t.reused_tokens,
                t.computed_tokens,
                t.remote_bytes,
                t.compute_secs,
                t.net_secs,
                t.load_secs,
                t.up_requests,
                t.ip_requests,
                &mut latencies,
            );
            if self.cfg.slo.is_some() {
                slo.accepted = t.accepted;
                stats.slo = slo;
            }
            drop(t);
            let mut planner = planner.lock();
            if let Some(report) = planner.finish_faults() {
                stats.faults = report;
            }
            if let Some(tiers) = planner.tier_stats() {
                stats.tiers = tiers;
            }
            drop(planner);
            stats
        });
        // Reap child workers (they exited on shutdown; kill is a no-op
        // backstop for a child that somehow missed it).
        for link in &links {
            if let Some(mut child) = link.child.lock().take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        stats
    }

    /// The continuous-batching serve path: the scheduler thread runs the
    /// same nominal-time [`BatchScheduler`] as the simulator's batched
    /// path — same admission sequence, same priced services, same round
    /// formation — and every [`RoundRecord`] it forms is then *physically*
    /// dispatched to the round's worker as one wire frame. The workers are
    /// pure execution vehicles here (they sleep the round's priced service
    /// and ack it); the whole ledger — latencies, SLO counters, the batching
    /// stats — comes from the machine, so [`RunStats::digest`] is
    /// bit-identical to the simulator's for the same trace at any worker
    /// count.
    ///
    /// Fault and membership schedules run in two planes that never share
    /// state: the *nominal* plane (this scheduler thread applies every
    /// crash/restart/drain/join to the machine at its scheduled nominal
    /// time, exactly as the simulator's event heap does, so seated chunks
    /// requeue through the machine's own migration path and the ledger
    /// stays bit-identical), and the *physical* plane (the shared fault
    /// supervisor kills, drains, and respawns the real workers). A round
    /// frame lost to a physical kill is simply dropped after its link dies
    /// — the machine has already cancelled that round by generation
    /// fencing and reformed its chunks into fresh rounds on survivors, so
    /// no frame is ever double-counted.
    #[allow(clippy::too_many_lines)]
    fn serve_batched(&self, trace: &[RankRequest]) -> RunStats {
        let n_workers = self.cfg.cluster.num_nodes;
        let scale = self.opts.time_scale;
        let batching = self.cfg.batching.expect("batched path requires config");
        let schedule = self.cfg.faults.clone();

        let planner = Mutex::new(RequestPlanner::from_config(&self.cfg));
        let outstanding = Arc::new(AtomicU64::new(0));
        let sched_done = Arc::new(AtomicBool::new(false));
        let supervisor_done = Arc::new(AtomicBool::new(
            schedule.as_ref().is_none_or(|s| s.is_empty()),
        ));
        let ledger_out = Mutex::new(None::<BatchedLedger>);

        let transport = self.transport();
        let run_tag = next_run_tag();
        let mut listeners: Vec<Box<dyn Listener>> = Vec::with_capacity(n_workers);
        let mut dial_addrs: Vec<String> = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let listener = transport
                .listen(&self.listen_addr(run_tag, w))
                .expect("transport endpoint binds");
            dial_addrs.push(listener.local_addr());
            listeners.push(listener);
        }
        let links: Vec<Link> = (0..n_workers).map(|_| Link::new()).collect();
        let (event_tx, event_rx) = unbounded::<Event>();

        let start = Instant::now();
        let virtual_now = move || start.elapsed().as_secs_f64() / scale;

        // One straggler knob for both execution paths. The machine's round
        // services are already straggler-scaled, so the workers themselves
        // run at unit speed with zero extra overhead: the frame's
        // `service_virtual` is the whole truth.
        let straggler = self.opts.straggler.or(self.cfg.straggler);
        let speeds: Vec<f64> = (0..n_workers)
            .map(|i| match straggler {
                Some((w, f)) if w == i => f,
                _ => 1.0,
            })
            .collect();
        let hello = move |w: usize, vnow: f64| HelloMsg {
            worker: w as u32,
            scale,
            virtual_now: vnow,
            // One frame per round: rounds are formed by the machine, never
            // re-fused opportunistically by the worker loop.
            max_batch_tokens: 1,
            batch_overhead: 0.0,
            slowdown: 1.0,
        };

        let stats = thread::scope(|scope| {
            for (w, link) in links.iter().enumerate() {
                if self.opts.processes {
                    let child = spawn_child(&self.opts.child_args, &dial_addrs[w], w)
                        .expect("child worker spawns");
                    *link.child.lock() = Some(child);
                } else {
                    let addr = dial_addrs[w].clone();
                    let alive = Arc::clone(&link.alive);
                    let transport = Arc::clone(&transport);
                    scope.spawn(move || match transport.connect(&addr) {
                        Ok(conn) => {
                            if let Err(e) = run_net_worker(conn.as_ref(), Some(&alive)) {
                                eprintln!("worker {w}: {e}");
                            }
                        }
                        Err(e) => eprintln!("worker {w}: connect {addr}: {e}"),
                    });
                }
            }
            for (w, link) in links.iter().enumerate() {
                let conn = listeners[w]
                    .accept_timeout(ACCEPT_TIMEOUT)
                    .expect("worker connects back during setup");
                conn.send(hello(w, virtual_now()).to_frame())
                    .expect("worker accepts hello");
                *link.conn.lock() = (0, Some(Arc::clone(&conn)));
                let events = event_tx.clone();
                scope.spawn(move || run_reader(conn, w, 0, events));
            }

            // Physical fault plane: the same supervisor the per-request
            // path uses, handing rejoined children the batched hello.
            if let Some(schedule) = schedule.clone() {
                spawn_fault_supervisor(
                    scope,
                    SupervisorCtx {
                        schedule,
                        scale,
                        start,
                        links: &links,
                        listeners: &listeners,
                        processes: self.opts.processes,
                        child_args: self.opts.child_args.clone(),
                        dial: dial_addrs.clone(),
                        events: event_tx.clone(),
                        done: Arc::clone(&supervisor_done),
                    },
                    hello,
                );
            }

            // Scheduler thread: replays arrivals on nominal time through
            // the batch machine, dispatching each formed round as a frame.
            let planner_ref = &planner;
            let links_ref = &links;
            let outstanding_ref = &outstanding;
            let sched_done_ref = &sched_done;
            let supervisor_done_ref = &supervisor_done;
            let ledger_ref = &ledger_out;
            let speeds_ref = &speeds;
            let queue_depth = self.opts.queue_depth as u64;
            let have_faults = schedule.is_some();
            let fault_times: Vec<f64> = schedule
                .as_ref()
                .map(|s| s.events().iter().map(|e| e.at_secs).collect())
                .unwrap_or_default();
            scope.spawn(move || {
                let mut machine =
                    BatchScheduler::new(batching, self.cfg.batch_overhead_secs, speeds_ref.clone());
                // Physical dispatch of one formed round, under the same
                // per-link inflight credit as the per-request path. The
                // frame is registered un-acked *before* the send so a
                // completion can never race past its own bookkeeping.
                // Under a fault schedule a dead link is survivable: the
                // frame is rolled back and simply not sent — the nominal
                // machine independently cancels that round at the
                // scheduled crash time and reforms its chunks on the
                // survivors, so physical loss never touches the ledger.
                let dispatch_round = |r: &RoundRecord| {
                    let link = &links_ref[r.worker];
                    while link.inflight.load(Ordering::Acquire) >= queue_depth {
                        thread::sleep(Duration::from_micros(200));
                    }
                    let msg = DispatchMsg {
                        seq: r.seq,
                        arrival_virtual: r.start,
                        suffix_tokens: r.tokens,
                        service_virtual: r.service_secs,
                        deadline_rel: None,
                    };
                    let (inc, conn) = link.current();
                    link.unacked.lock().insert(msg.seq, (inc, msg));
                    link.queued.fetch_add(r.tokens, Ordering::Relaxed);
                    link.inflight.fetch_add(1, Ordering::AcqRel);
                    outstanding_ref.fetch_add(1, Ordering::AcqRel);
                    let sent = conn
                        .as_ref()
                        .is_some_and(|c| c.send(msg.to_frame()).is_ok());
                    if !sent {
                        link.unacked.lock().remove(&msg.seq);
                        link.queued.fetch_sub(r.tokens, Ordering::Relaxed);
                        link.inflight.fetch_sub(1, Ordering::AcqRel);
                        outstanding_ref.fetch_sub(1, Ordering::Release);
                        assert!(
                            have_faults,
                            "worker {} link died without a fault schedule",
                            r.worker
                        );
                    }
                };

                // Everything below mirrors the simulator's batched run
                // statement-for-statement on nominal times; see
                // `ServingEngine::run_batched`. Arrival times are rounded
                // through the same nanosecond key so edge comparisons
                // (item-refresh boundaries) land identically.
                struct AdmittedJob {
                    arrival_secs: f64,
                    deadline: Option<f64>,
                    compute: f64,
                    load: f64,
                    net: f64,
                }
                let mut admitted: Vec<Option<AdmittedJob>> =
                    (0..trace.len()).map(|_| None).collect();
                let mut ledger = BatchedLedger {
                    first_arrival: f64::INFINITY,
                    ..BatchedLedger::default()
                };
                let mut next_refresh = self.cfg.item_refresh_interval_secs.unwrap_or(0.0);
                // Nominal fault plane: the cursor below walks the schedule
                // exactly as the simulator's event heap does — every event
                // whose nanosecond key is ≤ the next arrival's is applied
                // first (fault events win key ties by sequence), at its own
                // scheduled time, through the shared planner and machine.
                let mut fault_cursor = 0usize;
                let mut controller = self.cfg.slo.map(|c| {
                    let p = planner_ref.lock();
                    let cap = (0..n_workers)
                        .filter(|&i| p.is_worker_alive(i))
                        .map(|i| 1.0 / speeds_ref[i])
                        .sum();
                    OverloadController::new(c, cap)
                });
                for (idx, req) in trace.iter().enumerate() {
                    let nominal = req.arrival.as_secs();
                    // Open-loop pacing in scaled wall time: rounds form and
                    // dispatch as their admitting arrivals come due, so the
                    // physical run overlaps execution with the trace replay
                    // instead of bursting everything at once.
                    loop {
                        let now = virtual_now();
                        if now >= nominal {
                            break;
                        }
                        thread::sleep(Duration::from_secs_f64(
                            ((nominal - now) * scale).min(0.005),
                        ));
                    }
                    while fault_cursor < fault_times.len()
                        && (fault_times[fault_cursor] * 1e9) as u64 <= (nominal * 1e9) as u64
                    {
                        let at = fault_times[fault_cursor];
                        fault_cursor += 1;
                        let mut p = planner_ref.lock();
                        for fault in p.advance_faults(at) {
                            match fault {
                                bat_sim::AppliedFault::Crashed(dead) => {
                                    machine.crash(at, dead.index());
                                }
                                bat_sim::AppliedFault::Restarted(back, _) => {
                                    machine.restart(at, back.index());
                                }
                                bat_sim::AppliedFault::Drained(leaving) => {
                                    machine.drain(at, leaving.index());
                                }
                                bat_sim::AppliedFault::Joined(fresh, _) => {
                                    machine.join(at, fresh.index());
                                }
                                _ => {}
                            }
                        }
                        drop(p);
                        // Requeued chunks may have formed fresh rounds on
                        // the survivors; get them onto the wire.
                        for r in machine.drain_rounds() {
                            dispatch_round(&r);
                        }
                    }
                    let rounded = ((nominal * 1e9) as u64) as f64 / 1e9;
                    ledger.first_arrival = ledger.first_arrival.min(rounded);
                    let mut p = planner_ref.lock();
                    if let Some(interval) = self.cfg.item_refresh_interval_secs {
                        if rounded >= next_refresh {
                            p.refresh_item_replication(rounded);
                            next_refresh = rounded + interval;
                        }
                    }
                    if let Some(ctl) = controller.as_mut() {
                        p.advance_faults(nominal);
                        ctl.set_capacity(
                            (0..n_workers)
                                .filter(|&i| p.is_worker_alive(i))
                                .map(|i| 1.0 / speeds_ref[i])
                                .sum(),
                        );
                        machine.advance(nominal);
                        ctl.set_slot_backlog(machine.outstanding_service_secs());
                        ledger.slo.submitted += 1;
                        let est = p.admission_estimate_secs(req);
                        let decision =
                            ctl.on_arrival(nominal, est, req.slo.deadline_secs, req.slo.priority);
                        if let Err(BatError::Rejected { reason }) = decision.into_result() {
                            count_reject(&mut ledger.slo, reason);
                            continue;
                        }
                        ledger.slo.accepted += 1;
                        p.set_brownout_rung(ctl.rung());
                    }
                    let planned = p.plan(req, nominal);
                    let (c, l, t) = p.price(&planned);
                    drop(p);
                    ledger.total_tokens += req.total_tokens() as u64;
                    ledger.reused_tokens += planned.reused_tokens();
                    ledger.computed_tokens += planned.suffix_tokens;
                    ledger.remote_bytes += planned.remote_bytes;
                    if self.cfg.caching {
                        match planned.prefix {
                            PrefixKind::User => ledger.up_requests += 1,
                            PrefixKind::Item => ledger.ip_requests += 1,
                        }
                    }
                    let deadline = controller
                        .is_some()
                        .then(|| req.slo.absolute_deadline(nominal))
                        .flatten();
                    machine.admit(nominal, idx, planned.suffix_tokens, c + l + t, deadline);
                    admitted[idx] = Some(AdmittedJob {
                        arrival_secs: nominal,
                        deadline,
                        compute: c,
                        load: l,
                        net: t,
                    });
                    for r in machine.drain_rounds() {
                        dispatch_round(&r);
                    }
                }
                // Events scheduled past the last arrival still reshape the
                // membership before the machine runs dry (the simulator's
                // heap pops them the same way).
                while fault_cursor < fault_times.len() {
                    let at = fault_times[fault_cursor];
                    fault_cursor += 1;
                    let mut p = planner_ref.lock();
                    for fault in p.advance_faults(at) {
                        match fault {
                            bat_sim::AppliedFault::Crashed(dead) => {
                                machine.crash(at, dead.index());
                            }
                            bat_sim::AppliedFault::Restarted(back, _) => {
                                machine.restart(at, back.index());
                            }
                            bat_sim::AppliedFault::Drained(leaving) => {
                                machine.drain(at, leaving.index());
                            }
                            bat_sim::AppliedFault::Joined(fresh, _) => {
                                machine.join(at, fresh.index());
                            }
                            _ => {}
                        }
                    }
                    drop(p);
                    for r in machine.drain_rounds() {
                        dispatch_round(&r);
                    }
                }
                machine.finish();
                for r in machine.drain_rounds() {
                    dispatch_round(&r);
                }
                // Fold the terminal ledger in the machine's completion
                // order — the same f64 fold order as the simulator, which
                // is what keeps the digest bitwise equal.
                for done in machine.drain_completions() {
                    let job = admitted[done.idx]
                        .as_ref()
                        .expect("machine completions cover only admitted requests");
                    ledger.latencies.record(done.at - job.arrival_secs);
                    ledger.completed += 1;
                    ledger.compute_secs += job.compute;
                    ledger.load_secs += job.load;
                    ledger.net_secs += job.net;
                    if controller.is_some() {
                        ledger.slo.completed += 1;
                        if job.deadline.is_some_and(|d| done.at > d) {
                            ledger.slo.deadline_misses += 1;
                        }
                    }
                    ledger.last_completion = ledger.last_completion.max(done.at);
                }
                ledger.slo.shed_expired += machine.drain_sheds().len() as u64;
                ledger.batching = machine.stats();
                // Both engines derive the SLO-plane migration ledger from
                // the same machine, so it is bit-identical by construction.
                ledger.slo.migrated = ledger.batching.migrated_requests;
                *ledger_ref.lock() = Some(ledger);
                // Wait out the physical tail (and the supervisor, so a
                // late respawned child still gets its shutdown frame),
                // then release the cluster.
                while outstanding_ref.load(Ordering::Acquire) > 0
                    || !supervisor_done_ref.load(Ordering::Acquire)
                {
                    thread::sleep(Duration::from_micros(500));
                }
                sched_done_ref.store(true, Ordering::Release);
                for link in links_ref {
                    if let (_, Some(conn)) = link.current() {
                        let _ = conn.send(ShutdownMsg.to_frame());
                    }
                }
            });

            // Collector: acks round frames so credit and the outstanding
            // count drain. All statistics live in the machine's ledger;
            // this loop is pure flow control — a frame stranded by a kill
            // is retired here exactly once (its un-acked entry is the
            // token: whoever removes it does the decrement), never
            // re-dispatched, because the nominal machine has already
            // reformed the cancelled round's chunks under fresh sequence
            // numbers on the surviving workers.
            loop {
                match event_rx.try_recv() {
                    Ok(Event::Done(c)) => {
                        let link = &links[c.worker as usize];
                        if link.unacked.lock().remove(&c.seq).is_some() {
                            link.queued.fetch_sub(c.suffix_tokens, Ordering::Relaxed);
                            link.inflight.fetch_sub(1, Ordering::AcqRel);
                            outstanding.fetch_sub(1, Ordering::Release);
                        }
                    }
                    Ok(Event::Orphan(o)) => {
                        // An in-process worker bounced a round frame while
                        // its liveness flag was down mid-kill.
                        assert!(
                            schedule.is_some(),
                            "worker {} bounced a round without a fault schedule",
                            o.worker
                        );
                        let link = &links[o.worker as usize];
                        if link.unacked.lock().remove(&o.item.seq).is_some() {
                            link.queued
                                .fetch_sub(o.item.suffix_tokens, Ordering::Relaxed);
                            link.inflight.fetch_sub(1, Ordering::AcqRel);
                            outstanding.fetch_sub(1, Ordering::Release);
                        }
                    }
                    Ok(Event::Down {
                        worker,
                        incarnation,
                    }) => {
                        // Reader death after shutdown is the orderly end;
                        // mid-run it is a scheduled kill (or a drained
                        // child exiting): retire every frame sent on this
                        // or an earlier incarnation — entries sent on a
                        // newer conn stay.
                        if !sched_done.load(Ordering::Acquire) {
                            assert!(
                                schedule.is_some(),
                                "worker {worker} link died without a fault schedule"
                            );
                        }
                        let link = &links[worker];
                        {
                            let g = link.conn.lock();
                            if g.0 == incarnation {
                                link.alive.store(false, Ordering::Release);
                            }
                        }
                        let dropped: Vec<DispatchMsg> = {
                            let mut un = link.unacked.lock();
                            let seqs: Vec<u64> = un
                                .iter()
                                .filter(|(_, (inc, _))| *inc <= incarnation)
                                .map(|(&seq, _)| seq)
                                .collect();
                            seqs.iter()
                                .map(|seq| un.remove(seq).expect("seq just listed").1)
                                .collect()
                        };
                        for item in dropped {
                            link.queued.fetch_sub(item.suffix_tokens, Ordering::Relaxed);
                            link.inflight.fetch_sub(1, Ordering::AcqRel);
                            outstanding.fetch_sub(1, Ordering::Release);
                        }
                    }
                    Ok(Event::Rejected(_)) => {
                        unreachable!("the batched scheduler counts rejects locally")
                    }
                    Err(TryRecvError::Empty) => {
                        if sched_done.load(Ordering::Acquire) {
                            break;
                        }
                        thread::sleep(Duration::from_micros(500));
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            }

            let ledger = ledger_out
                .lock()
                .take()
                .expect("scheduler thread fills the ledger");
            let mut latencies = ledger.latencies;
            let span = if ledger.completed == 0 {
                0.0
            } else {
                (ledger.last_completion - ledger.first_arrival).max(1e-9)
            };
            let mut stats = RunStats::from_counters(
                self.cfg.label.clone(),
                ledger.completed,
                span,
                ledger.total_tokens,
                ledger.reused_tokens,
                ledger.computed_tokens,
                ledger.remote_bytes,
                ledger.compute_secs,
                ledger.net_secs,
                ledger.load_secs,
                ledger.up_requests,
                ledger.ip_requests,
                &mut latencies,
            );
            stats.slo = ledger.slo;
            stats.batching = ledger.batching;
            let mut planner = planner.lock();
            if let Some(report) = planner.finish_faults() {
                stats.faults = report;
            }
            if let Some(tiers) = planner.tier_stats() {
                stats.tiers = tiers;
            }
            drop(planner);
            stats
        });
        for link in &links {
            if let Some(mut child) = link.child.lock().take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        stats
    }
}

/// The batched path's whole accounting state, filled by the scheduler
/// thread (which owns the machine) and read once by the collector when the
/// run drains. Mirrors the counter set of the simulator's batched path.
#[derive(Debug, Default)]
struct BatchedLedger {
    completed: usize,
    latencies: Percentiles,
    slo: SloStats,
    batching: BatchStats,
    total_tokens: u64,
    reused_tokens: u64,
    computed_tokens: u64,
    remote_bytes: Bytes,
    compute_secs: f64,
    net_secs: f64,
    load_secs: f64,
    up_requests: usize,
    ip_requests: usize,
    first_arrival: f64,
    last_completion: f64,
}

fn count_reject(slo: &mut SloStats, reason: RejectReason) {
    match reason {
        RejectReason::QueueFull => slo.rejected_queue_full += 1,
        RejectReason::DeadlineInfeasible => slo.rejected_infeasible += 1,
        RejectReason::BrownoutShed => slo.rejected_brownout += 1,
    }
}

#[derive(Debug, Default)]
struct SchedTotals {
    total_tokens: u64,
    reused_tokens: u64,
    computed_tokens: u64,
    remote_bytes: Bytes,
    compute_secs: f64,
    net_secs: f64,
    load_secs: f64,
    up_requests: usize,
    ip_requests: usize,
    /// Requests admitted past the overload controller (all of them when
    /// the control plane is off). Counted at the admission point so the
    /// conservation law `accepted == completed + shed` is a real check,
    /// not an identity.
    accepted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_sim::{ServingEngine, SystemKind};
    use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
    use bat_workload::{TraceGenerator, Workload};

    fn small_cluster() -> ClusterConfig {
        let mut c = ClusterConfig::a100_4node();
        c.num_nodes = 2;
        c.node.kv_cache_capacity = Bytes::from_gb(20);
        c
    }

    fn config(kind: SystemKind, ds: &DatasetConfig) -> EngineConfig {
        EngineConfig::for_system(kind, ModelConfig::qwen2_1_5b(), small_cluster(), ds)
    }

    fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.generate(secs, rate)
    }

    fn options_for(kind: TransportKind) -> ServeOptions {
        ServeOptions {
            transport: kind,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn serves_all_requests() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 2.0, 20.0);
        let rt = ServeRuntime::new(config(SystemKind::Bat, &ds), ServeOptions::default()).unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len());
        assert!(stats.p99_latency_ms > 0.0);
    }

    #[test]
    fn tcp_transport_serves_all_requests() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 20.0);
        let rt = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            options_for(TransportKind::Tcp),
        )
        .unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len());
    }

    #[cfg(unix)]
    #[test]
    fn uds_transport_matches_channel_digest() {
        // The determinism pin in miniature (the full cross-backend +
        // child-process version lives in tests/integration_transport.rs):
        // planner-side stats must be bitwise identical across backends.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 2.0, 30.0);
        let channel =
            ServeRuntime::new(config(SystemKind::UserPrefix, &ds), ServeOptions::default())
                .unwrap()
                .serve(&t);
        let uds = ServeRuntime::new(
            config(SystemKind::UserPrefix, &ds),
            options_for(TransportKind::Uds),
        )
        .unwrap()
        .serve(&t);
        assert_eq!(channel.digest(), uds.digest());
        assert_eq!(channel.completed, uds.completed);
    }

    #[test]
    fn cache_accounting_matches_simulator() {
        // Same planner, same trace, same arrival order → identical token
        // accounting between the threaded runtime and the DES.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 3.0, 30.0);
        let mut sim = ServingEngine::new(config(SystemKind::UserPrefix, &ds)).unwrap();
        let sim_stats = sim.run(&t);
        let rt = ServeRuntime::new(config(SystemKind::UserPrefix, &ds), ServeOptions::default())
            .unwrap();
        let rt_stats = rt.serve(&t);
        assert_eq!(rt_stats.total_tokens, sim_stats.total_tokens);
        // Frequency estimates see slightly different clocks, but with the
        // static UP policy reuse depends only on LRU residency → exact.
        assert_eq!(rt_stats.reused_tokens, sim_stats.reused_tokens);
        assert_eq!(rt_stats.up_requests, sim_stats.up_requests);
    }

    #[test]
    fn tiered_pool_matches_simulator_across_thread_counts() {
        // The serve-side tiered pool and the simulator's pool are the same
        // decision core driven on nominal arrival times, so every
        // hit/miss/demotion — and therefore the whole tier ledger and the
        // stats digest — must agree bitwise at any worker-thread count.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 2.0, 30.0);
        for nodes in [1usize, 2, 4, 8] {
            let mut cluster = small_cluster();
            cluster.num_nodes = nodes;
            let cfg =
                EngineConfig::for_system(SystemKind::Bat, ModelConfig::qwen2_1_5b(), cluster, &ds)
                    .with_tiers(Some(bat_sim::TiersConfig::new(Bytes::from_gb(4))));
            let sim_stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
            let rt_stats = ServeRuntime::new(cfg, ServeOptions::default())
                .unwrap()
                .serve(&t);
            assert_eq!(
                sim_stats.tiers, rt_stats.tiers,
                "tier ledger diverged at {nodes} worker threads"
            );
            assert!(
                rt_stats.tiers.lookups() > 0,
                "the pool must actually be exercised"
            );
            assert_eq!(
                sim_stats.digest(),
                rt_stats.digest(),
                "stats digest diverged at {nodes} worker threads"
            );
        }
    }

    #[test]
    fn cache_accounting_matches_simulator_under_faults() {
        // The same fault schedule drives both engines through identical
        // planner states (the fault cursor advances on nominal arrival
        // times in both), so cache accounting — and the fault report
        // itself — must agree bit-for-bit even though this runtime kills
        // and respawns real workers while the DES only reshuffles a heap.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 4.0, 30.0);
        let schedule =
            bat_sim::FaultSchedule::single_crash(2, bat_types::WorkerId::new(1), 1.0, 2.5).unwrap();
        let cfg = |s: &bat_sim::FaultSchedule| {
            config(SystemKind::UserPrefix, &ds).with_faults(Some(s.clone()))
        };
        let sim_stats = ServingEngine::new(cfg(&schedule)).unwrap().run(&t);
        let rt_stats = ServeRuntime::new(cfg(&schedule), ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt_stats.completed, t.len(), "faults must never drop work");
        assert_eq!(rt_stats.total_tokens, sim_stats.total_tokens);
        assert_eq!(rt_stats.reused_tokens, sim_stats.reused_tokens);
        assert_eq!(rt_stats.up_requests, sim_stats.up_requests);
        assert_eq!(rt_stats.faults, sim_stats.faults);
        assert!(!rt_stats.faults.is_quiet(), "the crash must be observed");
    }

    #[test]
    fn recompute_runtime_reuses_nothing() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 20.0);
        let rt =
            ServeRuntime::new(config(SystemKind::Recompute, &ds), ServeOptions::default()).unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.reused_tokens, 0);
        assert_eq!(stats.completed, t.len());
    }

    #[test]
    fn rejects_bad_options() {
        let ds = DatasetConfig::games();
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 0.0,
                queue_depth: 8,
                ..ServeOptions::default()
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                queue_depth: 0,
                ..ServeOptions::default()
            }
        )
        .is_err());
        // Child processes require the Uds transport.
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                processes: true,
                transport: TransportKind::Channel,
                ..ServeOptions::default()
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                processes: true,
                transport: TransportKind::Tcp,
                ..ServeOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn straggler_worker_is_routed_around() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 2.0, 60.0);
        let healthy = ServeRuntime::new(config(SystemKind::Bat, &ds), ServeOptions::default())
            .unwrap()
            .serve(&t);
        let degraded = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((0, 5.0)),
                ..ServeOptions::default()
            },
        )
        .unwrap()
        .serve(&t);
        // No work is lost, and a 5x slowdown of one of two workers must not
        // degrade tail latency by anything close to 5x (dispatch routes
        // around it). Interpolated P90, not nearest-rank P99: the
        // nearest-rank tail snapped to a single worst-case thread wakeup
        // and flaked on loaded hosts, while the mean this test used to
        // assert on hid genuine routing regressions. The interpolated
        // estimate moves continuously with the sample values, so one
        // jittery sample shifts it proportionally, not wholesale.
        assert_eq!(degraded.completed, t.len());
        assert!(
            degraded.p90_latency_ms < healthy.p90_latency_ms * 4.0 + 2.0 * healthy.mean_latency_ms,
            "straggler p90 {} vs healthy p90 {} (mean {})",
            degraded.p90_latency_ms,
            healthy.p90_latency_ms,
            healthy.mean_latency_ms
        );
    }

    #[test]
    fn straggler_options_are_validated() {
        let ds = DatasetConfig::games();
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((99, 2.0)),
                ..ServeOptions::default()
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((0, 0.5)),
                ..ServeOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn slo_control_plane_rejects_and_conserves_under_burst() {
        use bat_sim::OverloadConfig;
        use bat_types::{Priority, SloBudget};
        let ds = DatasetConfig::games();
        // A burst far beyond two workers' capacity, every request carrying
        // a tight deadline: the controller must shed, and every submitted
        // request must still reach exactly one terminal outcome.
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.set_slo(SloBudget::with_deadline(0.05).at_priority(Priority::Low));
        let t = g.generate(1.0, 400.0);
        let cfg = config(SystemKind::Bat, &ds).with_slo(Some(OverloadConfig::default()));
        let stats = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(stats.slo.submitted, t.len() as u64);
        assert!(
            stats.slo.conserved(),
            "conservation violated: {:?}",
            stats.slo
        );
        assert!(
            stats.slo.rejected() > 0,
            "a 400 qps burst on 2 workers must trip admission control"
        );
        assert!(stats.completed < t.len(), "shedding must actually shed");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        /// The conservation law across random fault schedules with the SLO
        /// control plane on: `submitted == completed + shed + rejected` and
        /// `accepted == completed + shed`, no matter which workers crash
        /// when. Few cases — each spins up a real threaded runtime — but
        /// each case covers a different crash/restart interleaving.
        #[test]
        fn conservation_holds_across_random_fault_schedules(seed in 0u64..1000) {
            use bat_sim::OverloadConfig;
            use bat_types::SloBudget;
            let ds = DatasetConfig::games();
            let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), seed.wrapping_add(7));
            g.set_slo(SloBudget::with_deadline(0.2));
            let t = g.generate(2.0, 60.0);
            let schedule = bat_sim::FaultSchedule::random(seed, 2, 2.0, 1);
            let cfg = config(SystemKind::Bat, &ds)
                .with_faults(Some(schedule))
                .with_slo(Some(OverloadConfig::default()));
            let stats = ServeRuntime::new(cfg, ServeOptions::default())
                .unwrap()
                .serve(&t);
            proptest::prop_assert_eq!(stats.slo.submitted, t.len() as u64);
            proptest::prop_assert!(stats.slo.conserved(), "not conserved: {:?}", stats.slo);
        }

        /// The extended conservation law under *membership* schedules with
        /// continuous batching on: random drain/join/crash/restart
        /// interleavings never lose or double-count a request, the
        /// migration ledger proves every move carried real work, and the
        /// whole digest still matches the simulator bit-for-bit.
        #[test]
        fn batched_conservation_holds_across_random_membership_schedules(seed in 0u64..1000) {
            use bat_sim::OverloadConfig;
            use bat_types::SloBudget;
            let ds = DatasetConfig::games();
            let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), seed.wrapping_add(7));
            g.set_slo(SloBudget::with_deadline(0.2));
            let t = g.generate(2.0, 60.0);
            let schedule = bat_sim::FaultSchedule::random_membership(seed, 2, 2.0, 1);
            let cfg = config(SystemKind::Bat, &ds)
                .with_faults(Some(schedule))
                .with_slo(Some(OverloadConfig::default()))
                .with_batching(Some(bat_sim::BatchingConfig::default()));
            let sim_stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
            let stats = ServeRuntime::new(cfg, ServeOptions::default())
                .unwrap()
                .serve(&t);
            proptest::prop_assert_eq!(stats.slo.submitted, t.len() as u64);
            proptest::prop_assert!(stats.slo.conserved(), "not conserved: {:?}", stats.slo);
            proptest::prop_assert!(
                stats.batching.migrated_tokens >= stats.batching.migrated_requests,
                "migration must carry at least one remaining token per move"
            );
            proptest::prop_assert_eq!(stats.slo.migrated, stats.batching.migrated_requests);
            proptest::prop_assert_eq!(sim_stats.digest(), stats.digest());
        }
    }

    #[test]
    fn batched_runtime_matches_simulator_digest() {
        // The threaded runtime drives the identical nominal-time batch
        // machine, so its whole stats digest — batching ledger included —
        // must be bitwise equal to the simulator's batched path.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 2.0, 40.0);
        let cfg =
            config(SystemKind::Bat, &ds).with_batching(Some(bat_sim::BatchingConfig::default()));
        let sim_stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt_stats = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt_stats.completed, t.len());
        assert!(rt_stats.batching.rounds > 0, "rounds must actually form");
        assert_eq!(sim_stats.batching, rt_stats.batching);
        assert_eq!(sim_stats.digest(), rt_stats.digest());
    }

    #[test]
    fn batched_runtime_conserves_under_overload_burst() {
        use bat_sim::OverloadConfig;
        use bat_types::SloBudget;
        let ds = DatasetConfig::games();
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.set_slo(SloBudget::with_deadline(0.08));
        let t = g.generate(1.0, 400.0);
        let cfg = config(SystemKind::Bat, &ds)
            .with_slo(Some(OverloadConfig::default()))
            .with_batching(Some(bat_sim::BatchingConfig::default()));
        let sim_stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt_stats = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt_stats.slo.submitted, t.len() as u64);
        assert!(
            rt_stats.slo.conserved(),
            "conservation violated: {:?}",
            rt_stats.slo
        );
        assert!(
            rt_stats.slo.rejected() > 0,
            "a 400 qps burst on 2 workers must trip admission control"
        );
        assert_eq!(sim_stats.digest(), rt_stats.digest());
    }

    #[test]
    fn batched_runtime_accepts_faults_and_matches_simulator_digest() {
        // batching × faults, the combination this runtime used to refuse:
        // the machine requeues seated chunks at the nominal crash time in
        // both engines, so the whole digest — migration ledger included —
        // stays bitwise equal while this runtime kills a real worker.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 3.0, 40.0);
        let schedule =
            bat_sim::FaultSchedule::single_crash(2, bat_types::WorkerId::new(1), 0.8, 1.8).unwrap();
        let cfg = config(SystemKind::Bat, &ds)
            .with_batching(Some(bat_sim::BatchingConfig::default()))
            .with_faults(Some(schedule));
        let sim_stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt_stats = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert!(!rt_stats.faults.is_quiet(), "the crash must be observed");
        assert_eq!(sim_stats.batching, rt_stats.batching);
        assert_eq!(sim_stats.digest(), rt_stats.digest());
    }

    #[test]
    fn batched_runtime_matches_simulator_under_drain_and_join() {
        // Elastic membership: a planned drain migrates the leaving
        // worker's remaining seats, and a later join re-plans the slot
        // back in — bit-identically in both engines.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 3.0, 40.0);
        let schedule =
            bat_sim::FaultSchedule::drain_join(2, bat_types::WorkerId::new(0), 0.8, 1.8).unwrap();
        let cfg = config(SystemKind::Bat, &ds)
            .with_batching(Some(bat_sim::BatchingConfig::default()))
            .with_faults(Some(schedule));
        let sim_stats = ServingEngine::new(cfg.clone()).unwrap().run(&t);
        let rt_stats = ServeRuntime::new(cfg, ServeOptions::default())
            .unwrap()
            .serve(&t);
        assert_eq!(rt_stats.completed, t.len(), "drain/join must not drop work");
        assert_eq!(rt_stats.batching.drains, 1);
        assert_eq!(rt_stats.batching.joins, 1);
        assert_eq!(rt_stats.faults.drains, 1);
        assert_eq!(rt_stats.faults.joins, 1);
        assert_eq!(sim_stats.batching, rt_stats.batching);
        assert_eq!(sim_stats.digest(), rt_stats.digest());
    }

    #[test]
    fn overload_applies_backpressure_but_completes() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 300.0);
        let rt = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 1e-4,
                queue_depth: 4,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len(), "backpressure must not drop work");
    }
}
