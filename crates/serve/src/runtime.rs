//! Threaded serving runtime implementation.

use bat_metrics::Percentiles;
use bat_sim::{EngineConfig, RequestPlanner, RunStats};
use bat_types::{BatError, Bytes, RankRequest};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Options of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Wall-clock seconds per simulated second. `1e-3` compresses a
    /// 60-second trace into 60 ms of real sleeping (plus scheduling
    /// overhead); `1.0` runs in real time.
    pub time_scale: f64,
    /// Per-worker channel depth; the scheduler blocks when a worker's
    /// queue is full (backpressure).
    pub queue_depth: usize,
    /// Failure injection: slow worker `index` down by `factor` (a GPU
    /// throttling or a noisy neighbor). The least-loaded dispatcher must
    /// route around it without dropping work.
    pub straggler: Option<(usize, f64)>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            time_scale: 1e-3,
            queue_depth: 1024,
            straggler: None,
        }
    }
}

/// A dispatched job: priced durations plus accounting, in virtual seconds.
#[derive(Debug, Clone)]
struct WorkItem {
    arrival_virtual: f64,
    suffix_tokens: u64,
    service_virtual: f64,
}

#[derive(Debug)]
struct Completion {
    latency_virtual: f64,
}

/// The threaded serving runtime.
///
/// ```
/// use bat_serve::{ServeOptions, ServeRuntime};
/// use bat_sim::{EngineConfig, SystemKind};
/// use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
/// use bat_workload::{TraceGenerator, Workload};
///
/// let ds = DatasetConfig::games();
/// let cfg = EngineConfig::for_system(
///     SystemKind::Bat,
///     ModelConfig::qwen2_1_5b(),
///     ClusterConfig::a100_4node().with_nodes(2),
///     &ds,
/// );
/// let mut gen = TraceGenerator::new(Workload::new(ds, 1), 2);
/// let trace = gen.generate(1.0, 20.0);
/// let stats = ServeRuntime::new(cfg, ServeOptions::default())
///     .expect("preset configs validate")
///     .serve(&trace);
/// assert_eq!(stats.completed, trace.len());
/// ```
pub struct ServeRuntime {
    cfg: EngineConfig,
    opts: ServeOptions,
}

impl ServeRuntime {
    /// Builds a runtime from a validated engine configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineConfig::validate`] failures, and rejects
    /// non-positive time scales.
    pub fn new(cfg: EngineConfig, opts: ServeOptions) -> Result<Self, BatError> {
        cfg.validate()?;
        if opts.time_scale <= 0.0 || !opts.time_scale.is_finite() {
            return Err(BatError::InvalidConfig(
                "time_scale must be positive and finite".to_owned(),
            ));
        }
        if opts.queue_depth == 0 {
            return Err(BatError::InvalidConfig(
                "queue_depth must be positive".to_owned(),
            ));
        }
        if let Some((w, factor)) = opts.straggler {
            if w >= cfg.cluster.num_nodes {
                return Err(BatError::InvalidConfig(format!(
                    "straggler worker {w} out of range"
                )));
            }
            if factor < 1.0 || !factor.is_finite() {
                return Err(BatError::InvalidConfig(
                    "straggler factor must be ≥ 1".to_owned(),
                ));
            }
        }
        Ok(ServeRuntime { cfg, opts })
    }

    /// The engine configuration this runtime serves.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Serves a trace to completion and returns aggregate statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time.
    pub fn serve(&self, trace: &[RankRequest]) -> RunStats {
        for w in trace.windows(2) {
            assert!(
                w[1].arrival >= w[0].arrival,
                "trace must be sorted by arrival"
            );
        }
        let n_workers = self.cfg.cluster.num_nodes;
        let scale = self.opts.time_scale;
        let max_batch_tokens = self.cfg.cluster.max_batched_tokens as u64;
        let batch_overhead = self.cfg.batch_overhead_secs;

        let planner = Mutex::new(RequestPlanner::from_config(&self.cfg));
        let queued_tokens: Vec<Arc<AtomicU64>> =
            (0..n_workers).map(|_| Arc::new(AtomicU64::new(0))).collect();

        let mut worker_txs: Vec<Sender<WorkItem>> = Vec::with_capacity(n_workers);
        let mut worker_rxs: Vec<Receiver<WorkItem>> = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx) = bounded::<WorkItem>(self.opts.queue_depth);
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }
        let (done_tx, done_rx) = bounded::<Completion>(self.opts.queue_depth * n_workers);

        // Shared accounting filled by the scheduler thread.
        let totals = Mutex::new(SchedTotals::default());

        let start = Instant::now();
        let virtual_now = move || start.elapsed().as_secs_f64() / scale;

        let stats = thread::scope(|scope| {
            // Inference workers: drain their queue, batching opportunistically.
            for (w, rx) in worker_rxs.into_iter().enumerate() {
                let done_tx = done_tx.clone();
                let queued = Arc::clone(&queued_tokens[w]);
                let slowdown = match self.opts.straggler {
                    Some((idx, factor)) if idx == w => factor,
                    _ => 1.0,
                };
                scope.spawn(move || {
                    while let Ok(first) = rx.recv() {
                        // Opportunistic batching under max-batched-tokens.
                        let mut batch = vec![first];
                        let mut tokens = batch[0].suffix_tokens;
                        while tokens < max_batch_tokens {
                            match rx.try_recv() {
                                Ok(item) => {
                                    tokens += item.suffix_tokens;
                                    batch.push(item);
                                }
                                Err(_) => break,
                            }
                        }
                        let service: f64 = (batch_overhead
                            + batch.iter().map(|j| j.service_virtual).sum::<f64>())
                            * slowdown;
                        thread::sleep(Duration::from_secs_f64(service * scale));
                        let now = start.elapsed().as_secs_f64() / scale;
                        for job in batch {
                            queued.fetch_sub(job.suffix_tokens, Ordering::Relaxed);
                            // A job can never complete before it arrived;
                            // clamp out scheduler-thread jitter.
                            let latency = (now - job.arrival_virtual).max(0.0);
                            done_tx
                                .send(Completion {
                                    latency_virtual: latency,
                                })
                                .expect("collector outlives workers");
                        }
                    }
                });
            }
            drop(done_tx);

            // Scheduler thread: replay arrivals, plan, dispatch.
            let planner_ref = &planner;
            let totals_ref = &totals;
            let queued_ref = &queued_tokens;
            scope.spawn(move || {
                for req in trace {
                    let arrival = req.arrival.as_secs();
                    // Open-loop pacing in scaled time.
                    loop {
                        let now = virtual_now();
                        if now >= arrival {
                            break;
                        }
                        thread::sleep(Duration::from_secs_f64(
                            ((arrival - now) * scale).min(0.005),
                        ));
                    }
                    let now = virtual_now();
                    let (planned, price) = {
                        let mut p = planner_ref.lock();
                        let planned = p.plan(req, now);
                        let price = p.price(&planned);
                        (planned, price)
                    };
                    {
                        let mut t = totals_ref.lock();
                        t.total_tokens += req.total_tokens() as u64;
                        t.reused_tokens += planned.reused_tokens();
                        t.computed_tokens += planned.suffix_tokens;
                        t.remote_bytes += planned.remote_bytes;
                        t.compute_secs += price.0;
                        t.load_secs += price.1;
                        t.net_secs += price.2;
                        if self.cfg.caching {
                            match planned.prefix {
                                bat_types::PrefixKind::User => t.up_requests += 1,
                                bat_types::PrefixKind::Item => t.ip_requests += 1,
                            }
                        }
                    }
                    // Least-loaded dispatch (§5.1 load balancing).
                    let w = (0..n_workers)
                        .min_by_key(|&i| queued_ref[i].load(Ordering::Relaxed))
                        .expect("at least one worker");
                    queued_ref[w].fetch_add(planned.suffix_tokens, Ordering::Relaxed);
                    worker_txs[w]
                        .send(WorkItem {
                            arrival_virtual: now,
                            suffix_tokens: planned.suffix_tokens,
                            service_virtual: price.0 + price.1 + price.2,
                        })
                        .expect("worker outlives scheduler");
                }
                drop(worker_txs); // closes queues → workers drain and exit
            });

            // Collector: the scope's main flow.
            let mut latencies = Percentiles::new();
            let mut completed = 0usize;
            while let Ok(c) = done_rx.recv() {
                latencies.record(c.latency_virtual);
                completed += 1;
            }
            let span = virtual_now()
                - trace
                    .first()
                    .map_or(0.0, |r| r.arrival.as_secs());
            let t = totals.lock();
            RunStats::from_counters(
                self.cfg.label.clone(),
                completed,
                span.max(1e-9),
                t.total_tokens,
                t.reused_tokens,
                t.computed_tokens,
                t.remote_bytes,
                t.compute_secs,
                t.net_secs,
                t.load_secs,
                t.up_requests,
                t.ip_requests,
                &mut latencies,
            )
        });
        stats
    }
}

#[derive(Debug, Default)]
struct SchedTotals {
    total_tokens: u64,
    reused_tokens: u64,
    computed_tokens: u64,
    remote_bytes: Bytes,
    compute_secs: f64,
    net_secs: f64,
    load_secs: f64,
    up_requests: usize,
    ip_requests: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_sim::{ServingEngine, SystemKind};
    use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
    use bat_workload::{TraceGenerator, Workload};

    fn small_cluster() -> ClusterConfig {
        let mut c = ClusterConfig::a100_4node();
        c.num_nodes = 2;
        c.node.kv_cache_capacity = Bytes::from_gb(20);
        c
    }

    fn config(kind: SystemKind, ds: &DatasetConfig) -> EngineConfig {
        EngineConfig::for_system(kind, ModelConfig::qwen2_1_5b(), small_cluster(), ds)
    }

    fn trace(ds: &DatasetConfig, secs: f64, rate: f64) -> Vec<RankRequest> {
        let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
        g.generate(secs, rate)
    }

    #[test]
    fn serves_all_requests() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 2.0, 20.0);
        let rt = ServeRuntime::new(config(SystemKind::Bat, &ds), ServeOptions::default()).unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len());
        assert!(stats.p99_latency_ms > 0.0);
    }

    #[test]
    fn cache_accounting_matches_simulator() {
        // Same planner, same trace, same arrival order → identical token
        // accounting between the threaded runtime and the DES.
        let ds = DatasetConfig {
            num_users: 300,
            ..DatasetConfig::games()
        };
        let t = trace(&ds, 3.0, 30.0);
        let mut sim = ServingEngine::new(config(SystemKind::UserPrefix, &ds)).unwrap();
        let sim_stats = sim.run(&t);
        let rt =
            ServeRuntime::new(config(SystemKind::UserPrefix, &ds), ServeOptions::default())
                .unwrap();
        let rt_stats = rt.serve(&t);
        assert_eq!(rt_stats.total_tokens, sim_stats.total_tokens);
        // Frequency estimates see slightly different clocks, but with the
        // static UP policy reuse depends only on LRU residency → exact.
        assert_eq!(rt_stats.reused_tokens, sim_stats.reused_tokens);
        assert_eq!(rt_stats.up_requests, sim_stats.up_requests);
    }

    #[test]
    fn recompute_runtime_reuses_nothing() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 20.0);
        let rt =
            ServeRuntime::new(config(SystemKind::Recompute, &ds), ServeOptions::default())
                .unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.reused_tokens, 0);
        assert_eq!(stats.completed, t.len());
    }

    #[test]
    fn rejects_bad_options() {
        let ds = DatasetConfig::games();
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 0.0,
                queue_depth: 8,
                straggler: None
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 1e-3,
                queue_depth: 0,
                straggler: None
            }
        )
        .is_err());
    }

    #[test]
    fn straggler_worker_is_routed_around() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 2.0, 60.0);
        let healthy = ServeRuntime::new(config(SystemKind::Bat, &ds), ServeOptions::default())
            .unwrap()
            .serve(&t);
        let degraded = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((0, 5.0)),
                ..ServeOptions::default()
            },
        )
        .unwrap()
        .serve(&t);
        // No work is lost, and a 5x slowdown of one of two workers must not
        // degrade P99 by anything close to 5x (dispatch routes around it).
        assert_eq!(degraded.completed, t.len());
        assert!(
            degraded.p99_latency_ms < healthy.p99_latency_ms * 4.0,
            "straggler p99 {} vs healthy {}",
            degraded.p99_latency_ms,
            healthy.p99_latency_ms
        );
    }

    #[test]
    fn straggler_options_are_validated() {
        let ds = DatasetConfig::games();
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((99, 2.0)),
                ..ServeOptions::default()
            }
        )
        .is_err());
        assert!(ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                straggler: Some((0, 0.5)),
                ..ServeOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn overload_applies_backpressure_but_completes() {
        let ds = DatasetConfig::games();
        let t = trace(&ds, 1.0, 300.0);
        let rt = ServeRuntime::new(
            config(SystemKind::Bat, &ds),
            ServeOptions {
                time_scale: 1e-4,
                queue_depth: 4,
                straggler: None,
            },
        )
        .unwrap();
        let stats = rt.serve(&t);
        assert_eq!(stats.completed, t.len(), "backpressure must not drop work");
    }
}
