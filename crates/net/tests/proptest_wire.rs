//! Property tests over the whole wire vocabulary.
//!
//! Two families:
//!
//! 1. **Roundtrip identity** — for every message type, a randomized
//!    instance encoded to bytes and decoded back compares equal (bitwise
//!    for floats: the codecs ship IEEE bit patterns, so NaNs and -0.0
//!    survive).
//! 2. **Hostile bytes** — truncating an encoded frame at any cut, or
//!    flipping any byte, must yield a typed [`NetError`], never a panic
//!    and never a silently-wrong message of the same type.

use bat_faults::FaultKind;
use bat_kvcache::CacheKey;
use bat_meta::{MetaCommand, ViewChange};
use bat_net::{
    decode_frame, encode_frame, CompletionMsg, DispatchMsg, FaultEventMsg, HelloMsg, KvSegmentMsg,
    MetaCmdMsg, MetaRespMsg, MetaWireResult, NetError, OrphanMsg, ShutdownMsg, WireCodec,
    WireOutcome,
};
use bat_types::{ItemId, RejectReason, UserId, WorkerId};
use proptest::prelude::*;
use proptest::TestRng;

/// Draws an arbitrary f64 bit pattern — includes NaNs, infinities,
/// subnormals, and -0.0, which is the point.
fn any_f64(rng: &mut TestRng) -> f64 {
    f64::from_bits(rng.next_u64())
}

fn any_f32(rng: &mut TestRng) -> f32 {
    f32::from_bits(rng.next_u64() as u32)
}

fn any_key(rng: &mut TestRng) -> CacheKey {
    if rng.next_u64().is_multiple_of(2) {
        CacheKey::User(UserId::new(rng.next_u64()))
    } else {
        CacheKey::Item(ItemId::new(rng.next_u64()))
    }
}

fn any_dispatch(rng: &mut TestRng) -> DispatchMsg {
    DispatchMsg {
        seq: rng.next_u64(),
        arrival_virtual: any_f64(rng),
        suffix_tokens: rng.next_u64(),
        service_virtual: any_f64(rng),
        deadline_rel: if rng.next_u64().is_multiple_of(2) {
            Some(any_f64(rng))
        } else {
            None
        },
    }
}

fn any_outcome(rng: &mut TestRng) -> WireOutcome {
    match rng.next_u64() % 5 {
        0 | 3 => WireOutcome::Completed {
            latency_virtual: any_f64(rng),
            missed: rng.next_u64().is_multiple_of(2),
        },
        1 => WireOutcome::Shed,
        _ => WireOutcome::Rejected(match rng.next_u64() % 3 {
            0 => RejectReason::QueueFull,
            1 => RejectReason::DeadlineInfeasible,
            _ => RejectReason::BrownoutShed,
        }),
    }
}

fn any_fault_kind(rng: &mut TestRng) -> FaultKind {
    let w = |rng: &mut TestRng| WorkerId::new(rng.next_u64() % 64);
    match rng.next_u64() % 10 {
        0 => FaultKind::WorkerCrash(w(rng)),
        1 => FaultKind::WorkerRestart(w(rng)),
        2 => FaultKind::LinkDegrade {
            factor: any_f64(rng),
        },
        3 => FaultKind::LinkRestore,
        4 => FaultKind::MetaStall {
            duration_secs: any_f64(rng),
        },
        5 => FaultKind::MetaCrash((rng.next_u64() % 7) as usize),
        6 => FaultKind::MetaRestart((rng.next_u64() % 7) as usize),
        7 => FaultKind::CutLink {
            a: w(rng),
            b: w(rng),
        },
        8 => FaultKind::HealLink {
            a: w(rng),
            b: w(rng),
        },
        _ => FaultKind::SlowLink {
            a: w(rng),
            b: w(rng),
            factor: any_f64(rng),
        },
    }
}

fn any_meta_cmd(rng: &mut TestRng) -> MetaCommand {
    match rng.next_u64() % 5 {
        0 => MetaCommand::RegisterEntry {
            key: any_key(rng),
            bytes: rng.next_u64(),
        },
        1 => MetaCommand::Evict { key: any_key(rng) },
        2 => MetaCommand::HotnessDelta {
            key: any_key(rng),
            at_ms: rng.next_u64(),
        },
        3 => MetaCommand::View(ViewChange::WorkerCrashed {
            worker: (rng.next_u64() % 64) as usize,
            num_workers: (rng.next_u64() % 64) as usize,
        }),
        _ => MetaCommand::View(ViewChange::WorkerRestarted {
            worker: (rng.next_u64() % 64) as usize,
        }),
    }
}

fn any_meta_result(rng: &mut TestRng) -> MetaWireResult {
    match rng.next_u64() % 5 {
        0 => MetaWireResult::Committed {
            epoch: rng.next_u64(),
            index: rng.next_u64(),
        },
        1 => MetaWireResult::NoQuorum,
        2 => MetaWireResult::NodeDown(rng.next_u64() as u32),
        3 => MetaWireResult::NotLeader {
            current: if rng.next_u64().is_multiple_of(2) {
                Some(rng.next_u64() as u32)
            } else {
                None
            },
        },
        _ => MetaWireResult::Fenced {
            stale_epoch: rng.next_u64(),
            current_epoch: rng.next_u64(),
        },
    }
}

/// Bitwise equality for messages whose floats may be NaN: compare the
/// encoded bytes, which are the floats' bit patterns.
fn assert_roundtrip<M: WireCodec>(msg: &M) {
    let frame = msg.to_frame();
    let bytes = encode_frame(&frame);
    let (decoded, used) = decode_frame(&bytes).expect("well-formed frame must decode");
    assert_eq!(used, bytes.len());
    let back = M::from_frame(&decoded).expect("payload must decode");
    assert_eq!(
        encode_frame(&back.to_frame()),
        bytes,
        "re-encoding must reproduce the exact bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&HelloMsg {
            worker: rng.next_u64() as u32,
            scale: any_f64(&mut rng),
            virtual_now: any_f64(&mut rng),
            max_batch_tokens: rng.next_u64(),
            batch_overhead: any_f64(&mut rng),
            slowdown: any_f64(&mut rng),
        });
    }

    #[test]
    fn dispatch_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&any_dispatch(&mut rng));
    }

    #[test]
    fn completion_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&CompletionMsg {
            worker: rng.next_u64() as u32,
            seq: rng.next_u64(),
            suffix_tokens: rng.next_u64(),
            outcome: any_outcome(&mut rng),
        });
    }

    #[test]
    fn orphan_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&OrphanMsg {
            worker: rng.next_u64() as u32,
            item: any_dispatch(&mut rng),
        });
    }

    #[test]
    fn shutdown_roundtrips(_seed in 0u64..u64::MAX) {
        assert_roundtrip(&ShutdownMsg);
    }

    #[test]
    fn meta_cmd_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&MetaCmdMsg {
            seq: rng.next_u64(),
            via: rng.next_u64() as u32,
            cmd: any_meta_cmd(&mut rng),
        });
    }

    #[test]
    fn meta_resp_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&MetaRespMsg {
            seq: rng.next_u64(),
            result: any_meta_result(&mut rng),
        });
    }

    #[test]
    fn fault_event_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        assert_roundtrip(&FaultEventMsg {
            at_secs: any_f64(&mut rng),
            kind: any_fault_kind(&mut rng),
        });
    }

    #[test]
    fn kv_segment_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let rows = (rng.next_u64() % 8 + 1) as u32;
        let cols = (rng.next_u64() % 32) as u32;
        let n = (rows * cols) as usize;
        let planes: Vec<f32> = (0..n).map(|_| any_f32(&mut rng)).collect();
        assert_roundtrip(&KvSegmentMsg {
            key: any_key(&mut rng),
            layer: rng.next_u64() as u32,
            rows,
            cols,
            planes,
        });
    }

    /// Truncating a valid encoded frame at ANY cut point is a typed error.
    #[test]
    fn truncation_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let bytes = encode_frame(&any_dispatch(&mut rng).to_frame());
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(NetError::Truncated { .. }) => {}
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    /// Flipping any single byte of a valid frame either still decodes to
    /// the same message type's payload length (payload bit flips are the
    /// codec's to catch) or surfaces a typed error — never a panic.
    #[test]
    fn corruption_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let msg = any_dispatch(&mut rng);
        let clean = encode_frame(&msg.to_frame());
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 1 << (rng.next_u64() % 8);
            if bytes[i] == clean[i] {
                continue;
            }
            match decode_frame(&bytes) {
                Ok((frame, _)) => {
                    // Header survived (the flip was in the payload): the
                    // typed decoder must not panic either.
                    let _ = DispatchMsg::from_frame(&frame);
                }
                Err(
                    NetError::BadMagic { .. }
                    | NetError::BadVersion { .. }
                    | NetError::BadHeaderCrc { .. }
                    | NetError::FrameTooLarge { .. }
                    | NetError::Truncated { .. }
                    | NetError::Decode(_),
                ) => {}
                Err(other) => panic!("byte {i}: unexpected error {other:?}"),
            }
        }
    }

    /// A random byte soup fed to the stream reader is a typed error.
    #[test]
    fn random_bytes_never_decode_silently(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let n = (rng.next_u64() % 64) as usize;
        let soup: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        // Skip the astronomically-unlikely case of a valid header.
        match decode_frame(&soup) {
            Ok(_) => {}
            Err(e) => {
                // Must be one of the typed variants; Display must not panic.
                let _ = e.to_string();
            }
        }
    }
}
