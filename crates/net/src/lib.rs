//! # bat-net — the pluggable transport layer
//!
//! Everything the serving runtime sends between its scheduler, workers,
//! and meta group crosses one seam: the [`Transport`] trait. This crate
//! owns that seam and both sides of it:
//!
//! - **Frame protocol** ([`frame`]): versioned length-prefixed binary
//!   frames — magic, version, message type, payload length, header CRC —
//!   with typed [`NetError`]s for every way bytes can go wrong.
//! - **Message vocabulary** ([`messages`]): hand-rolled bitwise-exact
//!   codecs for dispatch, completion, orphan, hello, shutdown, meta
//!   command/response, fault events, and plane-major packed-KV segments.
//! - **Backends**: [`ChannelTransport`] moves frames over in-process
//!   crossbeam channels (the deterministic oracle); [`UdsTransport`] and
//!   [`TcpTransport`] move the same frames over real OS sockets.
//!
//! The discipline that makes the socket path trustworthy: the channel
//! backend is correct by construction (no serialization, no partial
//! reads), and the integration suite pins that a serving run over sockets
//! produces **bitwise-identical** deterministic stats to the same run over
//! channels — same seeded trace, same fault schedule, same digest. Any
//! framing, codec, or reconnection bug breaks that pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod messages;
pub mod socket;
pub mod transport;
pub mod wire;

pub use error::NetError;
pub use frame::{
    crc32, decode_frame, decode_header, encode_frame, read_frame, write_frame, Frame, HEADER_LEN,
    MAGIC, MAX_PAYLOAD, VERSION,
};
pub use messages::{
    CompletionMsg, DispatchMsg, FaultEventMsg, HelloMsg, KvSegmentMsg, MetaCmdMsg, MetaRespMsg,
    MetaWireResult, OrphanMsg, ShutdownMsg, WireOutcome, MSG_COMPLETION, MSG_DISPATCH,
    MSG_FAULT_EVENT, MSG_HELLO, MSG_KV_SEGMENT, MSG_META_CMD, MSG_META_RESP, MSG_ORPHAN,
    MSG_SHUTDOWN,
};
#[cfg(unix)]
pub use socket::UdsTransport;
pub use socket::{SocketConn, TcpTransport};
pub use transport::{recv_msg, send_msg, ChannelConn, ChannelTransport, Conn, Listener, Transport};
pub use wire::{WireCodec, WireReader};
