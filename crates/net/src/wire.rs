//! Primitive byte codecs and the [`WireCodec`] trait.
//!
//! Everything is little-endian and fixed-width; floats travel as their IEEE
//! bit patterns (`to_bits`/`from_bits`), so a value round-trips *bitwise* —
//! the property the channel-vs-socket determinism pin depends on. Decoders
//! never index past the buffer: every read goes through [`WireReader`],
//! which returns [`NetError::Truncated`] instead of panicking, and
//! [`WireReader::finish`] rejects trailing garbage so a frame is either
//! exactly one message or a typed error.

use crate::error::NetError;
use crate::frame::Frame;

/// Cursor over a message payload with typed, non-panicking reads.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Truncated {
                needed: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn u16(&mut self) -> Result<u16, NetError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE bit pattern (bitwise-exact, NaNs
    /// included).
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f32` from its IEEE bit pattern.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn f32(&mut self) -> Result<f32, NetError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a `bool` encoded as exactly 0 or 1.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] on exhaustion, [`NetError::Decode`] on any
    /// byte other than 0/1.
    pub fn bool(&mut self) -> Result<bool, NetError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(NetError::Decode(format!("bool byte {other}"))),
        }
    }

    /// Reads an `Option<f64>`: a presence byte then the bits when present.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] or [`NetError::Decode`] on a bad tag.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, NetError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads `n` f32s (e.g. one ColBlock plane).
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the payload is exhausted.
    pub fn f32_slice(&mut self, n: usize, out: &mut Vec<f32>) -> Result<(), NetError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or(NetError::Decode("f32 slice length overflows".into()))?,
        )?;
        out.reserve(n);
        for chunk in bytes.chunks_exact(4) {
            out.push(f32::from_bits(u32::from_le_bytes([
                chunk[0], chunk[1], chunk[2], chunk[3],
            ])));
        }
        Ok(())
    }

    /// Asserts the payload is fully consumed: one frame, one message.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] when trailing bytes remain.
    pub fn finish(self) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(NetError::Decode(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends a `u16` little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends an `f32` as its IEEE bit pattern.
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    put_u32(buf, v.to_bits());
}

/// Appends a `bool` as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Appends an `Option<f64>` as presence byte + bits.
pub fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            put_bool(buf, true);
            put_f64(buf, x);
        }
        None => put_bool(buf, false),
    }
}

/// A message that knows how to cross the wire as one frame.
pub trait WireCodec: Sized {
    /// The frame-header tag identifying this message type.
    const MSG_TYPE: u8;

    /// Appends this message's payload bytes to `buf`.
    fn encode_payload(&self, buf: &mut Vec<u8>);

    /// Decodes the payload (without the trailing-bytes check — callers go
    /// through [`WireCodec::from_frame`], which enforces it).
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] or [`NetError::Decode`] on malformed bytes.
    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError>;

    /// Encodes into a ready-to-send frame.
    fn to_frame(&self) -> Frame {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        Frame::new(Self::MSG_TYPE, payload)
    }

    /// Decodes from a frame, checking the type tag and rejecting trailing
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownMsgType`] on a tag mismatch, plus any payload
    /// decode error.
    fn from_frame(frame: &Frame) -> Result<Self, NetError> {
        if frame.msg_type != Self::MSG_TYPE {
            return Err(NetError::UnknownMsgType(frame.msg_type));
        }
        let mut r = WireReader::new(&frame.payload);
        let msg = Self::decode_payload(&mut r)?;
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_bitwise() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_opt_f64(&mut buf, None);
        put_opt_f64(&mut buf, Some(1.5e-300));
        put_bool(&mut buf, true);
        put_f32(&mut buf, f32::MIN_POSITIVE / 2.0); // subnormal
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(1.5e-300));
        assert!(r.bool().unwrap());
        assert_eq!(r.f32().unwrap(), f32::MIN_POSITIVE / 2.0);
        r.finish().unwrap();
    }

    #[test]
    fn exhausted_reader_is_truncated_not_panic() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(matches!(r.u64(), Err(NetError::Truncated { .. })));
        // The failed read consumed nothing; smaller reads still work.
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_decode_errors() {
        let mut r = WireReader::new(&[7]);
        assert!(matches!(r.bool(), Err(NetError::Decode(_))));
        let r = WireReader::new(&[0, 0]);
        assert!(matches!(r.finish(), Err(NetError::Decode(_))));
    }
}
