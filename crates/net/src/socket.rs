//! Real socket backends: Unix domain sockets and loopback TCP.
//!
//! Both speak the versioned length-prefixed frame protocol from
//! [`crate::frame`]. A [`SocketConn`] owns a detached *pump* thread that
//! blocks in `read_frame` and feeds decoded frames into an internal
//! crossbeam channel; `recv`/`try_recv`/`recv_timeout` then drain that
//! channel. This keeps the receive API uniform with the channel backend
//! and — more importantly — makes `try_recv` safe: a non-blocking read
//! directly off a socket could return mid-frame and desynchronize the
//! stream, but the pump always consumes whole frames.
//!
//! When the pump hits an error it parks the typed [`NetError`] and drops
//! its sender; receivers drain any buffered frames first, then surface
//! that error — so a peer that sends five frames and crashes still
//! delivers all five.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, Frame};
use crate::transport::{Conn, Listener, Transport};
use crossbeam::channel::{unbounded, Receiver, TryRecvError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The stream kinds a [`SocketConn`] can wrap.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        // Best-effort: unblocks the pump thread's read; an already-dead
        // socket is fine.
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A [`Conn`] over a real OS socket with a pump-thread receive path.
pub struct SocketConn {
    writer: Mutex<BufWriter<Stream>>,
    /// A second handle to the same socket, kept for `close` to shut the
    /// stream down and unblock the pump.
    raw: Stream,
    incoming: Receiver<Frame>,
    /// The typed error that ended the pump, once it has.
    fate: Arc<Mutex<Option<NetError>>>,
}

impl SocketConn {
    fn spawn(stream: Stream) -> Result<Arc<SocketConn>, NetError> {
        let reader_stream = stream.try_clone()?;
        let writer_stream = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let fate = Arc::new(Mutex::new(None));
        let pump_fate = Arc::clone(&fate);
        // Detached on purpose: the pump exits when the socket dies or is
        // shut down by `close`, and holds no resources beyond the fd clone.
        std::thread::spawn(move || {
            let mut reader = BufReader::new(reader_stream);
            loop {
                match read_frame(&mut reader) {
                    Ok(frame) => {
                        if tx.send(frame).is_err() {
                            break; // conn dropped; nobody is listening
                        }
                    }
                    Err(e) => {
                        *lock(&pump_fate) = Some(e);
                        break; // tx drops here; receivers see the fate
                    }
                }
            }
        });
        Ok(Arc::new(SocketConn {
            writer: Mutex::new(BufWriter::new(writer_stream)),
            raw: stream,
            incoming: rx,
            fate,
        }))
    }

    /// Wraps an accepted or dialed TCP stream.
    pub fn from_tcp(stream: TcpStream) -> Result<Arc<SocketConn>, NetError> {
        stream.set_nodelay(true).ok();
        Self::spawn(Stream::Tcp(stream))
    }

    /// Wraps an accepted or dialed Unix-domain stream.
    #[cfg(unix)]
    pub fn from_unix(stream: UnixStream) -> Result<Arc<SocketConn>, NetError> {
        Self::spawn(Stream::Unix(stream))
    }

    fn fate(&self) -> NetError {
        lock(&self.fate).clone().unwrap_or(NetError::Disconnected)
    }
}

impl Conn for SocketConn {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        let mut w = lock(&self.writer);
        write_frame(&mut *w, &frame)?;
        w.flush()?;
        Ok(())
    }

    fn recv(&self) -> Result<Frame, NetError> {
        self.incoming.recv().map_err(|_| self.fate())
    }

    fn try_recv(&self) -> Result<Option<Frame>, NetError> {
        match self.incoming.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.fate()),
        }
    }

    fn close(&self) {
        self.raw.shutdown();
    }
}

impl Drop for SocketConn {
    fn drop(&mut self) {
        self.raw.shutdown();
    }
}

/// Listener over a bound TCP socket.
pub struct TcpTransportListener {
    inner: TcpListener,
    addr: String,
}

impl Listener for TcpTransportListener {
    fn accept(&self) -> Result<Arc<dyn Conn>, NetError> {
        let (stream, _) = self.inner.accept()?;
        Ok(SocketConn::from_tcp(stream)? as Arc<dyn Conn>)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Arc<dyn Conn>, NetError> {
        // Flip to non-blocking and poll: `TcpListener` has no native timed
        // accept, and this path only runs during worker (re)join.
        self.inner.set_nonblocking(true)?;
        let result = poll_accept(timeout, || match self.inner.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                Some(SocketConn::from_tcp(stream))
            }
            Err(_) => None,
        });
        self.inner.set_nonblocking(false)?;
        result
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

fn poll_accept(
    timeout: Duration,
    mut try_once: impl FnMut() -> Option<Result<Arc<SocketConn>, NetError>>,
) -> Result<Arc<dyn Conn>, NetError> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(conn) = try_once() {
            return conn.map(|c| c as Arc<dyn Conn>);
        }
        if Instant::now() >= deadline {
            return Err(NetError::Timeout);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Loopback TCP backend. Addresses are `host:port` strings; listening on
/// port 0 binds an ephemeral port, reported by [`Listener::local_addr`].
#[derive(Default)]
pub struct TcpTransport;

impl TcpTransport {
    /// Creates the TCP backend (stateless).
    pub fn new() -> Self {
        TcpTransport
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, NetError> {
        let inner = TcpListener::bind(addr)
            .map_err(|e| NetError::InvalidAddress(format!("bind {addr}: {e}")))?;
        let addr = inner
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(Box::new(TcpTransportListener { inner, addr }))
    }

    fn connect(&self, addr: &str) -> Result<Arc<dyn Conn>, NetError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| NetError::InvalidAddress(format!("connect {addr}: {e}")))?;
        Ok(SocketConn::from_tcp(stream)? as Arc<dyn Conn>)
    }
}

/// Listener over a bound Unix-domain socket. Unlinks its path on drop.
#[cfg(unix)]
pub struct UdsTransportListener {
    inner: UnixListener,
    path: String,
}

#[cfg(unix)]
impl Listener for UdsTransportListener {
    fn accept(&self) -> Result<Arc<dyn Conn>, NetError> {
        let (stream, _) = self.inner.accept()?;
        Ok(SocketConn::from_unix(stream)? as Arc<dyn Conn>)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Arc<dyn Conn>, NetError> {
        self.inner.set_nonblocking(true)?;
        let result = poll_accept(timeout, || match self.inner.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                Some(SocketConn::from_unix(stream))
            }
            Err(_) => None,
        });
        self.inner.set_nonblocking(false)?;
        result
    }

    fn local_addr(&self) -> String {
        self.path.clone()
    }
}

#[cfg(unix)]
impl Drop for UdsTransportListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Unix-domain-socket backend. Addresses are filesystem paths; a stale
/// socket file from a crashed previous run is unlinked before binding.
#[cfg(unix)]
#[derive(Default)]
pub struct UdsTransport;

#[cfg(unix)]
impl UdsTransport {
    /// Creates the UDS backend (stateless).
    pub fn new() -> Self {
        UdsTransport
    }
}

#[cfg(unix)]
impl Transport for UdsTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, NetError> {
        if addr.is_empty() {
            return Err(NetError::InvalidAddress("empty socket path".into()));
        }
        if std::path::Path::new(addr).exists() {
            std::fs::remove_file(addr)
                .map_err(|e| NetError::InvalidAddress(format!("unlink stale {addr}: {e}")))?;
        }
        let inner = UnixListener::bind(addr)
            .map_err(|e| NetError::InvalidAddress(format!("bind {addr}: {e}")))?;
        Ok(Box::new(UdsTransportListener {
            inner,
            path: addr.to_string(),
        }))
    }

    fn connect(&self, addr: &str) -> Result<Arc<dyn Conn>, NetError> {
        let stream = UnixStream::connect(addr)
            .map_err(|e| NetError::InvalidAddress(format!("connect {addr}: {e}")))?;
        Ok(SocketConn::from_unix(stream)? as Arc<dyn Conn>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{CompletionMsg, DispatchMsg, WireOutcome};
    use crate::wire::WireCodec;

    fn exercise(transport: &dyn Transport, addr: &str) {
        let listener = transport.listen(addr).unwrap();
        let dial = listener.local_addr();
        let client = transport.connect(&dial).unwrap();
        let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();

        let d = DispatchMsg {
            seq: 77,
            arrival_virtual: 1.25,
            suffix_tokens: 640,
            service_virtual: 0.03,
            deadline_rel: Some(0.25),
        };
        client.send(d.to_frame()).unwrap();
        let got =
            DispatchMsg::from_frame(&server.recv_timeout(Duration::from_secs(5)).unwrap()).unwrap();
        assert_eq!(got, d);

        let c = CompletionMsg {
            worker: 0,
            seq: 77,
            suffix_tokens: 640,
            outcome: WireOutcome::Completed {
                latency_virtual: 0.04,
                missed: false,
            },
        };
        server.send(c.to_frame()).unwrap();
        let got = CompletionMsg::from_frame(&client.recv_timeout(Duration::from_secs(5)).unwrap())
            .unwrap();
        assert_eq!(got, c);

        // Peer close surfaces as Disconnected after the buffer drains.
        server.send(Frame::new(5, vec![])).unwrap();
        server.close();
        assert_eq!(
            client
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .msg_type,
            5
        );
        assert_eq!(client.recv().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn tcp_loopback_roundtrip() {
        exercise(&TcpTransport::new(), "127.0.0.1:0");
    }

    #[cfg(unix)]
    #[test]
    fn uds_roundtrip() {
        let path = std::env::temp_dir().join(format!("bat-net-test-{}.sock", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        exercise(&UdsTransport::new(), &path);
        // Rebinding over the stale path works.
        let t = UdsTransport::new();
        let _l = t.listen(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn uds_pair_streams_frames() {
        let (a, b) = UnixStream::pair().unwrap();
        let a = SocketConn::from_unix(a).unwrap();
        let b = SocketConn::from_unix(b).unwrap();
        for i in 0..50u8 {
            a.send(Frame::new(9, vec![i; i as usize])).unwrap();
        }
        for i in 0..50u8 {
            let f = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(f.payload, vec![i; i as usize]);
        }
        assert_eq!(b.try_recv().unwrap(), None);
        drop(a);
        assert_eq!(b.recv().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn garbage_on_the_wire_is_a_typed_error_not_a_panic() {
        let listener = TcpTransport::new().listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let mut raw = TcpStream::connect(&addr).unwrap();
        let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        raw.write_all(b"this is not a bat-net frame at all!!")
            .unwrap();
        raw.flush().unwrap();
        drop(raw);
        let err = server.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert!(
            matches!(err, NetError::BadMagic { .. }),
            "expected BadMagic, got {err:?}"
        );
    }

    #[test]
    fn connect_to_nothing_is_invalid_address() {
        assert!(matches!(
            TcpTransport::new().connect("127.0.0.1:1"),
            Err(NetError::InvalidAddress(_))
        ));
    }
}
