//! The wire vocabulary: every control- and data-plane message the serving
//! runtime exchanges, with hand-rolled fixed-layout codecs.
//!
//! | tag | message | direction | role |
//! |-----|---------|-----------|------|
//! | 1 | [`HelloMsg`] | scheduler → worker | handshake: clock base + batch params |
//! | 2 | [`DispatchMsg`] | scheduler → worker | one priced RankRequest job |
//! | 3 | [`CompletionMsg`] | worker → scheduler | terminal outcome of a job |
//! | 4 | [`OrphanMsg`] | worker → scheduler | job bounced off a killed worker |
//! | 5 | [`ShutdownMsg`] | scheduler → worker | drain and exit |
//! | 6 | [`MetaCmdMsg`] | client → meta host | replicated meta-log command |
//! | 7 | [`MetaRespMsg`] | meta host → client | commit receipt or typed refusal |
//! | 8 | [`FaultEventMsg`] | supervisor → peers | scheduled fault notification |
//! | 9 | [`KvSegmentMsg`] | worker ↔ worker | one packed KV layer, plane-major |
//!
//! Codecs are deliberately explicit (no serde): the byte layout *is* the
//! protocol, floats travel as bit patterns, and every decoder returns a
//! typed [`NetError`] on malformed input instead of panicking.

use crate::error::NetError;
use crate::wire::{put_bool, put_f64, put_opt_f64, put_u32, put_u64, WireCodec, WireReader};
use bat_faults::{FaultEvent, FaultKind};
use bat_kvcache::CacheKey;
use bat_meta::{MetaCommand, MetaError, Receipt, ViewChange};
use bat_tensor::ColBlock;
use bat_types::{ItemId, RejectReason, UserId, WorkerId};

/// Frame tag of [`HelloMsg`].
pub const MSG_HELLO: u8 = 1;
/// Frame tag of [`DispatchMsg`].
pub const MSG_DISPATCH: u8 = 2;
/// Frame tag of [`CompletionMsg`].
pub const MSG_COMPLETION: u8 = 3;
/// Frame tag of [`OrphanMsg`].
pub const MSG_ORPHAN: u8 = 4;
/// Frame tag of [`ShutdownMsg`].
pub const MSG_SHUTDOWN: u8 = 5;
/// Frame tag of [`MetaCmdMsg`].
pub const MSG_META_CMD: u8 = 6;
/// Frame tag of [`MetaRespMsg`].
pub const MSG_META_RESP: u8 = 7;
/// Frame tag of [`FaultEventMsg`].
pub const MSG_FAULT_EVENT: u8 = 8;
/// Frame tag of [`KvSegmentMsg`].
pub const MSG_KV_SEGMENT: u8 = 9;

/// Handshake sent by the scheduler as the first frame on every worker
/// connection (and again after a worker rejoins). Carries everything one
/// worker incarnation needs: its index, the virtual-clock base at send
/// time, and the batching/cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HelloMsg {
    /// The worker's index in the cluster.
    pub worker: u32,
    /// Wall-clock seconds per virtual second.
    pub scale: f64,
    /// Virtual time at the moment the scheduler sent this hello; the
    /// worker's clock base.
    pub virtual_now: f64,
    /// Opportunistic-batching token ceiling.
    pub max_batch_tokens: u64,
    /// Fixed per-batch overhead, virtual seconds.
    pub batch_overhead: f64,
    /// Straggler slowdown factor for this worker (1 = nominal).
    pub slowdown: f64,
}

impl WireCodec for HelloMsg {
    const MSG_TYPE: u8 = MSG_HELLO;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.worker);
        put_f64(buf, self.scale);
        put_f64(buf, self.virtual_now);
        put_u64(buf, self.max_batch_tokens);
        put_f64(buf, self.batch_overhead);
        put_f64(buf, self.slowdown);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(HelloMsg {
            worker: r.u32()?,
            scale: r.f64()?,
            virtual_now: r.f64()?,
            max_batch_tokens: r.u64()?,
            batch_overhead: r.f64()?,
            slowdown: r.f64()?,
        })
    }
}

/// One dispatched job: the priced durations and accounting the worker
/// needs, in virtual seconds. `seq` is the scheduler's per-run dispatch
/// sequence number; completions and orphans echo it so the scheduler can
/// retire the in-flight entry (and re-issue it if the worker dies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchMsg {
    /// Scheduler-assigned dispatch sequence number.
    pub seq: u64,
    /// Virtual arrival time at the scheduler.
    pub arrival_virtual: f64,
    /// Suffix tokens this job computes (the load-balancing weight).
    pub suffix_tokens: u64,
    /// Priced service duration, virtual seconds.
    pub service_virtual: f64,
    /// Completion deadline relative to arrival, virtual seconds; `None`
    /// for best-effort.
    pub deadline_rel: Option<f64>,
}

impl WireCodec for DispatchMsg {
    const MSG_TYPE: u8 = MSG_DISPATCH;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.seq);
        put_f64(buf, self.arrival_virtual);
        put_u64(buf, self.suffix_tokens);
        put_f64(buf, self.service_virtual);
        put_opt_f64(buf, self.deadline_rel);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(DispatchMsg {
            seq: r.u64()?,
            arrival_virtual: r.f64()?,
            suffix_tokens: r.u64()?,
            service_virtual: r.f64()?,
            deadline_rel: r.opt_f64()?,
        })
    }
}

/// Terminal outcome carried by a [`CompletionMsg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireOutcome {
    /// Served to completion.
    Completed {
        /// End-to-end latency, virtual seconds.
        latency_virtual: f64,
        /// Whether the deadline had already passed at completion.
        missed: bool,
    },
    /// Swept from the queue after its deadline expired.
    Shed,
    /// Refused at admission (scheduler-internal outcome; carried for
    /// vocabulary completeness so one codec covers every terminal state).
    Rejected(RejectReason),
}

fn put_reject_reason(buf: &mut Vec<u8>, r: RejectReason) {
    buf.push(match r {
        RejectReason::QueueFull => 0,
        RejectReason::DeadlineInfeasible => 1,
        RejectReason::BrownoutShed => 2,
    });
}

fn get_reject_reason(r: &mut WireReader<'_>) -> Result<RejectReason, NetError> {
    match r.u8()? {
        0 => Ok(RejectReason::QueueFull),
        1 => Ok(RejectReason::DeadlineInfeasible),
        2 => Ok(RejectReason::BrownoutShed),
        other => Err(NetError::Decode(format!("reject reason tag {other}"))),
    }
}

/// One terminal event for one dispatched job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionMsg {
    /// Index of the worker that served (or shed) the job.
    pub worker: u32,
    /// Echo of the dispatch sequence number.
    pub seq: u64,
    /// Echo of the job's token weight, so the scheduler can release the
    /// worker's queued-token account without a lookup.
    pub suffix_tokens: u64,
    /// What happened.
    pub outcome: WireOutcome,
}

impl WireCodec for CompletionMsg {
    const MSG_TYPE: u8 = MSG_COMPLETION;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.worker);
        put_u64(buf, self.seq);
        put_u64(buf, self.suffix_tokens);
        match self.outcome {
            WireOutcome::Completed {
                latency_virtual,
                missed,
            } => {
                buf.push(0);
                put_f64(buf, latency_virtual);
                put_bool(buf, missed);
            }
            WireOutcome::Shed => buf.push(1),
            WireOutcome::Rejected(reason) => {
                buf.push(2);
                put_reject_reason(buf, reason);
            }
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let worker = r.u32()?;
        let seq = r.u64()?;
        let suffix_tokens = r.u64()?;
        let outcome = match r.u8()? {
            0 => WireOutcome::Completed {
                latency_virtual: r.f64()?,
                missed: r.bool()?,
            },
            1 => WireOutcome::Shed,
            2 => WireOutcome::Rejected(get_reject_reason(r)?),
            other => return Err(NetError::Decode(format!("outcome tag {other}"))),
        };
        Ok(CompletionMsg {
            worker,
            seq,
            suffix_tokens,
            outcome,
        })
    }
}

/// A job handed back unserved by a worker that observed its own kill flag:
/// the scheduler re-dispatches it to a live worker. Work is never dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrphanMsg {
    /// Index of the (dead) worker bouncing the job.
    pub worker: u32,
    /// The unserved job, verbatim.
    pub item: DispatchMsg,
}

impl WireCodec for OrphanMsg {
    const MSG_TYPE: u8 = MSG_ORPHAN;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.worker);
        self.item.encode_payload(buf);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(OrphanMsg {
            worker: r.u32()?,
            item: DispatchMsg::decode_payload(r)?,
        })
    }
}

/// Orderly shutdown: the worker finishes its current batch and exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownMsg;

impl WireCodec for ShutdownMsg {
    const MSG_TYPE: u8 = MSG_SHUTDOWN;

    fn encode_payload(&self, _buf: &mut Vec<u8>) {}

    fn decode_payload(_r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(ShutdownMsg)
    }
}

fn put_cache_key(buf: &mut Vec<u8>, key: CacheKey) {
    match key {
        CacheKey::User(u) => {
            buf.push(0);
            put_u64(buf, u.as_u64());
        }
        CacheKey::Item(i) => {
            buf.push(1);
            put_u64(buf, i.as_u64());
        }
    }
}

fn get_cache_key(r: &mut WireReader<'_>) -> Result<CacheKey, NetError> {
    match r.u8()? {
        0 => Ok(CacheKey::User(UserId::new(r.u64()?))),
        1 => Ok(CacheKey::Item(ItemId::new(r.u64()?))),
        other => Err(NetError::Decode(format!("cache key tag {other}"))),
    }
}

/// One command submitted to the replicated cache-meta group over the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaCmdMsg {
    /// Client-assigned request sequence number, echoed by the response.
    pub seq: u64,
    /// Replica the client is contacting (for redirect bookkeeping).
    pub via: u32,
    /// The replicated state-machine command.
    pub cmd: MetaCommand,
}

impl WireCodec for MetaCmdMsg {
    const MSG_TYPE: u8 = MSG_META_CMD;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.seq);
        put_u32(buf, self.via);
        match self.cmd {
            MetaCommand::RegisterEntry { key, bytes } => {
                buf.push(0);
                put_cache_key(buf, key);
                put_u64(buf, bytes);
            }
            MetaCommand::Evict { key } => {
                buf.push(1);
                put_cache_key(buf, key);
            }
            MetaCommand::HotnessDelta { key, at_ms } => {
                buf.push(2);
                put_cache_key(buf, key);
                put_u64(buf, at_ms);
            }
            MetaCommand::View(ViewChange::WorkerCrashed {
                worker,
                num_workers,
            }) => {
                buf.push(3);
                put_u64(buf, worker as u64);
                put_u64(buf, num_workers as u64);
            }
            MetaCommand::View(ViewChange::WorkerRestarted { worker }) => {
                buf.push(4);
                put_u64(buf, worker as u64);
            }
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let seq = r.u64()?;
        let via = r.u32()?;
        let cmd = match r.u8()? {
            0 => MetaCommand::RegisterEntry {
                key: get_cache_key(r)?,
                bytes: r.u64()?,
            },
            1 => MetaCommand::Evict {
                key: get_cache_key(r)?,
            },
            2 => MetaCommand::HotnessDelta {
                key: get_cache_key(r)?,
                at_ms: r.u64()?,
            },
            3 => MetaCommand::View(ViewChange::WorkerCrashed {
                worker: r.u64()? as usize,
                num_workers: r.u64()? as usize,
            }),
            4 => MetaCommand::View(ViewChange::WorkerRestarted {
                worker: r.u64()? as usize,
            }),
            other => return Err(NetError::Decode(format!("meta command tag {other}"))),
        };
        Ok(MetaCmdMsg { seq, via, cmd })
    }
}

/// Wire form of a meta submission's result: either a commit
/// [`Receipt`] or a typed [`MetaError`] refusal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetaWireResult {
    /// The command committed at this epoch and log index.
    Committed {
        /// Epoch the entry committed under.
        epoch: u64,
        /// Global log index of the committed entry.
        index: u64,
    },
    /// Not enough live replicas acknowledged.
    NoQuorum,
    /// The contacted replica is down.
    NodeDown(u32),
    /// The contacted replica is a follower.
    NotLeader {
        /// The leader to redirect to, when one is known.
        current: Option<u32>,
    },
    /// Epoch fencing rejected a deposed leader's write.
    Fenced {
        /// The deposed leader's stale epoch.
        stale_epoch: u64,
        /// The higher epoch that fenced it.
        current_epoch: u64,
    },
}

impl From<Result<Receipt, MetaError>> for MetaWireResult {
    fn from(r: Result<Receipt, MetaError>) -> Self {
        match r {
            Ok(receipt) => MetaWireResult::Committed {
                epoch: receipt.epoch,
                index: receipt.index as u64,
            },
            Err(MetaError::NoQuorum) => MetaWireResult::NoQuorum,
            Err(MetaError::NodeDown(m)) => MetaWireResult::NodeDown(m as u32),
            Err(MetaError::NotLeader { current }) => MetaWireResult::NotLeader {
                current: current.map(|c| c as u32),
            },
            Err(MetaError::Fenced {
                stale_epoch,
                current_epoch,
            }) => MetaWireResult::Fenced {
                stale_epoch,
                current_epoch,
            },
        }
    }
}

impl From<MetaWireResult> for Result<Receipt, MetaError> {
    fn from(w: MetaWireResult) -> Self {
        match w {
            MetaWireResult::Committed { epoch, index } => Ok(Receipt {
                epoch,
                index: index as usize,
            }),
            MetaWireResult::NoQuorum => Err(MetaError::NoQuorum),
            MetaWireResult::NodeDown(m) => Err(MetaError::NodeDown(m as usize)),
            MetaWireResult::NotLeader { current } => Err(MetaError::NotLeader {
                current: current.map(|c| c as usize),
            }),
            MetaWireResult::Fenced {
                stale_epoch,
                current_epoch,
            } => Err(MetaError::Fenced {
                stale_epoch,
                current_epoch,
            }),
        }
    }
}

/// Response to one [`MetaCmdMsg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaRespMsg {
    /// Echo of the request sequence number.
    pub seq: u64,
    /// Commit receipt or typed refusal.
    pub result: MetaWireResult,
}

impl WireCodec for MetaRespMsg {
    const MSG_TYPE: u8 = MSG_META_RESP;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.seq);
        match self.result {
            MetaWireResult::Committed { epoch, index } => {
                buf.push(0);
                put_u64(buf, epoch);
                put_u64(buf, index);
            }
            MetaWireResult::NoQuorum => buf.push(1),
            MetaWireResult::NodeDown(m) => {
                buf.push(2);
                put_u32(buf, m);
            }
            MetaWireResult::NotLeader { current } => {
                buf.push(3);
                match current {
                    Some(c) => {
                        put_bool(buf, true);
                        put_u32(buf, c);
                    }
                    None => put_bool(buf, false),
                }
            }
            MetaWireResult::Fenced {
                stale_epoch,
                current_epoch,
            } => {
                buf.push(4);
                put_u64(buf, stale_epoch);
                put_u64(buf, current_epoch);
            }
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let seq = r.u64()?;
        let result = match r.u8()? {
            0 => MetaWireResult::Committed {
                epoch: r.u64()?,
                index: r.u64()?,
            },
            1 => MetaWireResult::NoQuorum,
            2 => MetaWireResult::NodeDown(r.u32()?),
            3 => MetaWireResult::NotLeader {
                current: if r.bool()? { Some(r.u32()?) } else { None },
            },
            4 => MetaWireResult::Fenced {
                stale_epoch: r.u64()?,
                current_epoch: r.u64()?,
            },
            other => return Err(NetError::Decode(format!("meta result tag {other}"))),
        };
        Ok(MetaRespMsg { seq, result })
    }
}

/// A scheduled fault event, as the fault supervisor would broadcast it to
/// remote peers (the sim and thread runtimes consume schedules in-process;
/// multi-node deployments ship them as frames).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEventMsg {
    /// When the fault fires, trace seconds.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

impl From<FaultEvent> for FaultEventMsg {
    fn from(e: FaultEvent) -> Self {
        FaultEventMsg {
            at_secs: e.at_secs,
            kind: e.kind,
        }
    }
}

impl From<FaultEventMsg> for FaultEvent {
    fn from(m: FaultEventMsg) -> Self {
        FaultEvent {
            at_secs: m.at_secs,
            kind: m.kind,
        }
    }
}

impl WireCodec for FaultEventMsg {
    const MSG_TYPE: u8 = MSG_FAULT_EVENT;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_f64(buf, self.at_secs);
        match self.kind {
            FaultKind::WorkerCrash(w) => {
                buf.push(0);
                put_u64(buf, w.as_u64());
            }
            FaultKind::WorkerRestart(w) => {
                buf.push(1);
                put_u64(buf, w.as_u64());
            }
            FaultKind::LinkDegrade { factor } => {
                buf.push(2);
                put_f64(buf, factor);
            }
            FaultKind::LinkRestore => buf.push(3),
            FaultKind::MetaStall { duration_secs } => {
                buf.push(4);
                put_f64(buf, duration_secs);
            }
            FaultKind::MetaCrash(m) => {
                buf.push(5);
                put_u64(buf, m as u64);
            }
            FaultKind::MetaRestart(m) => {
                buf.push(6);
                put_u64(buf, m as u64);
            }
            FaultKind::CutLink { a, b } => {
                buf.push(7);
                put_u64(buf, a.as_u64());
                put_u64(buf, b.as_u64());
            }
            FaultKind::HealLink { a, b } => {
                buf.push(8);
                put_u64(buf, a.as_u64());
                put_u64(buf, b.as_u64());
            }
            FaultKind::SlowLink { a, b, factor } => {
                buf.push(9);
                put_u64(buf, a.as_u64());
                put_u64(buf, b.as_u64());
                put_f64(buf, factor);
            }
            FaultKind::WorkerDrain(w) => {
                buf.push(10);
                put_u64(buf, w.as_u64());
            }
            FaultKind::WorkerJoin(w) => {
                buf.push(11);
                put_u64(buf, w.as_u64());
            }
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let at_secs = r.f64()?;
        let kind = match r.u8()? {
            0 => FaultKind::WorkerCrash(WorkerId::new(r.u64()?)),
            1 => FaultKind::WorkerRestart(WorkerId::new(r.u64()?)),
            2 => FaultKind::LinkDegrade { factor: r.f64()? },
            3 => FaultKind::LinkRestore,
            4 => FaultKind::MetaStall {
                duration_secs: r.f64()?,
            },
            5 => FaultKind::MetaCrash(r.u64()? as usize),
            6 => FaultKind::MetaRestart(r.u64()? as usize),
            7 => FaultKind::CutLink {
                a: WorkerId::new(r.u64()?),
                b: WorkerId::new(r.u64()?),
            },
            8 => FaultKind::HealLink {
                a: WorkerId::new(r.u64()?),
                b: WorkerId::new(r.u64()?),
            },
            9 => FaultKind::SlowLink {
                a: WorkerId::new(r.u64()?),
                b: WorkerId::new(r.u64()?),
                factor: r.f64()?,
            },
            10 => FaultKind::WorkerDrain(WorkerId::new(r.u64()?)),
            11 => FaultKind::WorkerJoin(WorkerId::new(r.u64()?)),
            other => return Err(NetError::Decode(format!("fault kind tag {other}"))),
        };
        Ok(FaultEventMsg { at_secs, kind })
    }
}

/// One packed KV layer on the wire: the cache entry's identity plus its
/// transposed-packed [`ColBlock`], written **plane-major** — plane 0's
/// columns contiguously, then plane 1's, and so on. This mirrors the
/// paper's RDMA story: each plane is one contiguous `memcpy`-able region
/// of the cache-resident layout, so serialization is a straight walk of
/// the block with no per-token gather.
#[derive(Debug, Clone, PartialEq)]
pub struct KvSegmentMsg {
    /// Which cache entry this layer belongs to.
    pub key: CacheKey,
    /// Transformer layer index.
    pub layer: u32,
    /// Plane count (`kv_dim`).
    pub rows: u32,
    /// Column count (tokens).
    pub cols: u32,
    /// `rows * cols` f32s, plane-major.
    pub planes: Vec<f32>,
}

impl KvSegmentMsg {
    /// Serializes one packed block (its live `len` columns; spare capacity
    /// is not shipped).
    ///
    /// # Panics
    ///
    /// Never: every block shape is representable.
    pub fn from_block(key: CacheKey, layer: u32, block: &ColBlock) -> Self {
        let rows = block.rows();
        let cols = block.len();
        let mut planes = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            planes.extend_from_slice(block.plane(r));
        }
        KvSegmentMsg {
            key,
            layer,
            rows: rows as u32,
            cols: cols as u32,
            planes,
        }
    }

    /// Reconstructs the packed block, plane-major in, plane-major out.
    pub fn to_block(&self) -> ColBlock {
        ColBlock::from_planes(self.rows as usize, self.cols as usize, &self.planes)
    }
}

impl WireCodec for KvSegmentMsg {
    const MSG_TYPE: u8 = MSG_KV_SEGMENT;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        put_cache_key(buf, self.key);
        put_u32(buf, self.layer);
        put_u32(buf, self.rows);
        put_u32(buf, self.cols);
        buf.reserve(self.planes.len() * 4);
        for &v in &self.planes {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let key = get_cache_key(r)?;
        let layer = r.u32()?;
        let rows = r.u32()?;
        let cols = r.u32()?;
        let n = (rows as usize)
            .checked_mul(cols as usize)
            .ok_or_else(|| NetError::Decode("KV segment shape overflows".into()))?;
        let mut planes = Vec::new();
        r.f32_slice(n, &mut planes)?;
        Ok(KvSegmentMsg {
            key,
            layer,
            rows,
            cols,
            planes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn roundtrip<M: WireCodec + PartialEq + std::fmt::Debug>(msg: &M) {
        let frame = msg.to_frame();
        let (frame2, _) = decode_frame(&encode_frame(&frame)).unwrap();
        let back = M::from_frame(&frame2).unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn every_message_type_roundtrips() {
        roundtrip(&HelloMsg {
            worker: 3,
            scale: 1e-3,
            virtual_now: 0.25,
            max_batch_tokens: 8192,
            batch_overhead: 0.004,
            slowdown: 5.0,
        });
        roundtrip(&DispatchMsg {
            seq: 42,
            arrival_virtual: 1.75,
            suffix_tokens: 900,
            service_virtual: 0.02,
            deadline_rel: Some(0.2),
        });
        roundtrip(&CompletionMsg {
            worker: 1,
            seq: 42,
            suffix_tokens: 900,
            outcome: WireOutcome::Completed {
                latency_virtual: 0.031,
                missed: false,
            },
        });
        roundtrip(&CompletionMsg {
            worker: 0,
            seq: 7,
            suffix_tokens: 10,
            outcome: WireOutcome::Rejected(RejectReason::BrownoutShed),
        });
        roundtrip(&OrphanMsg {
            worker: 2,
            item: DispatchMsg {
                seq: 9,
                arrival_virtual: 0.5,
                suffix_tokens: 64,
                service_virtual: 0.001,
                deadline_rel: None,
            },
        });
        roundtrip(&ShutdownMsg);
        roundtrip(&MetaCmdMsg {
            seq: 5,
            via: 1,
            cmd: MetaCommand::RegisterEntry {
                key: CacheKey::User(UserId::new(77)),
                bytes: 4096,
            },
        });
        roundtrip(&MetaRespMsg {
            seq: 5,
            result: MetaWireResult::Fenced {
                stale_epoch: 2,
                current_epoch: 4,
            },
        });
        roundtrip(&FaultEventMsg {
            at_secs: 12.5,
            kind: FaultKind::SlowLink {
                a: WorkerId::new(0),
                b: WorkerId::new(3),
                factor: 150.0,
            },
        });
        roundtrip(&FaultEventMsg {
            at_secs: 20.0,
            kind: FaultKind::WorkerDrain(WorkerId::new(2)),
        });
        roundtrip(&FaultEventMsg {
            at_secs: 25.0,
            kind: FaultKind::WorkerJoin(WorkerId::new(2)),
        });
        let mut block = ColBlock::new(4);
        for j in 0..6 {
            let col: Vec<f32> = (0..4).map(|r| (r * 10 + j) as f32).collect();
            block.push_col(&col);
        }
        roundtrip(&KvSegmentMsg::from_block(
            CacheKey::Item(ItemId::new(12)),
            2,
            &block,
        ));
    }

    #[test]
    fn kv_segment_reconstructs_the_block() {
        let mut block = ColBlock::new(3);
        for j in 0..5 {
            block.push_col(&[j as f32, -(j as f32), 0.5 * j as f32]);
        }
        let msg = KvSegmentMsg::from_block(CacheKey::User(UserId::new(1)), 0, &block);
        let back = msg.to_block();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.len(), 5);
        for r in 0..3 {
            assert_eq!(back.plane(r), block.plane(r), "plane {r}");
        }
    }

    #[test]
    fn meta_result_converts_both_ways() {
        let cases: Vec<Result<Receipt, MetaError>> = vec![
            Ok(Receipt {
                epoch: 3,
                index: 17,
            }),
            Err(MetaError::NoQuorum),
            Err(MetaError::NodeDown(2)),
            Err(MetaError::NotLeader { current: Some(1) }),
            Err(MetaError::NotLeader { current: None }),
            Err(MetaError::Fenced {
                stale_epoch: 1,
                current_epoch: 2,
            }),
        ];
        for case in cases {
            let wire: MetaWireResult = case.into();
            let back: Result<Receipt, MetaError> = wire.into();
            assert_eq!(back, case);
        }
    }

    #[test]
    fn wrong_tag_and_bad_payload_are_typed_errors() {
        let frame = ShutdownMsg.to_frame();
        assert!(matches!(
            DispatchMsg::from_frame(&frame),
            Err(NetError::UnknownMsgType(MSG_SHUTDOWN))
        ));
        // Truncated dispatch payload.
        let mut frame = DispatchMsg {
            seq: 1,
            arrival_virtual: 0.0,
            suffix_tokens: 1,
            service_virtual: 0.0,
            deadline_rel: None,
        }
        .to_frame();
        frame.payload.truncate(5);
        assert!(matches!(
            DispatchMsg::from_frame(&frame),
            Err(NetError::Truncated { .. })
        ));
        // Trailing bytes.
        let mut frame = ShutdownMsg.to_frame();
        frame.payload.push(0);
        assert!(matches!(
            ShutdownMsg::from_frame(&frame),
            Err(NetError::Decode(_))
        ));
    }
}
