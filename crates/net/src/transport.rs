//! The pluggable [`Transport`] abstraction and its deterministic oracle,
//! [`ChannelTransport`].
//!
//! A transport gives the runtime three things: `listen` (bind a named
//! endpoint), `accept` (wait for a peer), and `connect` (dial one). Both
//! sides then hold a [`Conn`] — a bidirectional, frame-oriented pipe with
//! blocking, non-blocking, and bounded-wait receives. The serving runtime
//! is written against these traits only; whether frames cross a crossbeam
//! channel, a Unix socket, or a TCP loopback is a construction-time choice.
//!
//! `ChannelTransport` is the reference backend: frames move through
//! in-process crossbeam channels with no byte serialization, so it is
//! immune to socket-layer bugs by construction. The socket backends must
//! reproduce its observable behavior bit for bit — that contract is pinned
//! by the `integration_transport` determinism test.

use crate::error::NetError;
use crate::frame::Frame;
use crate::wire::WireCodec;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long `recv_timeout` sleeps between polls. The compat crossbeam
/// channel has no native timed receive, so bounded waits poll; 50µs keeps
/// worst-case added latency far below the runtime's virtual-time quanta.
const POLL_INTERVAL: Duration = Duration::from_micros(50);

/// One bidirectional frame pipe between two peers.
///
/// All methods take `&self`: connections are shared across threads (a
/// dispatcher sending while a reader blocks in `recv`), so implementations
/// synchronize internally.
pub trait Conn: Send + Sync {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the peer is gone; socket backends
    /// may surface other typed I/O failures.
    fn send(&self, frame: Frame) -> Result<(), NetError>;

    /// Blocks until a frame arrives.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the peer closed cleanly, or the
    /// typed decode/I/O error that killed the stream.
    fn recv(&self) -> Result<Frame, NetError>;

    /// Returns a frame if one is already buffered, `Ok(None)` otherwise.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] (or the stream's fatal error) once the
    /// buffer is drained and the peer is gone.
    fn try_recv(&self) -> Result<Option<Frame>, NetError>;

    /// Waits up to `timeout` for a frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline passes, otherwise as
    /// [`Conn::recv`].
    fn recv_timeout(&self, timeout: Duration) -> Result<Frame, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(frame) = self.try_recv()? {
                return Ok(frame);
            }
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Tears the connection down; pending and future operations on either
    /// side fail with [`NetError::Disconnected`]. Idempotent.
    fn close(&self);
}

/// Encodes and sends a typed message over any connection.
///
/// # Errors
///
/// As [`Conn::send`].
pub fn send_msg<M: WireCodec>(conn: &dyn Conn, msg: &M) -> Result<(), NetError> {
    conn.send(msg.to_frame())
}

/// Receives and decodes a typed message, rejecting other frame types.
///
/// # Errors
///
/// As [`Conn::recv`], plus [`NetError::UnknownMsgType`] when the next
/// frame is not an `M`.
pub fn recv_msg<M: WireCodec>(conn: &dyn Conn) -> Result<M, NetError> {
    M::from_frame(&conn.recv()?)
}

/// A bound endpoint waiting for peers.
pub trait Listener: Send + Sync {
    /// Blocks until a peer connects.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the listener is closed, or a typed
    /// I/O failure.
    fn accept(&self) -> Result<Arc<dyn Conn>, NetError>;

    /// Waits up to `timeout` for a peer.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline passes, otherwise as
    /// [`Listener::accept`].
    fn accept_timeout(&self, timeout: Duration) -> Result<Arc<dyn Conn>, NetError>;

    /// The address peers should dial — for socket listeners bound to an
    /// ephemeral port this differs from the requested address.
    fn local_addr(&self) -> String;
}

/// A way of producing connections: the runtime's seam between "what is
/// sent" and "how it travels".
pub trait Transport: Send + Sync {
    /// Binds a named endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidAddress`] on a malformed or already-bound
    /// address, or a typed I/O failure.
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, NetError>;

    /// Dials a bound endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidAddress`] when nothing is bound there, or a
    /// typed I/O failure.
    fn connect(&self, addr: &str) -> Result<Arc<dyn Conn>, NetError>;
}

// ---------------------------------------------------------------------------
// Channel backend: the deterministic in-process oracle.
// ---------------------------------------------------------------------------

/// One direction of the duplex: the receiver side's frame queue plus the
/// open/closed state of both endpoints, under one lock so a blocked `recv`
/// can wait on the condvar and be woken by a send *or* either side's close.
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

struct PipeState {
    queue: VecDeque<Frame>,
    /// False once the sending side closed (or dropped): the receiver
    /// drains buffered frames, then observes the disconnect.
    sender_open: bool,
    /// False once the receiving side closed locally: its own blocked
    /// `recv` wakes immediately, and peer sends start failing.
    receiver_open: bool,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                sender_open: true,
                receiver_open: true,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// In-process [`Conn`]: two condvar-backed frame queues. `recv` blocks
/// natively (no polling), which keeps the channel oracle's delivery
/// latency at thread-wakeup cost — the bar the socket backends are
/// measured against.
pub struct ChannelConn {
    /// The pipe this side receives from.
    rx: Arc<Pipe>,
    /// The peer's receive pipe — this side's send target.
    tx: Arc<Pipe>,
}

impl ChannelConn {
    /// Builds both ends of a duplex in-process connection.
    pub fn pair() -> (Arc<ChannelConn>, Arc<ChannelConn>) {
        let (ab, ba) = (Pipe::new(), Pipe::new());
        let a = Arc::new(ChannelConn {
            rx: Arc::clone(&ba),
            tx: Arc::clone(&ab),
        });
        let b = Arc::new(ChannelConn { rx: ab, tx: ba });
        (a, b)
    }
}

impl Conn for ChannelConn {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        let mut tx = self.tx.lock();
        if !tx.sender_open || !tx.receiver_open {
            return Err(NetError::Disconnected);
        }
        tx.queue.push_back(frame);
        drop(tx);
        self.tx.cond.notify_all();
        Ok(())
    }

    fn recv(&self) -> Result<Frame, NetError> {
        let mut rx = self.rx.lock();
        loop {
            if let Some(frame) = rx.queue.pop_front() {
                return Ok(frame);
            }
            if !rx.receiver_open || !rx.sender_open {
                return Err(NetError::Disconnected);
            }
            rx = self
                .rx
                .cond
                .wait(rx)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn try_recv(&self) -> Result<Option<Frame>, NetError> {
        let mut rx = self.rx.lock();
        if let Some(frame) = rx.queue.pop_front() {
            return Ok(Some(frame));
        }
        if !rx.receiver_open || !rx.sender_open {
            return Err(NetError::Disconnected);
        }
        Ok(None)
    }

    fn close(&self) {
        // Two independent locks, never held together: no ordering hazard.
        self.rx.lock().receiver_open = false;
        self.rx.cond.notify_all(); // wake our own blocked recv
        self.tx.lock().sender_open = false;
        self.tx.cond.notify_all(); // peer drains, then disconnects
    }
}

impl Drop for ChannelConn {
    /// Dropping an end behaves like closing it, so a peer blocked in
    /// `recv` never hangs on a connection nobody holds anymore.
    fn drop(&mut self) {
        self.close();
    }
}

/// Listener side of a channel endpoint: a queue of freshly paired conns.
struct ChannelListener {
    addr: String,
    incoming: Receiver<Arc<ChannelConn>>,
}

impl Listener for ChannelListener {
    fn accept(&self) -> Result<Arc<dyn Conn>, NetError> {
        self.incoming
            .recv()
            .map(|c| c as Arc<dyn Conn>)
            .map_err(|_| NetError::Disconnected)
    }

    fn accept_timeout(&self, timeout: Duration) -> Result<Arc<dyn Conn>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.incoming.try_recv() {
                Ok(c) => return Ok(c as Arc<dyn Conn>),
                Err(TryRecvError::Disconnected) => return Err(NetError::Disconnected),
                Err(TryRecvError::Empty) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

/// The in-process channel backend. Each instance owns a private address
/// namespace — two `ChannelTransport`s cannot see each other's listeners,
/// which keeps tests hermetic.
#[derive(Default)]
pub struct ChannelTransport {
    registry: Mutex<HashMap<String, Sender<Arc<ChannelConn>>>>,
}

impl ChannelTransport {
    /// Creates an empty transport (no bound endpoints).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for ChannelTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, NetError> {
        if addr.is_empty() {
            return Err(NetError::InvalidAddress("empty address".into()));
        }
        let mut reg = self
            .registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if reg.contains_key(addr) {
            return Err(NetError::InvalidAddress(format!(
                "address already bound: {addr}"
            )));
        }
        let (tx, rx) = bounded(64);
        reg.insert(addr.to_string(), tx);
        Ok(Box::new(ChannelListener {
            addr: addr.to_string(),
            incoming: rx,
        }))
    }

    fn connect(&self, addr: &str) -> Result<Arc<dyn Conn>, NetError> {
        let accept_tx = {
            let reg = self
                .registry
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            reg.get(addr)
                .cloned()
                .ok_or_else(|| NetError::InvalidAddress(format!("nothing bound at {addr}")))?
        };
        let (client, server) = ChannelConn::pair();
        accept_tx.send(server).map_err(|_| NetError::Disconnected)?;
        Ok(client as Arc<dyn Conn>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{DispatchMsg, ShutdownMsg};

    #[test]
    fn pair_carries_frames_both_ways() {
        let (a, b) = ChannelConn::pair();
        a.send(Frame::new(1, vec![1])).unwrap();
        b.send(Frame::new(2, vec![2])).unwrap();
        assert_eq!(b.recv().unwrap().payload, vec![1]);
        assert_eq!(a.recv().unwrap().payload, vec![2]);
        assert_eq!(a.try_recv().unwrap(), None);
    }

    #[test]
    fn listen_connect_accept_roundtrip() {
        let t = ChannelTransport::new();
        let listener = t.listen("worker-0").unwrap();
        let client = t.connect("worker-0").unwrap();
        let server = listener.accept_timeout(Duration::from_secs(1)).unwrap();
        send_msg(
            client.as_ref(),
            &DispatchMsg {
                seq: 1,
                arrival_virtual: 0.5,
                suffix_tokens: 10,
                service_virtual: 0.01,
                deadline_rel: None,
            },
        )
        .unwrap();
        let msg: DispatchMsg = recv_msg(server.as_ref()).unwrap();
        assert_eq!(msg.seq, 1);
    }

    #[test]
    fn double_bind_and_unknown_addr_are_invalid_address() {
        let t = ChannelTransport::new();
        let _l = t.listen("x").unwrap();
        assert!(matches!(t.listen("x"), Err(NetError::InvalidAddress(_))));
        assert!(matches!(t.connect("y"), Err(NetError::InvalidAddress(_))));
        assert!(matches!(t.listen(""), Err(NetError::InvalidAddress(_))));
    }

    #[test]
    fn transports_are_hermetic_namespaces() {
        let t1 = ChannelTransport::new();
        let t2 = ChannelTransport::new();
        let _l = t1.listen("shared").unwrap();
        assert!(t2.connect("shared").is_err());
        let _l2 = t2.listen("shared").unwrap();
    }

    #[test]
    fn close_disconnects_both_sides() {
        let (a, b) = ChannelConn::pair();
        a.send(Frame::new(1, vec![7])).unwrap();
        a.close();
        // Frames sent before the close still drain on the peer, then the
        // peer — even one blocked in `recv` — observes the disconnect.
        assert_eq!(b.recv().unwrap().payload, vec![7]);
        assert_eq!(b.recv().unwrap_err(), NetError::Disconnected);
        assert_eq!(a.send(Frame::new(1, vec![])), Err(NetError::Disconnected));
        assert_eq!(a.recv().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn dropped_peer_surfaces_disconnect() {
        let (a, b) = ChannelConn::pair();
        drop(b);
        assert_eq!(a.recv().unwrap_err(), NetError::Disconnected);
        assert_eq!(a.send(Frame::new(1, vec![])), Err(NetError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (a, b) = ChannelConn::pair();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            NetError::Timeout
        );
        send_msg(b.as_ref(), &ShutdownMsg).unwrap();
        let frame = a.recv_timeout(Duration::from_millis(200)).unwrap();
        ShutdownMsg::from_frame(&frame).unwrap();
    }

    #[test]
    fn listener_accept_timeout_expires() {
        let t = ChannelTransport::new();
        let l = t.listen("quiet").unwrap();
        assert!(matches!(
            l.accept_timeout(Duration::from_millis(5)),
            Err(NetError::Timeout)
        ));
    }
}
