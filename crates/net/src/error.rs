//! The transport layer's typed error vocabulary.
//!
//! Every failure mode a frame can hit on the wire has its own variant, so
//! callers (and tests) can distinguish "the peer went away" from "the bytes
//! are garbage" without string matching. Nothing in this crate panics on
//! malformed input: corrupt or truncated frames always surface as one of
//! these.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the pluggable transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The peer closed the connection (or every channel endpoint dropped).
    Disconnected,
    /// A blocking operation exceeded its deadline.
    Timeout,
    /// The stream ended mid-frame: `got` of `needed` bytes arrived.
    Truncated {
        /// Bytes required to finish the header or payload.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame header's magic bytes are wrong — the peer is not speaking
    /// the bat-net protocol (or the stream lost sync).
    BadMagic {
        /// The 32-bit value found where the magic was expected.
        found: u32,
    },
    /// The frame header carries an unsupported protocol version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The header checksum does not match its contents: bit corruption.
    BadHeaderCrc {
        /// CRC computed over the received header bytes.
        computed: u32,
        /// CRC the header claimed.
        claimed: u32,
    },
    /// The header's declared payload length exceeds the protocol maximum
    /// (defends against allocating attacker- or corruption-sized buffers).
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// Maximum the protocol accepts.
        max: usize,
    },
    /// The payload's message type byte is not one this build understands.
    UnknownMsgType(u8),
    /// The payload failed to decode as its declared message type.
    Decode(String),
    /// An operating-system socket error outside the cases above.
    Io(String),
    /// The transport rejected an address or option at setup time.
    InvalidAddress(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "operation timed out"),
            NetError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            NetError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x}")
            }
            NetError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            NetError::BadHeaderCrc { computed, claimed } => write!(
                f,
                "header checksum mismatch: computed {computed:#010x}, claimed {claimed:#010x}"
            ),
            NetError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte maximum"
                )
            }
            NetError::UnknownMsgType(t) => write!(f, "unknown message type {t}"),
            NetError::Decode(msg) => write!(f, "payload decode failed: {msg}"),
            NetError::Io(msg) => write!(f, "socket error: {msg}"),
            NetError::InvalidAddress(msg) => write!(f, "invalid address: {msg}"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::NotConnected => NetError::Disconnected,
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout,
            _ => NetError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert!(NetError::BadMagic { found: 0xdead }
            .to_string()
            .contains("0x0000dead"));
        assert!(NetError::Truncated { needed: 16, got: 3 }
            .to_string()
            .contains("needed 16"));
    }

    #[test]
    fn io_errors_map_to_typed_variants() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            NetError::from(Error::new(ErrorKind::UnexpectedEof, "eof")),
            NetError::Disconnected
        );
        assert_eq!(
            NetError::from(Error::new(ErrorKind::TimedOut, "slow")),
            NetError::Timeout
        );
        assert!(matches!(
            NetError::from(Error::other("weird")),
            NetError::Io(_)
        ));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
