//! The versioned length-prefixed frame format.
//!
//! Every message crosses the wire as one frame:
//!
//! ```text
//!  offset  size  field
//!       0     4  magic        0xBA7C0DE5, little-endian
//!       4     1  version      protocol version (currently 1)
//!       5     1  msg_type     message vocabulary tag (see `messages`)
//!       6     2  reserved     must be zero
//!       8     4  payload_len  little-endian byte count of the payload
//!      12     4  header_crc   CRC-32 (IEEE) over bytes 0..12
//!      16     …  payload      `payload_len` bytes, message-specific codec
//! ```
//!
//! The CRC covers the header only: it is the cheap guard that keeps a
//! corrupted or desynchronized length prefix from turning into a bogus
//! multi-megabyte allocation or a misframed stream. Payload integrity is
//! the codec's job (decoders reject short, long, or nonsensical payloads
//! with [`NetError::Decode`]).

use crate::error::NetError;
use std::io::{Read, Write};

/// Frame magic: "BAT CODEC", eight hex digits of pure vanity.
pub const MAGIC: u32 = 0xBA7C_0DE5;

/// Current protocol version. Bump on any incompatible header or codec
/// change; peers reject mismatches with [`NetError::BadVersion`].
pub const VERSION: u8 = 1;

/// Encoded header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Hard ceiling on payload size (64 MiB): larger than any KV segment this
/// workspace ships, small enough that a corrupted length can't OOM us.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// One protocol frame: a message-type tag plus its encoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message vocabulary tag (see the `messages` module constants).
    pub msg_type: u8,
    /// Message payload, encoded by that type's codec.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame from a tag and payload.
    pub fn new(msg_type: u8, payload: Vec<u8>) -> Self {
        Frame { msg_type, payload }
    }

    /// Total encoded size (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the classic reflected
/// table-driven implementation. Table built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut k = 0;
            while k < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                k += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encodes a frame into a fresh byte vector.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.msg_type);
    out.extend_from_slice(&[0u8, 0u8]);
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    let crc = crc32(&out[..12]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&frame.payload);
    out
}

/// Validates a header and returns `(msg_type, payload_len)`.
///
/// # Errors
///
/// [`NetError::BadMagic`], [`NetError::BadVersion`], [`NetError::Decode`]
/// (nonzero reserved bytes), [`NetError::BadHeaderCrc`], or
/// [`NetError::FrameTooLarge`], checked in that order.
pub fn decode_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize), NetError> {
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    if h[4] != VERSION {
        return Err(NetError::BadVersion { found: h[4] });
    }
    if h[6] != 0 || h[7] != 0 {
        return Err(NetError::Decode("nonzero reserved header bytes".into()));
    }
    let claimed = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
    let computed = crc32(&h[..12]);
    if computed != claimed {
        return Err(NetError::BadHeaderCrc { computed, claimed });
    }
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(NetError::FrameTooLarge {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((h[5], len))
}

/// Decodes one frame from an in-memory buffer, returning the frame and the
/// number of bytes consumed.
///
/// # Errors
///
/// Any header error from [`decode_header`], or [`NetError::Truncated`]
/// when the buffer ends before the header or declared payload does.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), NetError> {
    if buf.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let mut h = [0u8; HEADER_LEN];
    h.copy_from_slice(&buf[..HEADER_LEN]);
    let (msg_type, len) = decode_header(&h)?;
    if buf.len() < HEADER_LEN + len {
        return Err(NetError::Truncated {
            needed: HEADER_LEN + len,
            got: buf.len(),
        });
    }
    Ok((
        Frame {
            msg_type,
            payload: buf[HEADER_LEN..HEADER_LEN + len].to_vec(),
        },
        HEADER_LEN + len,
    ))
}

/// Writes one frame to a byte stream (header + payload, no flush).
///
/// # Errors
///
/// Propagates the writer's I/O errors as typed [`NetError`]s.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), NetError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)?;
    Ok(())
}

/// Reads one frame from a byte stream.
///
/// A clean EOF *before the first header byte* is [`NetError::Disconnected`]
/// (the peer closed between frames); an EOF mid-header or mid-payload is
/// [`NetError::Truncated`] (the peer died mid-send, or the stream is
/// corrupt).
///
/// # Errors
///
/// [`NetError::Disconnected`], [`NetError::Truncated`], any header error
/// from [`decode_header`], or a typed I/O failure.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, NetError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let (msg_type, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    Ok(Frame { msg_type, payload })
}

/// `read_exact` with typed errors: EOF at offset 0 of the *first* read of a
/// frame means a clean disconnect; EOF anywhere else means truncation.
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_is_disconnect: bool,
) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if eof_is_disconnect && filled == 0 {
                    Err(NetError::Disconnected)
                } else {
                    Err(NetError::Truncated {
                        needed: buf.len(),
                        got: filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips_through_bytes() {
        let f = Frame::new(7, vec![1, 2, 3, 4, 5]);
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), f.wire_len());
        let (back, used) = decode_frame(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = Frame::new(0, vec![]);
        let (back, used) = decode_frame(&encode_frame(&f)).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_frame(&Frame::new(1, vec![9]));
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut bytes = encode_frame(&Frame::new(1, vec![9]));
        bytes[4] = VERSION + 1;
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            NetError::BadVersion { found: VERSION + 1 }
        );
    }

    #[test]
    fn flipped_header_bit_fails_crc() {
        let mut bytes = encode_frame(&Frame::new(1, vec![9; 32]));
        bytes[9] ^= 0x10; // corrupt the length field
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::BadHeaderCrc { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let bytes = encode_frame(&Frame::new(3, vec![1, 2, 3, 4, 5, 6, 7]));
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, NetError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::new(1, vec![]));
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crc32(&bytes[..12]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn stream_read_distinguishes_disconnect_from_truncation() {
        let bytes = encode_frame(&Frame::new(2, vec![1, 2, 3]));
        // Clean EOF between frames.
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap_err(), NetError::Disconnected);
        // EOF mid-header.
        let mut cut: &[u8] = &bytes[..7];
        assert!(matches!(
            read_frame(&mut cut).unwrap_err(),
            NetError::Truncated { .. }
        ));
        // EOF mid-payload.
        let mut cut: &[u8] = &bytes[..HEADER_LEN + 1];
        assert!(matches!(
            read_frame(&mut cut).unwrap_err(),
            NetError::Truncated { .. }
        ));
        // Whole frame.
        let mut whole: &[u8] = &bytes;
        assert_eq!(read_frame(&mut whole).unwrap().payload, vec![1, 2, 3]);
    }
}
