//! Per-dataset workload synthesis.
//!
//! A [`Workload`] binds a [`DatasetConfig`] (Table 1 statistics) to a seed
//! and derives every per-entity attribute as a pure hash function:
//!
//! * **user token counts** — lognormal with the dataset's mean, σ chosen so
//!   that ≈36 % of users have profiles shorter than the ~1 000-token item
//!   block (Figure 2b, §4.3), clipped so the longest prompts approach the
//!   8 K maximum (§6.2);
//! * **item token counts** — uniform within ±40 % of the dataset mean;
//! * **user activity** and **item popularity** — [`ZipfLaw`]s with the
//!   dataset's exponents (Figures 2c/2d).
//!
//! User/item IDs coincide with popularity ranks (ID 0 = hottest), which
//! costs no generality and keeps placement math transparent.

use crate::hashing::{lognormal, uniform01};
use crate::zipf::ZipfLaw;
use bat_types::{DatasetConfig, ItemId, TokenCount, UserId};

/// Log-stddev of user profile token counts. Chosen so that
/// `P(tokens < avg_prompt_item_tokens) ≈ 0.36` for the Industry preset
/// (mean 1500 vs ~1000 item tokens), matching §4.3.
const USER_SIGMA: f64 = 0.6;

/// A deterministic workload over one dataset.
#[derive(Debug, Clone)]
pub struct Workload {
    ds: DatasetConfig,
    seed: u64,
    item_law: ZipfLaw,
    user_law: ZipfLaw,
    user_mu: f64,
    /// Optional burst-hotspot shift (§5.2 Step 3): from `at_secs` on, the
    /// popularity ranking rotates by `rank_offset`, so a previously cold
    /// band of items becomes the new hot head.
    hotspot_shift: Option<(f64, u64)>,
}

impl Workload {
    /// Smallest user profile we generate.
    pub const MIN_USER_TOKENS: TokenCount = 32;
    /// Instruction block length appended to every prompt.
    pub const INSTRUCTION_TOKENS: TokenCount = 32;

    /// Binds a dataset to a seed.
    pub fn new(ds: DatasetConfig, seed: u64) -> Self {
        let item_law = ZipfLaw::new(ds.num_items, ds.item_zipf_exponent);
        let user_law = ZipfLaw::new(ds.num_users, ds.user_zipf_exponent);
        let mean = ds.avg_user_tokens as f64;
        // mean of LogNormal(mu, sigma) = exp(mu + sigma²/2).
        let user_mu = mean.ln() - USER_SIGMA * USER_SIGMA / 2.0;
        Workload {
            ds,
            seed,
            item_law,
            user_law,
            user_mu,
            hotspot_shift: None,
        }
    }

    /// Enables a burst-hotspot shift at `at_secs`: popularity rank `r` maps
    /// to item `(r − 1 + rank_offset) mod num_items` afterwards, modeling
    /// §5.2's "burst hotspot that should be recommended to most users".
    pub fn with_hotspot_shift(mut self, at_secs: f64, rank_offset: u64) -> Self {
        self.hotspot_shift = Some((at_secs, rank_offset % self.ds.num_items.max(1)));
        self
    }

    /// The underlying dataset statistics.
    pub fn dataset(&self) -> &DatasetConfig {
        &self.ds
    }

    /// Popularity law over items (rank = item ID + 1).
    pub fn item_law(&self) -> ZipfLaw {
        self.item_law
    }

    /// Activity law over users (rank = user ID + 1).
    pub fn user_law(&self) -> ZipfLaw {
        self.user_law
    }

    /// Upper clip for user profiles: the prompt must still fit the item
    /// block and instructions inside `max_prompt_tokens`.
    pub fn max_user_tokens(&self) -> TokenCount {
        self.ds
            .max_prompt_tokens
            .saturating_sub(self.ds.avg_prompt_item_tokens() + Self::INSTRUCTION_TOKENS)
            .max(Self::MIN_USER_TOKENS)
    }

    /// The user's profile length in tokens (deterministic per user).
    pub fn user_token_count(&self, user: UserId) -> TokenCount {
        let v = lognormal(self.seed, user.as_u64(), 1, self.user_mu, USER_SIGMA);
        (v.round() as u32).clamp(Self::MIN_USER_TOKENS, self.max_user_tokens())
    }

    /// The item's description length in tokens (deterministic per item):
    /// uniform in ±40 % of the dataset mean, at least 1.
    pub fn item_token_count(&self, item: ItemId) -> TokenCount {
        let u = uniform01(self.seed, item.as_u64(), 2);
        let avg = self.ds.avg_item_tokens as f64;
        ((avg * (0.6 + 0.8 * u)).round() as u32).max(1)
    }

    /// Samples a requesting user from the activity law (`u ∈ (0,1)`
    /// uniform). User ID 0 is the most active.
    pub fn sample_user(&self, u: f64) -> UserId {
        UserId::new(self.user_law.sample_rank(u) - 1)
    }

    /// Samples one item access from the popularity law. Item ID 0 is the
    /// hottest (before any hotspot shift).
    pub fn sample_item(&self, u: f64) -> ItemId {
        self.sample_item_at(u, 0.0)
    }

    /// Samples one item access at trace time `at_secs`, applying the
    /// hotspot shift if one is configured and active.
    pub fn sample_item_at(&self, u: f64, at_secs: f64) -> ItemId {
        let rank = self.item_law.sample_rank(u) - 1;
        match self.hotspot_shift {
            Some((at, offset)) if at_secs >= at => ItemId::new((rank + offset) % self.ds.num_items),
            _ => ItemId::new(rank),
        }
    }

    /// Retrieves `c` *distinct* candidate items for one request, by repeated
    /// popularity sampling (real-time retrieval is popularity-biased; §3.3's
    /// point is precisely that candidate sets are dynamic and diverse).
    ///
    /// `draw` supplies uniforms, e.g. from a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `c` exceeds the corpus size.
    pub fn retrieve_candidates(&self, c: usize, mut draw: impl FnMut() -> f64) -> Vec<ItemId> {
        self.retrieve_candidates_at(c, 0.0, &mut draw)
    }

    /// [`Self::retrieve_candidates`] at trace time `at_secs` (hotspot-shift
    /// aware).
    ///
    /// # Panics
    ///
    /// Panics if `c` exceeds the corpus size.
    pub fn retrieve_candidates_at(
        &self,
        c: usize,
        at_secs: f64,
        draw: &mut impl FnMut() -> f64,
    ) -> Vec<ItemId> {
        assert!(
            c as u64 <= self.ds.num_items,
            "cannot retrieve more candidates than items"
        );
        let mut out = Vec::with_capacity(c);
        let mut seen = std::collections::HashSet::with_capacity(c * 2);
        while out.len() < c {
            let item = self.sample_item_at(draw(), at_secs);
            if seen.insert(item) {
                out.push(item);
            }
        }
        out
    }

    /// Average tokens of an item block with `c` candidates (used by
    /// Algorithm 1's `c × τ_i` term).
    pub fn avg_item_block_tokens(&self) -> TokenCount {
        self.ds.avg_prompt_item_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::uniform01;

    fn industry() -> Workload {
        Workload::new(DatasetConfig::industry(), 42)
    }

    #[test]
    fn user_tokens_deterministic_and_bounded() {
        let w = industry();
        for id in 0..500 {
            let t = w.user_token_count(UserId::new(id));
            assert_eq!(t, w.user_token_count(UserId::new(id)));
            assert!(t >= Workload::MIN_USER_TOKENS);
            assert!(t <= w.max_user_tokens());
        }
    }

    #[test]
    fn user_token_mean_matches_table1() {
        let w = industry();
        let n = 20_000u64;
        let mean: f64 = (0..n)
            .map(|i| w.user_token_count(UserId::new(i * 97 + 11)) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1500.0).abs() < 120.0,
            "mean user tokens {mean}, expected ≈1500"
        );
    }

    #[test]
    fn fig2b_share_of_short_profiles() {
        // §4.3: ~36% of users have fewer profile tokens than the ~1000-token
        // item block.
        let w = industry();
        let n = 20_000u64;
        let short = (0..n)
            .filter(|&i| w.user_token_count(UserId::new(i)) < 1000)
            .count() as f64
            / n as f64;
        assert!(
            (0.28..0.44).contains(&short),
            "short-profile share {short}, expected ≈0.36"
        );
    }

    #[test]
    fn item_tokens_bounded_around_mean() {
        let w = industry();
        for id in 0..1000 {
            let t = w.item_token_count(ItemId::new(id));
            assert!((6..=14).contains(&t), "item tokens {t} outside ±40% of 10");
        }
    }

    #[test]
    fn retrieval_yields_distinct_candidates() {
        let w = industry();
        let mut i = 0u64;
        let cands = w.retrieve_candidates(100, || {
            i += 1;
            uniform01(7, i, 3)
        });
        assert_eq!(cands.len(), 100);
        let set: std::collections::HashSet<_> = cands.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn retrieval_is_popularity_biased() {
        let w = industry();
        let mut i = 0u64;
        let mut hot = 0usize;
        let total = 2000;
        let head = w.item_law().ranks_for_mass(0.9);
        for _ in 0..20 {
            let cands = w.retrieve_candidates(total / 20, || {
                i += 1;
                uniform01(8, i, 4)
            });
            hot += cands.iter().filter(|c| c.as_u64() < head).count();
        }
        let share = hot as f64 / total as f64;
        assert!(share > 0.75, "hot-item share {share} too low for Figure 2d");
    }

    #[test]
    #[should_panic(expected = "more candidates than items")]
    fn retrieval_rejects_oversized_requests() {
        let w = Workload::new(DatasetConfig::games(), 1);
        let _ = w.retrieve_candidates(9000, || 0.5);
    }

    #[test]
    fn max_user_tokens_leaves_room_for_items() {
        let w = industry();
        let ds = w.dataset();
        assert!(
            w.max_user_tokens() + ds.avg_prompt_item_tokens() + Workload::INSTRUCTION_TOKENS
                <= ds.max_prompt_tokens
        );
    }
}
