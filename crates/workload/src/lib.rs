//! Workload generation: datasets, popularity laws and request traces.
//!
//! The paper evaluates on three Amazon datasets and a synthetic *Industry*
//! workload whose key distribution shapes it reports directly (Figure 2):
//! long-tail user token counts (2b), highly skewed user access frequencies
//! (2c, >55 % of users at most once per hour), and Zipf item popularity
//! (2d, ~90 % of accesses on the top ~10 % of items). This crate generates
//! workloads with those shapes, **deterministically and in O(1) memory per
//! entity** — per-user/per-item attributes are pure hash functions of the
//! identifier, so the Industry-100M corpus of Figure 10 needs no
//! materialized state.
//!
//! # Example
//!
//! ```
//! use bat_types::DatasetConfig;
//! use bat_workload::Workload;
//!
//! let w = Workload::new(DatasetConfig::games(), 7);
//! let tokens = w.user_token_count(bat_types::UserId::new(42));
//! assert!(tokens >= Workload::MIN_USER_TOKENS);
//! ```

pub mod hashing;
pub mod persist;
pub mod trace;
pub mod workload;
pub mod zipf;

pub use persist::{load_trace, save_trace};
pub use trace::{SessionParams, TraceGenerator};
pub use workload::Workload;
pub use zipf::ZipfLaw;
