//! Analytic Zipf popularity law.
//!
//! Item accesses in the paper's traces are highly skewed: "roughly 90% of
//! accesses focus on the top 10% of hot items" (Figure 2d, §4.1). We model
//! popularity with a continuous power law `p(x) ∝ x^{-s}` over ranks
//! `[1, n]`, which admits closed-form CDF, inverse CDF and head-mass — no
//! per-item state, so it scales to the 100M-item corpus of Figure 10.

use serde::{Deserialize, Serialize};

/// A Zipf-like power law over ranks `1..=n` with exponent `s`.
///
/// ```
/// use bat_workload::ZipfLaw;
///
/// let law = ZipfLaw::new(1_000_000, 1.05);
/// // Figure 2d: top 10% of items draw ~90% of accesses.
/// let head = law.head_mass(100_000);
/// assert!(head > 0.8 && head < 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfLaw {
    n: u64,
    s: f64,
}

impl ZipfLaw {
    /// Creates a law over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf law needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be ≥ 0");
        ZipfLaw { n, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// `∫_1^{x} t^{-s} dt`, the unnormalized mass of ranks `≤ x` in the
    /// continuous relaxation (with the `s = 1` logarithmic special case).
    fn integral(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn total_mass(&self) -> f64 {
        // +1 so rank n itself carries mass (integrate to n+1).
        self.integral(self.n as f64 + 1.0)
    }

    /// Fraction of total accesses going to the hottest `k` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn head_mass(&self, k: u64) -> f64 {
        assert!(k <= self.n, "head size exceeds rank count");
        if k == 0 {
            return 0.0;
        }
        self.integral(k as f64 + 1.0) / self.total_mass()
    }

    /// Smallest `k` such that the hottest `k` ranks carry at least
    /// `mass` (∈ [0, 1]) of the accesses. Binary search on the closed form.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is outside `[0, 1]`.
    pub fn ranks_for_mass(&self, mass: f64) -> u64 {
        assert!((0.0..=1.0).contains(&mass), "mass must be in [0, 1]");
        if mass <= 0.0 {
            return 0;
        }
        let (mut lo, mut hi) = (1u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.head_mass(mid) >= mass {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Maps a uniform `u ∈ (0, 1)` to a 1-based rank by inverse-CDF
    /// sampling; rank 1 is the hottest.
    pub fn sample_rank(&self, u: f64) -> u64 {
        let u = u.clamp(1e-12, 1.0 - 1e-12);
        let target = u * self.total_mass();
        let x = if (self.s - 1.0).abs() < 1e-9 {
            target.exp()
        } else {
            (1.0 + (1.0 - self.s) * target).powf(1.0 / (1.0 - self.s))
        };
        (x.floor() as u64).clamp(1, self.n)
    }

    /// Relative access probability of rank `r` (unnormalized `r^{-s}`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is 0 or exceeds `n`.
    pub fn weight(&self, r: u64) -> f64 {
        assert!(r >= 1 && r <= self.n, "rank out of range");
        (r as f64).powf(-self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::uniform01;
    use proptest::prelude::*;

    #[test]
    fn uniform_law_has_linear_head_mass() {
        let law = ZipfLaw::new(1000, 0.0);
        assert!((law.head_mass(100) - 0.1).abs() < 0.01);
        assert!((law.head_mass(500) - 0.5).abs() < 0.01);
        assert_eq!(law.head_mass(1000), 1.0);
        assert_eq!(law.head_mass(0), 0.0);
    }

    #[test]
    fn industry_skew_matches_figure_2d() {
        // §4.1: ~90% of accesses on the top ~10% of items.
        let law = ZipfLaw::new(1_000_000, 1.05);
        let mass = law.head_mass(100_000);
        assert!(
            (0.82..0.95).contains(&mass),
            "top-10% mass {mass} outside Figure 2d's regime"
        );
    }

    #[test]
    fn ranks_for_mass_inverts_head_mass() {
        let law = ZipfLaw::new(100_000, 1.0);
        for mass in [0.1, 0.5, 0.9, 0.99] {
            let k = law.ranks_for_mass(mass);
            assert!(law.head_mass(k) >= mass);
            if k > 1 {
                assert!(law.head_mass(k - 1) < mass);
            }
        }
        assert_eq!(law.ranks_for_mass(0.0), 0);
        assert_eq!(law.ranks_for_mass(1.0), law.n());
    }

    #[test]
    fn sampling_matches_analytic_head_mass() {
        let law = ZipfLaw::new(10_000, 1.05);
        let n_samples = 50_000u64;
        let head_k = 1000;
        let hits = (0..n_samples)
            .filter(|&i| law.sample_rank(uniform01(3, i, 0)) <= head_k)
            .count() as f64
            / n_samples as f64;
        let analytic = law.head_mass(head_k);
        assert!(
            (hits - analytic).abs() < 0.02,
            "empirical {hits} vs analytic {analytic}"
        );
    }

    #[test]
    fn s_equals_one_special_case() {
        let law = ZipfLaw::new(1000, 1.0);
        assert!(law.head_mass(100) > 0.6, "log law front-loads mass");
        assert_eq!(law.sample_rank(1e-15), 1);
        assert_eq!(law.sample_rank(1.0 - 1e-15), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfLaw::new(0, 1.0);
    }

    proptest! {
        /// head_mass is monotone in k and within [0, 1].
        #[test]
        fn head_mass_monotone(n in 2u64..100_000, s in 0.0f64..2.0, k in 1u64..1000) {
            let law = ZipfLaw::new(n, s);
            let k = k.min(n);
            let a = law.head_mass(k.saturating_sub(1));
            let b = law.head_mass(k);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(b >= a);
        }

        /// sample_rank always lands in [1, n] and is monotone in u.
        #[test]
        fn sample_in_range_and_monotone(n in 1u64..1_000_000, s in 0.0f64..2.0, u1 in 0.001f64..0.999, u2 in 0.001f64..0.999) {
            let law = ZipfLaw::new(n, s);
            let (a, b) = (law.sample_rank(u1.min(u2)), law.sample_rank(u1.max(u2)));
            prop_assert!(a >= 1 && a <= n);
            prop_assert!(b >= 1 && b <= n);
            prop_assert!(a <= b, "inverse CDF must be monotone");
        }
    }
}
