//! Trace persistence: save and replay request traces.
//!
//! Serving experiments gain a lot from replaying *identical* traces across
//! systems, machines and code versions (the paper replays sampled
//! production logs). These helpers serialize a generated trace to
//! newline-delimited JSON and load it back, validating each request.

use bat_types::{BatError, RankRequest};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Saves a trace as newline-delimited JSON (one request per line).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn save_trace(path: impl AsRef<Path>, trace: &[RankRequest]) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for req in trace {
        let line = serde_json::to_string(req).expect("RankRequest serializes");
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Loads a trace saved by [`save_trace`], validating every request and the
/// arrival ordering.
///
/// # Errors
///
/// Returns an I/O error for unreadable files, and
/// [`BatError::InvalidRequest`] (wrapped in `io::Error`) for malformed
/// content, invalid requests, or out-of-order arrivals.
pub fn load_trace(path: impl AsRef<Path>) -> std::io::Result<Vec<RankRequest>> {
    let invalid = |msg: String| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            BatError::InvalidRequest(msg),
        )
    };
    let reader = BufReader::new(File::open(path)?);
    let mut trace: Vec<RankRequest> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req: RankRequest =
            serde_json::from_str(&line).map_err(|e| invalid(format!("line {}: {e}", i + 1)))?;
        req.validate()
            .map_err(|e| invalid(format!("line {}: {e}", i + 1)))?;
        if let Some(prev) = trace.last() {
            if req.arrival < prev.arrival {
                return Err(invalid(format!("line {}: arrivals out of order", i + 1)));
            }
        }
        trace.push(req);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, Workload};
    use bat_types::DatasetConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bat_trace_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_the_trace() {
        let mut gen = TraceGenerator::new(Workload::new(DatasetConfig::games(), 3), 4);
        let trace = gen.generate(5.0, 30.0);
        let path = tmp("roundtrip");
        save_trace(&path, &trace).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(trace.len(), loaded.len());
        for (a, b) in trace.iter().zip(&loaded) {
            assert_eq!(a, b, "mismatch at request {}", a.id);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = tmp("empty");
        save_trace(&path, &[]).unwrap();
        assert!(load_trace(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let path = tmp("malformed");
        std::fs::write(&path, "{not json}\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_order_arrivals_are_rejected() {
        let mut gen = TraceGenerator::new(Workload::new(DatasetConfig::games(), 3), 4);
        let mut trace = gen.generate(5.0, 10.0);
        assert!(trace.len() >= 2, "need at least two requests");
        trace.swap(0, 1);
        let path = tmp("order");
        save_trace(&path, &trace).unwrap();
        let err = load_trace(&path).unwrap_err();
        assert!(err.to_string().contains("out of order"));
        std::fs::remove_file(&path).ok();
    }
}
