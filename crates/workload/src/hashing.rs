//! Deterministic hashing and quantile helpers.
//!
//! Per-entity attributes (a user's token count, an item's token count) must
//! be stable across the whole run and across processes without materializing
//! 10⁸ values. We derive them by hashing `(seed, id)` with SplitMix64 and
//! mapping the result through the target distribution's quantile function.

/// SplitMix64: a fast, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `(seed, id, stream)` into a uniform `f64` in the open interval
/// `(0, 1)`.
#[inline]
pub fn uniform01(seed: u64, id: u64, stream: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(id ^ splitmix64(stream)));
    // 53 significant bits, then nudge off the boundaries.
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u.clamp(1e-12, 1.0 - 1e-12)
}

/// Inverse standard-normal CDF (Acklam's rational approximation, absolute
/// error < 1.15e-9 — far below the noise floor of workload synthesis).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Deterministic lognormal sample for `(seed, id, stream)` with the given
/// log-mean and log-stddev.
pub fn lognormal(seed: u64, id: u64, stream: u64, mu: f64, sigma: f64) -> f64 {
    let u = uniform01(seed, id, stream);
    (mu + sigma * inverse_normal_cdf(u)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Consecutive inputs should differ in many bits.
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 16, "poor avalanche: {d} bits");
    }

    #[test]
    fn uniform01_in_open_interval() {
        for id in 0..1000 {
            let u = uniform01(42, id, 0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn uniform01_streams_are_independent() {
        assert_ne!(uniform01(1, 1, 0), uniform01(1, 1, 1));
    }

    #[test]
    fn inverse_normal_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        // Deep tails stay finite and ordered.
        assert!(inverse_normal_cdf(1e-10) < -6.0);
        assert!(inverse_normal_cdf(1.0 - 1e-10) > 6.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn inverse_normal_rejects_boundary() {
        let _ = inverse_normal_cdf(0.0);
    }

    #[test]
    fn lognormal_mean_is_approximately_right() {
        // mean of LogNormal(mu, sigma) = exp(mu + sigma^2/2).
        let sigma = 0.6f64;
        let target_mean = 1500.0f64;
        let mu = target_mean.ln() - sigma * sigma / 2.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| lognormal(9, i, 0, mu, sigma)).sum::<f64>() / n as f64;
        assert!(
            (mean - target_mean).abs() / target_mean < 0.05,
            "empirical mean {mean} vs target {target_mean}"
        );
    }

    proptest! {
        /// The inverse normal CDF is monotone.
        #[test]
        fn inverse_normal_monotone(a in 0.0001f64..0.9999, b in 0.0001f64..0.9999) {
            prop_assume!(a < b);
            prop_assert!(inverse_normal_cdf(a) <= inverse_normal_cdf(b));
        }

        /// uniform01 is deterministic in all arguments.
        #[test]
        fn uniform01_deterministic(seed: u64, id: u64, stream: u64) {
            prop_assert_eq!(uniform01(seed, id, stream), uniform01(seed, id, stream));
        }
    }
}
