//! Request trace generation.
//!
//! §6.2: "We randomly sample the users with replacement from the history log
//! of each dataset... and randomly sample the intervals between consecutive
//! accesses to simulate realistic request patterns." We realize this as an
//! open-loop Poisson process at a configurable aggregate rate whose per-
//! request user is drawn from the dataset's activity law — so each user's
//! own arrival process is Poisson with rate proportional to their activity
//! weight, which yields both the skewed hourly access CDF of Figure 2c and
//! the window-frequency self-similarity of Figure 4.

use crate::workload::Workload;
use bat_types::{RankRequest, RequestId, SimTime, SloBudget, UserId};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::HashMap;

/// Generates request traces from a [`Workload`].
///
/// ```
/// use bat_types::DatasetConfig;
/// use bat_workload::{TraceGenerator, Workload};
///
/// let mut gen = TraceGenerator::new(Workload::new(DatasetConfig::games(), 1), 2);
/// let trace = gen.generate(10.0, 20.0);
/// assert!(!trace.is_empty());
/// assert!(trace.windows(2).all(|w| w[1].arrival >= w[0].arrival));
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    workload: Workload,
    rng: SmallRng,
    next_id: u64,
    now: f64,
    slo: SloBudget,
}

impl TraceGenerator {
    /// Creates a generator; the trace stream is deterministic in
    /// `(workload seed, trace seed)`.
    pub fn new(workload: Workload, trace_seed: u64) -> Self {
        TraceGenerator {
            rng: SmallRng::seed_from_u64(trace_seed),
            workload,
            next_id: 0,
            now: 0.0,
            slo: SloBudget::default(),
        }
    }

    /// Sets the [`SloBudget`] stamped on every subsequently generated
    /// request (default: best-effort). Stamping happens at generation time,
    /// so a burst segment can carry a different budget than the warm-up.
    pub fn set_slo(&mut self, slo: SloBudget) {
        self.slo = slo;
    }

    /// The bound workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Current trace clock, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Builds the next request at an explicit arrival time (clock must not
    /// go backwards), sampling the user from the activity law.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current clock.
    pub fn request_at(&mut self, at: f64) -> RankRequest {
        let user = self.workload.sample_user(self.rng.gen::<f64>());
        self.request_for(user, at)
    }

    /// Builds the next request for a *given* user at an explicit arrival
    /// time (session replay drives this).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current clock.
    pub fn request_for(&mut self, user: bat_types::UserId, at: f64) -> RankRequest {
        assert!(at >= self.now, "trace clock must be monotone");
        self.now = at;
        let ds = self.workload.dataset();
        let candidates = self.workload.retrieve_candidates_at(
            ds.candidates_per_request as usize,
            at,
            &mut || self.rng.gen::<f64>(),
        );
        let candidate_tokens = candidates
            .iter()
            .map(|&i| self.workload.item_token_count(i))
            .collect();
        let req = RankRequest {
            id: RequestId::new(self.next_id),
            user,
            user_tokens: self.workload.user_token_count(user),
            candidates,
            candidate_tokens,
            instruction_tokens: Workload::INSTRUCTION_TOKENS,
            arrival: SimTime::from_secs(at),
            slo: self.slo,
        };
        self.next_id += 1;
        req
    }

    /// Generates an open-loop trace at an aggregate `rate_per_sec`, with
    /// the dataset's session structure (§6.2's "randomly sample the
    /// intervals between consecutive accesses"): session starts are Poisson
    /// at `rate / session_mean_requests`, each session replays a geometric
    /// number of requests with exponential intra-session gaps. With
    /// `session_mean_requests <= 1` this degenerates to plain Poisson
    /// arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the rate or duration is not positive.
    pub fn generate(&mut self, duration_secs: f64, rate_per_sec: f64) -> Vec<RankRequest> {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(duration_secs > 0.0, "duration must be positive");
        let ds = self.workload.dataset();
        let params = SessionParams {
            mean_requests: ds.session_mean_requests.max(1.0),
            mean_gap_secs: ds.session_mean_gap_secs.max(1e-6),
        };
        let session_rate = rate_per_sec / params.mean_requests;
        let start = self.now;
        let end = start + duration_secs;
        let events = self.generate_session_arrivals(duration_secs, session_rate, params);
        // Rewind the clock (the arrival generator advanced it) and
        // materialize requests in arrival order, truncating session
        // spillover at the horizon so the trace occupies exactly
        // [start, end) — saturation measurements depend on a dense span.
        self.now = start;
        let mut out = Vec::with_capacity(events.len());
        for (at, user) in events {
            if at < end {
                out.push(self.request_for(user, at));
            }
        }
        self.now = end;
        out
    }
}

/// Parameters of the session-structured arrival process (§5.3's burst
/// model: "if a user intends to purchase a specific item, they are likely
/// to repeat a search within a few minutes of the initial query").
#[derive(Debug, Clone, Copy)]
pub struct SessionParams {
    /// Mean requests per session (geometric).
    pub mean_requests: f64,
    /// Mean gap between a session's consecutive requests, seconds.
    pub mean_gap_secs: f64,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            mean_requests: 10.0,
            mean_gap_secs: 40.0,
        }
    }
}

impl TraceGenerator {
    /// Generates session-structured `(arrival_secs, user)` events without
    /// materializing candidate sets — the lightweight input of the Figure 4
    /// and Figure 2c analyses. Session starts are Poisson at
    /// `session_rate_per_sec` with users drawn from the activity law; each
    /// session issues a geometric number of requests with exponential
    /// intra-session gaps.
    ///
    /// # Panics
    ///
    /// Panics if the rate or duration is not positive.
    pub fn generate_session_arrivals(
        &mut self,
        duration_secs: f64,
        session_rate_per_sec: f64,
        params: SessionParams,
    ) -> Vec<(f64, UserId)> {
        assert!(session_rate_per_sec > 0.0, "rate must be positive");
        assert!(duration_secs > 0.0, "duration must be positive");
        let end = self.now + duration_secs;
        let mut events: Vec<(f64, UserId)> = Vec::new();
        let mut t = self.now;
        loop {
            t += -self.rng.gen::<f64>().max(1e-12).ln() / session_rate_per_sec;
            if t >= end {
                break;
            }
            let user = self.workload.sample_user(self.rng.gen::<f64>());
            // Geometric(p) with mean m → p = 1/m. Sessions run to completion
            // (they may spill slightly past `end`), so the aggregate request
            // rate is unbiased: sessions/sec × requests/session.
            let p = (1.0 / params.mean_requests).clamp(1e-6, 1.0);
            let mut at = t;
            loop {
                events.push((at, user));
                if self.rng.gen::<f64>() < p {
                    break;
                }
                at += -self.rng.gen::<f64>().max(1e-12).ln() * params.mean_gap_secs;
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        self.now = events.last().map_or(end, |&(t, _)| t.max(end));
        events
    }
}

/// Per-user request counts within fixed windows of `window_secs` — the
/// `f_u(t)` series behind Figure 4 and the Figure 2c hourly CDF.
pub fn window_counts(
    requests: &[RankRequest],
    window_secs: f64,
) -> HashMap<UserId, Vec<(u64, u32)>> {
    window_counts_events(
        requests.iter().map(|r| (r.arrival.as_secs(), r.user)),
        window_secs,
    )
}

/// [`window_counts`] over raw `(arrival_secs, user)` events.
pub fn window_counts_events(
    events: impl IntoIterator<Item = (f64, UserId)>,
    window_secs: f64,
) -> HashMap<UserId, Vec<(u64, u32)>> {
    assert!(window_secs > 0.0, "window must be positive");
    let mut per_user: HashMap<UserId, HashMap<u64, u32>> = HashMap::new();
    for (at, user) in events {
        let w = (at / window_secs) as u64;
        *per_user.entry(user).or_default().entry(w).or_insert(0) += 1;
    }
    per_user
        .into_iter()
        .map(|(u, map)| {
            let mut v: Vec<(u64, u32)> = map.into_iter().collect();
            v.sort_unstable();
            (u, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::DatasetConfig;

    fn gen() -> TraceGenerator {
        TraceGenerator::new(Workload::new(DatasetConfig::games(), 5), 99)
    }

    #[test]
    fn trace_is_deterministic() {
        let a = gen().generate(10.0, 20.0);
        let b = gen().generate(10.0, 20.0);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first().map(|r| r.user), b.first().map(|r| r.user));
        assert_eq!(a.last().map(|r| r.arrival), b.last().map(|r| r.arrival));
    }

    #[test]
    fn arrival_times_are_monotone_and_bounded() {
        let trace = gen().generate(30.0, 10.0);
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        assert!(trace.last().unwrap().arrival.as_secs() < 30.0);
    }

    #[test]
    fn rate_is_approximately_respected_without_sessions() {
        // A session-free dataset (mean 1 request/session) is pure Poisson:
        // the aggregate rate is exact.
        let mut ds = DatasetConfig::games();
        ds.session_mean_requests = 1.0;
        let mut g = TraceGenerator::new(Workload::new(ds, 5), 99);
        let trace = g.generate(200.0, 50.0);
        let rate = trace.len() as f64 / 200.0;
        assert!(
            (rate - 50.0).abs() < 5.0,
            "empirical rate {rate}, expected ≈50"
        );
    }

    #[test]
    fn session_truncation_costs_bounded_rate() {
        // Session datasets lose the spillover tail to truncation; the loss
        // is bounded by mean session span over duration.
        let trace = gen().generate(600.0, 50.0);
        let rate = trace.len() as f64 / 600.0;
        assert!(rate > 30.0 && rate <= 55.0, "rate {rate} out of range");
        assert!(trace.last().unwrap().arrival.as_secs() < 600.0);
    }

    #[test]
    fn requests_validate_and_have_full_candidate_sets() {
        let trace = gen().generate(5.0, 20.0);
        for r in &trace {
            r.validate().unwrap();
            assert_eq!(r.candidates.len(), 100);
            assert!(r.user_tokens >= Workload::MIN_USER_TOKENS);
        }
        // Request IDs are unique and dense.
        let mut ids: Vec<u64> = trace.iter().map(|r| r.id.as_u64()).collect();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
    }

    #[test]
    fn hot_users_recur_across_the_trace() {
        // Games has a small, high-frequency user base (Table 1/§6.2): the
        // most active users must appear many times.
        let trace = gen().generate(60.0, 50.0);
        let mut counts: HashMap<UserId, u32> = HashMap::new();
        for r in &trace {
            *counts.entry(r.user).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 5, "hottest user appeared only {max} times");
    }

    #[test]
    fn window_counts_partition_the_trace() {
        let trace = gen().generate(40.0, 25.0);
        let windows = window_counts(&trace, 10.0);
        let total: u32 = windows
            .values()
            .flat_map(|v| v.iter().map(|&(_, c)| c))
            .sum();
        assert_eq!(total as usize, trace.len());
        for series in windows.values() {
            for w in series.windows(2) {
                assert!(w[1].0 > w[0].0, "window indices strictly increase");
            }
        }
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn clock_cannot_go_backwards() {
        let mut g = gen();
        g.request_at(5.0);
        g.request_at(4.0);
    }

    #[test]
    fn session_arrivals_are_sorted_bursty_and_bounded() {
        let mut g = gen();
        let events = g.generate_session_arrivals(600.0, 0.5, SessionParams::default());
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        // Every *session* starts before the horizon.
        assert!(events.iter().any(|&(t, _)| t < 600.0));
        // Sessions make per-user request counts exceed 1 for many users.
        let per_user = window_counts_events(events.iter().copied(), 600.0);
        let multi = per_user
            .values()
            .filter(|v| v.iter().map(|&(_, c)| c).sum::<u32>() > 3)
            .count();
        assert!(multi > 0, "sessions should produce multi-request users");
    }

    #[test]
    fn window_counts_events_matches_request_version() {
        let trace = gen().generate(30.0, 20.0);
        let a = window_counts(&trace, 10.0);
        let b = window_counts_events(trace.iter().map(|r| (r.arrival.as_secs(), r.user)), 10.0);
        assert_eq!(a, b);
    }
}
