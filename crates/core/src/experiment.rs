//! High-level experiment drivers shared by the examples and the
//! figure-regeneration harnesses.

use bat_metrics::RankingMetrics;
use bat_model::semantic::{SemanticConfig, SemanticWorld};
use bat_model::MaskScheme;
use bat_sim::{ComputeModel, EngineConfig, RunStats, ServingEngine, SystemKind};
use bat_types::{ClusterConfig, DatasetConfig, ModelConfig, PrefixKind};
use bat_workload::{TraceGenerator, Workload};

/// Parameters of one serving comparison (a cell group of Figures 5/6).
#[derive(Debug, Clone)]
pub struct ComparisonSpec {
    /// Model architecture.
    pub model: ModelConfig,
    /// Cluster hardware.
    pub cluster: ClusterConfig,
    /// Dataset preset.
    pub dataset: DatasetConfig,
    /// Trace length in (simulated) seconds.
    pub duration_secs: f64,
    /// Offered request rate (req/s). For saturation-throughput
    /// measurements pick a rate well above capacity, e.g. via
    /// [`saturation_offered_rate`].
    pub offered_rate: f64,
    /// Workload/trace seed.
    pub seed: u64,
}

impl ComparisonSpec {
    /// Generates this spec's request trace (deterministic in `seed`).
    pub fn trace(&self) -> Vec<bat_types::RankRequest> {
        let mut g = TraceGenerator::new(
            Workload::new(self.dataset.clone(), self.seed),
            self.seed ^ 0xbadc0ffe,
        );
        g.generate(self.duration_secs, self.offered_rate)
    }
}

/// Runs the same trace through each system's engine and returns their
/// stats, in input order.
///
/// Each system simulates an independent engine over a shared read-only
/// trace, so the systems run in parallel on [`bat_exec`]; results are
/// collected in input order and each engine's simulation is fully
/// deterministic, so the output is identical for any thread count.
pub fn compare_systems(spec: &ComparisonSpec, systems: &[SystemKind]) -> Vec<RunStats> {
    let trace = spec.trace();
    bat_exec::parallel_map(systems, 1, |&kind| {
        let cfg = EngineConfig::for_system(
            kind,
            spec.model.clone(),
            spec.cluster.clone(),
            &spec.dataset,
        );
        let mut engine = ServingEngine::new(cfg).expect("preset configs validate");
        engine.run(&trace)
    })
}

/// Runs one explicit engine configuration over the spec's trace (for the
/// ablations of Figure 7/8 and Table 4).
pub fn run_config(
    spec: &ComparisonSpec,
    cfg: EngineConfig,
) -> Result<RunStats, bat_types::BatError> {
    let trace = spec.trace();
    let mut engine = ServingEngine::new(cfg)?;
    Ok(engine.run(&trace))
}

/// An offered rate comfortably above the cluster's recomputation capacity,
/// so completion rate measures saturation throughput. `margin` of ~3 is
/// plenty (caching at most triples effective capacity at the paper's hit
/// rates).
pub fn saturation_offered_rate(
    model: &ModelConfig,
    cluster: &ClusterConfig,
    ds: &DatasetConfig,
    margin: f64,
) -> f64 {
    let cm = ComputeModel::new(model.clone(), cluster.node.clone());
    let avg_prompt = ds.avg_user_tokens as u64
        + ds.avg_prompt_item_tokens() as u64
        + Workload::INSTRUCTION_TOKENS as u64;
    cm.recompute_qps_upper_bound(avg_prompt) * cluster.num_nodes as f64 * margin
}

/// One row of the Table 3 accuracy comparison.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Strategy label ("UP", "IP", "IP+PIC").
    pub strategy: String,
    /// Ranking metrics over the evaluated users.
    pub metrics: RankingMetrics,
}

/// Evaluates UP vs IP (and optionally IP with a PIC repair pass) on a
/// semantic world, over its first `n_users` users.
pub fn accuracy_rows(
    cfg: SemanticConfig,
    n_users: usize,
    pic_fraction: Option<f32>,
) -> Vec<AccuracyRow> {
    let world = SemanticWorld::generate(cfg);
    let mut rows = Vec::new();
    for (label, kind) in [("UP", PrefixKind::User), ("IP", PrefixKind::Item)] {
        let ranks = world.eval_ranks(kind, MaskScheme::Bipartite, n_users);
        rows.push(AccuracyRow {
            strategy: label.to_owned(),
            metrics: RankingMetrics::from_ranks(&ranks),
        });
    }
    if let Some(frac) = pic_fraction {
        let ranks = bat_exec::parallel_map_indexed(n_users.min(world.cfg.num_users), 1, |u| {
            let task = world.task(u);
            let scores = world.score_with_pic(&task, frac);
            bat_model::semantic::rank_of(&scores, task.truth_pos)
        });
        rows.push(AccuracyRow {
            strategy: format!("IP+PIC({frac})"),
            metrics: RankingMetrics::from_ranks(&ranks),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_types::Bytes;

    fn small_spec() -> ComparisonSpec {
        let mut cluster = ClusterConfig::a100_4node().with_nodes(2);
        cluster.node.kv_cache_capacity = Bytes::from_gb(20);
        ComparisonSpec {
            model: ModelConfig::qwen2_1_5b(),
            cluster,
            dataset: DatasetConfig::games(),
            duration_secs: 3.0,
            offered_rate: 20.0,
            seed: 3,
        }
    }

    #[test]
    fn comparison_covers_all_systems() {
        let spec = small_spec();
        let all = [
            SystemKind::Recompute,
            SystemKind::UserPrefix,
            SystemKind::ItemPrefix,
            SystemKind::Bat,
        ];
        let stats = compare_systems(&spec, &all);
        assert_eq!(stats.len(), 4);
        let n = spec.trace().len();
        for s in &stats {
            assert_eq!(s.completed, n);
        }
        assert_eq!(stats[0].hit_rate(), 0.0);
        assert!(stats[3].hit_rate() > 0.0);
    }

    #[test]
    fn traces_are_reproducible() {
        let spec = small_spec();
        assert_eq!(spec.trace(), spec.trace());
    }

    #[test]
    fn saturation_rate_scales_with_nodes() {
        let spec = small_spec();
        let one = saturation_offered_rate(
            &spec.model,
            &spec.cluster.clone().with_nodes(1),
            &spec.dataset,
            3.0,
        );
        let four = saturation_offered_rate(
            &spec.model,
            &spec.cluster.clone().with_nodes(4),
            &spec.dataset,
            3.0,
        );
        assert!((four / one - 4.0).abs() < 1e-9);
        assert!(one > 0.0);
    }

    #[test]
    fn accuracy_rows_produce_table3_columns() {
        let rows = accuracy_rows(SemanticConfig::test_world(), 10, Some(0.15));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].strategy, "UP");
        assert_eq!(rows[1].strategy, "IP");
        assert!(rows[2].strategy.starts_with("IP+PIC"));
        for r in &rows {
            let t = r.metrics.table3_row();
            assert!(t.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
