//! Minimal dense linear-algebra kernels for the GR transformer.
//!
//! `bat-model` needs exactly four primitives to run a transformer forward
//! pass: a row-major matrix with matmul, numerically-stable (masked)
//! softmax, RMS normalization, and rotary position embeddings (RoPE, [Su et
//! al. 2024], the position encoding the paper adjusts in §4.2). This crate
//! implements them from scratch in portable f32 — no BLAS, no SIMD
//! intrinsics — because the accuracy experiments run at laptop-scale
//! dimensions where clarity beats throughput.
//!
//! # Example
//!
//! ```
//! use bat_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod matrix;
pub mod ops;
pub mod rope;

pub use matrix::Matrix;
pub use ops::{rms_norm, silu, softmax_masked_in_place, stable_softmax_in_place};
pub use rope::RopeTable;
