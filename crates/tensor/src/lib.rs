//! Minimal dense linear-algebra kernels for the GR transformer.
//!
//! `bat-model` needs a small set of primitives to run a transformer forward
//! pass: a row-major matrix with matmul, numerically-stable (masked)
//! softmax, RMS normalization, rotary position embeddings (RoPE, [Su et
//! al. 2024], the position encoding the paper adjusts in §4.2), and the
//! fused attention epilogues. Everything is portable f32 from scratch — no
//! BLAS, no SIMD intrinsics — but the hot kernels are written for
//! throughput: [`Matrix::matmul_nt`] streams a transposed-packed operand
//! through a branch-free 4-wide-unrolled dot product with cache tiling, and
//! output row blocks run in parallel on [`bat_exec`]'s work-stealing pool.
//! Every kernel is deterministic: results are bit-identical for any thread
//! count (see `bat_exec`'s crate docs for the contract).
//!
//! # Example
//!
//! ```
//! use bat_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod matrix;
pub mod ops;
pub mod packed;
pub mod quant;
pub mod rope;

pub use matrix::Matrix;
pub use ops::{
    active_simd_tier, axpy, dot, dot_fast, fast_exp, fast_silu, fast_silu_in_place,
    fast_silu_mul_in_place, fused_masked_softmax_av, fused_silu_av, rms_norm, rms_norm_into, silu,
    softmax_masked_in_place, stable_softmax_fast_in_place, stable_softmax_in_place,
};
pub use packed::{ColBlock, SplitCols};
pub use quant::{f16_to_f32, f32_to_f16, fp16_round_trip, QuantKind, QuantizedColBlock};
pub use rope::RopeTable;
