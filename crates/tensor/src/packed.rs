//! Column-appendable transposed-packed storage and split-window kernels.
//!
//! [`ColBlock`] stores a `rows × len` block **plane-major**: plane `r` is a
//! contiguous slice holding component `r` of every appended column. This is
//! exactly the transposed (`d × g_len`) layout the attention kernels sweep,
//! so a KV segment stored this way is packed *once* — when it is computed —
//! and every later forward reads it zero-copy instead of re-gathering
//! row-major entries per layer per request.
//!
//! [`SplitCols`] is a zero-copy view over an optional cached-prefix block
//! followed by a suffix block, presenting them as one virtual
//! concatenation. Its kernels ([`SplitCols::axpy_plane`],
//! [`SplitCols::rows_dot_acc`]) reproduce the contiguous kernels'
//! arithmetic **bit-for-bit**: `axpy` is element-wise, so splitting a sweep
//! at the prefix/suffix boundary cannot change a bit, and the dot kernels
//! replicate [`crate::matrix`]'s exact `LANES`-chunk grouping over the
//! virtual concatenation — the one chunk that straddles the boundary is
//! gathered into a stack temporary, every other chunk streams from whichever
//! block owns it, and the scalar tail walks ascending virtual indices. A
//! forward pass that attends through a view is therefore bit-identical to
//! one that first copied both blocks into a single contiguous matrix.

use crate::matrix::{fold_lanes, LANES};
use crate::ops::axpy;

/// A `rows × len` block stored plane-major with column-append support.
///
/// Plane `r` lives at `data[r * cap .. r * cap + len]`; `cap` is the column
/// capacity, so appending a column is one strided scatter (one element per
/// plane) and never moves existing data until the block grows (amortized
/// doubling, like `Vec`).
///
/// ```
/// use bat_tensor::ColBlock;
///
/// let mut b = ColBlock::new(2);
/// b.push_col(&[1.0, 10.0]);
/// b.push_col(&[2.0, 20.0]);
/// assert_eq!(b.plane(0), &[1.0, 2.0]);
/// assert_eq!(b.plane(1), &[10.0, 20.0]);
/// ```
pub struct ColBlock {
    rows: usize,
    len: usize,
    cap: usize,
    data: Vec<f32>,
}

impl ColBlock {
    /// An empty block with `rows` planes.
    pub fn new(rows: usize) -> Self {
        ColBlock {
            rows,
            len: 0,
            cap: 0,
            data: Vec::new(),
        }
    }

    /// An empty block with `rows` planes and room for `cap` columns.
    pub fn with_capacity(rows: usize, cap: usize) -> Self {
        ColBlock {
            rows,
            len: 0,
            cap,
            data: vec![0.0; rows * cap],
        }
    }

    /// Rebuilds a block from `rows * cols` values laid out plane-major
    /// (plane 0's columns first, then plane 1's, …) — the inverse of
    /// serializing each [`ColBlock::plane`] in order, as the wire codec
    /// for KV segments does. The block is packed exactly (`cap == cols`).
    ///
    /// # Panics
    ///
    /// When `planes.len() != rows * cols`.
    pub fn from_planes(rows: usize, cols: usize, planes: &[f32]) -> Self {
        assert_eq!(
            planes.len(),
            rows * cols,
            "plane-major buffer length must be rows * cols"
        );
        ColBlock {
            rows,
            len: cols,
            cap: cols,
            data: planes.to_vec(),
        }
    }

    /// Number of planes (the packed dimension, e.g. `kv_dim`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns appended so far (e.g. tokens).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no column has been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current column capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Bytes of backing storage currently resident (capacity, not logical
    /// length) — what a cache pool must account for this block.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Plane `r`: component `r` of every appended column, contiguous.
    #[inline]
    pub fn plane(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "plane index out of range");
        &self.data[r * self.cap..r * self.cap + self.len]
    }

    /// Mutable borrow of plane `r`.
    #[inline]
    pub fn plane_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "plane index out of range");
        &mut self.data[r * self.cap..r * self.cap + self.len]
    }

    /// Grows the column capacity to at least `want`, repacking planes at
    /// the new stride.
    fn grow_to(&mut self, want: usize) {
        if want <= self.cap {
            return;
        }
        let new_cap = want.max(self.cap * 2).max(4);
        let mut data = vec![0.0f32; self.rows * new_cap];
        for r in 0..self.rows {
            data[r * new_cap..r * new_cap + self.len].copy_from_slice(self.plane(r));
        }
        self.data = data;
        self.cap = new_cap;
    }

    /// Ensures room for `additional` more columns without reallocating.
    pub fn reserve_cols(&mut self, additional: usize) {
        self.grow_to(self.len + additional);
    }

    /// Appends one column (one element per plane).
    ///
    /// # Panics
    ///
    /// Panics if `col.len() != self.rows()`.
    pub fn push_col(&mut self, col: &[f32]) {
        assert_eq!(col.len(), self.rows, "push_col width mismatch");
        if self.len == self.cap {
            self.grow_to(self.len + 1);
        }
        for (r, &x) in col.iter().enumerate() {
            self.data[r * self.cap + self.len] = x;
        }
        self.len += 1;
    }

    /// Overwrites column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()` or `col.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, col: &[f32]) {
        assert!(j < self.len, "set_col index out of range");
        assert_eq!(col.len(), self.rows, "set_col width mismatch");
        for (r, &x) in col.iter().enumerate() {
            self.data[r * self.cap + j] = x;
        }
    }

    /// Gathers column `j` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()` or `out.len() != self.rows()`.
    pub fn col_into(&self, j: usize, out: &mut [f32]) {
        assert!(j < self.len, "col index out of range");
        assert_eq!(out.len(), self.rows, "col_into width mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.cap + j];
        }
    }

    /// Column `j` as a fresh vector (test/oracle convenience; hot paths
    /// read planes).
    pub fn col(&self, j: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.col_into(j, &mut out);
        out
    }

    /// Appends every column of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the plane counts differ.
    pub fn extend_from(&mut self, other: &ColBlock) {
        assert_eq!(self.rows, other.rows, "extend_from plane-count mismatch");
        self.grow_to(self.len + other.len);
        for r in 0..self.rows {
            let dst = r * self.cap + self.len;
            self.data[dst..dst + other.len].copy_from_slice(other.plane(r));
        }
        self.len += other.len;
    }

    /// Drops all columns, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

/// Compacting clone: the copy's capacity equals its length, so cloning a
/// block into a cache never carries over-allocated scratch headroom.
impl Clone for ColBlock {
    fn clone(&self) -> Self {
        let mut data = vec![0.0f32; self.rows * self.len];
        for r in 0..self.rows {
            data[r * self.len..(r + 1) * self.len].copy_from_slice(self.plane(r));
        }
        ColBlock {
            rows: self.rows,
            len: self.len,
            cap: self.len,
            data,
        }
    }
}

/// Logical equality: shape and appended columns; capacity and any garbage
/// beyond `len` are ignored.
impl PartialEq for ColBlock {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.len == other.len
            && (0..self.rows).all(|r| self.plane(r) == other.plane(r))
    }
}

impl std::fmt::Debug for ColBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColBlock")
            .field("rows", &self.rows)
            .field("len", &self.len)
            .field("cap", &self.cap)
            .finish_non_exhaustive()
    }
}

/// Zero-copy view over `[prefix ++ suffix]` packed column blocks.
///
/// The cached prefix (if any) and the freshly-computed suffix stay in their
/// own [`ColBlock`]s; the view's kernels read the virtual concatenation
/// without ever materializing it. See the module docs for the bit-identity
/// argument.
#[derive(Clone, Copy)]
pub struct SplitCols<'a> {
    pre: Option<&'a ColBlock>,
    suf: &'a ColBlock,
}

impl<'a> SplitCols<'a> {
    /// Builds the view.
    ///
    /// # Panics
    ///
    /// Panics if the blocks' plane counts differ.
    pub fn new(pre: Option<&'a ColBlock>, suf: &'a ColBlock) -> Self {
        if let Some(p) = pre {
            assert_eq!(p.rows(), suf.rows(), "SplitCols plane-count mismatch");
        }
        SplitCols { pre, suf }
    }

    /// Number of planes.
    #[inline]
    pub fn rows(&self) -> usize {
        self.suf.rows()
    }

    /// Columns contributed by the prefix block (the split point).
    #[inline]
    pub fn split(&self) -> usize {
        self.pre.map_or(0, ColBlock::len)
    }

    /// Total virtual columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.split() + self.suf.len()
    }

    /// True when both blocks are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at plane `r`, virtual column `j`.
    #[inline]
    pub fn at(&self, r: usize, j: usize) -> f32 {
        let p = self.split();
        if j < p {
            self.pre.unwrap().plane(r)[j]
        } else {
            self.suf.plane(r)[j - p]
        }
    }

    /// `out[j] += coeff · plane(r)[j]` over the first `window` virtual
    /// columns. `axpy` is element-wise, so running it per block is the
    /// same arithmetic as one sweep over a contiguous copy.
    ///
    /// # Panics
    ///
    /// Panics if `window > self.len()` or `out.len() < window`.
    #[inline]
    pub fn axpy_plane(&self, r: usize, window: usize, coeff: f32, out: &mut [f32]) {
        assert!(window <= self.len(), "axpy_plane window overrun");
        let p = self.split().min(window);
        if let Some(pre) = self.pre {
            axpy(&mut out[..p], coeff, &pre.plane(r)[..p]);
        }
        axpy(&mut out[p..window], coeff, &self.suf.plane(r)[..window - p]);
    }

    /// Gathers `plane(r)` at the given virtual columns into `out`
    /// (clearing it first). The sparse attention path gathers allowed
    /// positions once per token and then sweeps contiguous buffers.
    pub fn gather_plane(&self, r: usize, idx: &[usize], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(idx.len());
        let p = self.split();
        let pre = self.pre.map(|b| b.plane(r));
        let suf = self.suf.plane(r);
        for &j in idx {
            out.push(if j < p { pre.unwrap()[j] } else { suf[j - p] });
        }
    }

    /// Gathers `plane(r)` at the given virtual columns into an
    /// exactly-sized slice — the in-place twin of
    /// [`SplitCols::gather_plane`] for callers packing several planes into
    /// one flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != idx.len()`.
    pub fn gather_plane_into(&self, r: usize, idx: &[usize], out: &mut [f32]) {
        assert_eq!(out.len(), idx.len(), "gather_plane_into length mismatch");
        let p = self.split();
        let pre = self.pre.map(|b| b.plane(r));
        let suf = self.suf.plane(r);
        for (o, &j) in out.iter_mut().zip(idx) {
            *o = if j < p { pre.unwrap()[j] } else { suf[j - p] };
        }
    }

    /// `out[c] += ⟨s, plane(row0 + c)⟩` over the first `s.len()` virtual
    /// columns — the split twin of [`crate::Matrix::rows_dot_acc`], and
    /// bit-identical to running it on a contiguous copy of the
    /// concatenation: the chunk grouping, per-row lane accumulators,
    /// fixed-tree fold, and ascending scalar tail are all reproduced over
    /// virtual indices (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if `row0 + out.len() > self.rows()` or `s.len() > self.len()`.
    pub fn rows_dot_acc(&self, row0: usize, s: &[f32], out: &mut [f32]) {
        assert!(row0 + out.len() <= self.rows(), "rows_dot_acc row overrun");
        assert!(s.len() <= self.len(), "rows_dot_acc column overrun");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { split_rows_dot_acc_avx2(self.pre, self.suf, row0, s, out) };
        }
        split_rows_dot_acc_body(self.pre, self.suf, row0, s, out)
    }
}

/// [`SplitCols::rows_dot_acc`]'s body compiled with AVX2 enabled (see
/// `matrix::fold_rows_into_avx2` for why the body must be
/// `#[inline(always)]`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn split_rows_dot_acc_avx2(
    pre: Option<&ColBlock>,
    suf: &ColBlock,
    row0: usize,
    s: &[f32],
    out: &mut [f32],
) {
    split_rows_dot_acc_body(pre, suf, row0, s, out)
}

/// Splits the window `0..n` into the regions the chunked dot kernels walk:
/// `full_pre` is the end of the LANES-chunks that lie entirely in the
/// prefix; a boundary chunk follows iff the split point is not
/// chunk-aligned inside the main region.
#[inline(always)]
fn chunk_regions(n: usize, p: usize) -> (usize, usize, bool) {
    let main = n / LANES * LANES;
    let full_pre = if p >= main { main } else { p / LANES * LANES };
    let boundary = full_pre < main && p > full_pre;
    (main, full_pre, boundary)
}

#[inline(always)]
fn split_rows_dot_acc_body(
    pre: Option<&ColBlock>,
    suf: &ColBlock,
    row0: usize,
    s: &[f32],
    out: &mut [f32],
) {
    let n = s.len();
    let p = pre.map_or(0, ColBlock::len).min(n);
    let (main, full_pre, boundary) = chunk_regions(n, p);
    let empty: &[f32] = &[];
    let pre_plane = |r: usize| pre.map_or(empty, |b| &b.plane(row0 + r)[..p]);
    let mut c = 0;
    // Four rows per pass sharing each `s` chunk load, exactly like
    // `rows_dot_acc_body`; every row keeps its own lane accumulators so no
    // sum is reassociated.
    while c + 4 <= out.len() {
        let (q0, q1, q2, q3) = (
            pre_plane(c),
            pre_plane(c + 1),
            pre_plane(c + 2),
            pre_plane(c + 3),
        );
        let (v0, v1, v2, v3) = (
            &suf.plane(row0 + c)[..n - p],
            &suf.plane(row0 + c + 1)[..n - p],
            &suf.plane(row0 + c + 2)[..n - p],
            &suf.plane(row0 + c + 3)[..n - p],
        );
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        let mut a2 = [0.0f32; LANES];
        let mut a3 = [0.0f32; LANES];
        let mut i = 0;
        while i < full_pre {
            let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
            let p0: &[f32; LANES] = q0[i..i + LANES].try_into().unwrap();
            let p1: &[f32; LANES] = q1[i..i + LANES].try_into().unwrap();
            let p2: &[f32; LANES] = q2[i..i + LANES].try_into().unwrap();
            let p3: &[f32; LANES] = q3[i..i + LANES].try_into().unwrap();
            for l in 0..LANES {
                a0[l] += ps[l] * p0[l];
                a1[l] += ps[l] * p1[l];
                a2[l] += ps[l] * p2[l];
                a3[l] += ps[l] * p3[l];
            }
            i += LANES;
        }
        if boundary {
            // The one chunk straddling the split: gather it so the lane
            // grouping matches the contiguous kernel's.
            let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
            let mut b0 = [0.0f32; LANES];
            let mut b1 = [0.0f32; LANES];
            let mut b2 = [0.0f32; LANES];
            let mut b3 = [0.0f32; LANES];
            for l in 0..LANES {
                let j = i + l;
                if j < p {
                    b0[l] = q0[j];
                    b1[l] = q1[j];
                    b2[l] = q2[j];
                    b3[l] = q3[j];
                } else {
                    b0[l] = v0[j - p];
                    b1[l] = v1[j - p];
                    b2[l] = v2[j - p];
                    b3[l] = v3[j - p];
                }
            }
            for l in 0..LANES {
                a0[l] += ps[l] * b0[l];
                a1[l] += ps[l] * b1[l];
                a2[l] += ps[l] * b2[l];
                a3[l] += ps[l] * b3[l];
            }
            i += LANES;
        }
        while i < main {
            let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
            let p0: &[f32; LANES] = v0[i - p..i - p + LANES].try_into().unwrap();
            let p1: &[f32; LANES] = v1[i - p..i - p + LANES].try_into().unwrap();
            let p2: &[f32; LANES] = v2[i - p..i - p + LANES].try_into().unwrap();
            let p3: &[f32; LANES] = v3[i - p..i - p + LANES].try_into().unwrap();
            for l in 0..LANES {
                a0[l] += ps[l] * p0[l];
                a1[l] += ps[l] * p1[l];
                a2[l] += ps[l] * p2[l];
                a3[l] += ps[l] * p3[l];
            }
            i += LANES;
        }
        // Fixed-tree fold, then the ascending virtual-index scalar tail —
        // the same association as `fold_lanes` over a contiguous row.
        let mut s0 = fold_lanes(a0, &[], &[]);
        let mut s1 = fold_lanes(a1, &[], &[]);
        let mut s2 = fold_lanes(a2, &[], &[]);
        let mut s3 = fold_lanes(a3, &[], &[]);
        for j in main..n {
            let sj = s[j];
            if j < p {
                s0 += sj * q0[j];
                s1 += sj * q1[j];
                s2 += sj * q2[j];
                s3 += sj * q3[j];
            } else {
                s0 += sj * v0[j - p];
                s1 += sj * v1[j - p];
                s2 += sj * v2[j - p];
                s3 += sj * v3[j - p];
            }
        }
        out[c] += s0;
        out[c + 1] += s1;
        out[c + 2] += s2;
        out[c + 3] += s3;
        c += 4;
    }
    while c < out.len() {
        out[c] += split_dot_body(s, pre_plane(c), &suf.plane(row0 + c)[..n - p]);
        c += 1;
    }
}

/// `⟨s, pre ++ suf⟩` with the exact chunk grouping of
/// `matrix::dot_unrolled_body` over the virtual concatenation.
#[inline(always)]
fn split_dot_body(s: &[f32], pre: &[f32], suf: &[f32]) -> f32 {
    let n = s.len();
    let p = pre.len();
    debug_assert_eq!(p + suf.len(), n, "split_dot length mismatch");
    let (main, full_pre, boundary) = chunk_regions(n, p);
    let mut acc = [0.0f32; LANES];
    let mut i = 0;
    while i < full_pre {
        let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
        let pb: &[f32; LANES] = pre[i..i + LANES].try_into().unwrap();
        for l in 0..LANES {
            acc[l] += ps[l] * pb[l];
        }
        i += LANES;
    }
    if boundary {
        let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
        let mut pb = [0.0f32; LANES];
        for (l, slot) in pb.iter_mut().enumerate() {
            let j = i + l;
            *slot = if j < p { pre[j] } else { suf[j - p] };
        }
        for l in 0..LANES {
            acc[l] += ps[l] * pb[l];
        }
        i += LANES;
    }
    while i < main {
        let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
        let pb: &[f32; LANES] = suf[i - p..i - p + LANES].try_into().unwrap();
        for l in 0..LANES {
            acc[l] += ps[l] * pb[l];
        }
        i += LANES;
    }
    let mut sum = fold_lanes(acc, &[], &[]);
    for j in main..n {
        sum += s[j] * if j < p { pre[j] } else { suf[j - p] };
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_block(rows: usize, cols: usize, rng: &mut SmallRng) -> ColBlock {
        let mut b = ColBlock::new(rows);
        for _ in 0..cols {
            let col: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            b.push_col(&col);
        }
        b
    }

    #[test]
    fn from_planes_inverts_plane_serialization() {
        let mut rng = SmallRng::seed_from_u64(11);
        let b = random_block(5, 9, &mut rng);
        let mut flat = Vec::new();
        for r in 0..b.rows() {
            flat.extend_from_slice(b.plane(r));
        }
        let back = ColBlock::from_planes(5, 9, &flat);
        assert_eq!(back.rows(), 5);
        assert_eq!(back.len(), 9);
        assert_eq!(back.capacity(), 9);
        for r in 0..5 {
            assert_eq!(back.plane(r), b.plane(r), "plane {r}");
        }
        // A rebuilt block keeps working as an appendable block.
        let mut back = back;
        back.push_col(&[1.0; 5]);
        assert_eq!(back.len(), 10);
        assert_eq!(back.plane(2)[9], 1.0);
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn from_planes_rejects_wrong_length() {
        let _ = ColBlock::from_planes(3, 4, &[0.0; 11]);
    }

    /// Contiguous `rows × len` matrix with the same contents as the virtual
    /// concatenation — the oracle the split kernels must match bitwise.
    fn concat_matrix(pre: Option<&ColBlock>, suf: &ColBlock) -> Matrix {
        let rows = suf.rows();
        let n = pre.map_or(0, ColBlock::len) + suf.len();
        let mut m = Matrix::zeros(rows, n);
        let view = SplitCols::new(pre, suf);
        for r in 0..rows {
            for j in 0..n {
                m.set(r, j, view.at(r, j));
            }
        }
        m
    }

    #[test]
    fn push_grow_and_read_back() {
        let mut b = ColBlock::new(3);
        for j in 0..37 {
            b.push_col(&[j as f32, -(j as f32), 0.5 * j as f32]);
        }
        assert_eq!(b.len(), 37);
        assert_eq!(b.plane(1)[20], -20.0);
        assert_eq!(b.col(36), vec![36.0, -36.0, 18.0]);
        b.set_col(5, &[9.0, 9.0, 9.0]);
        assert_eq!(b.col(5), vec![9.0; 3]);
    }

    #[test]
    fn extend_matches_pushing() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = random_block(4, 11, &mut rng);
        let b = random_block(4, 6, &mut rng);
        let mut joined = a.clone();
        joined.extend_from(&b);
        assert_eq!(joined.len(), 17);
        for j in 0..17 {
            let want = if j < 11 { a.col(j) } else { b.col(j - 11) };
            assert_eq!(joined.col(j), want);
        }
    }

    #[test]
    fn clone_compacts_and_equality_ignores_capacity() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut a = random_block(2, 5, &mut rng);
        a.reserve_cols(100);
        let c = a.clone();
        assert_eq!(c.capacity(), 5);
        assert_eq!(a, c);
        assert!(a.resident_bytes() > c.resident_bytes());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut a = random_block(2, 20, &mut rng);
        let cap = a.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), cap);
    }

    /// The split kernels must be bit-identical to the contiguous kernels
    /// over a materialized concatenation, for every split point — including
    /// chunk-aligned splits, splits inside the scalar tail, and windows
    /// shorter than the prefix.
    #[test]
    fn split_kernels_bit_match_contiguous() {
        let mut rng = SmallRng::seed_from_u64(42);
        for &(rows, p_cols, s_cols) in &[
            (8usize, 0usize, 5usize),
            (8, 3, 1),
            (8, 8, 8),
            (8, 13, 29),
            (16, 48, 200),
            (6, 17, 7),
            (4, 1, 40),
        ] {
            let pre = (p_cols > 0).then(|| random_block(rows, p_cols, &mut rng));
            let suf = random_block(rows, s_cols, &mut rng);
            let view = SplitCols::new(pre.as_ref(), &suf);
            let flat = concat_matrix(pre.as_ref(), &suf);
            let n = p_cols + s_cols;
            for window in [1, p_cols.max(1), n.min(p_cols + 1), n] {
                let s: Vec<f32> = (0..window).map(|_| rng.gen_range(-1.0..1.0)).collect();
                // rows_dot_acc twin.
                let mut got = vec![0.1f32; rows];
                let mut want = vec![0.1f32; rows];
                view.rows_dot_acc(0, &s, &mut got);
                flat.rows_dot_acc(&s, &mut want);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "rows_dot_acc split mismatch");
                }
                // axpy twin.
                let mut got = vec![0.0f32; window];
                let mut want = vec![0.0f32; window];
                view.axpy_plane(rows - 1, window, 0.37, &mut got);
                axpy(&mut want, 0.37, &flat.row(rows - 1)[..window]);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "axpy split mismatch");
                }
            }
        }
    }

    #[test]
    fn rows_dot_acc_respects_row_offset() {
        let mut rng = SmallRng::seed_from_u64(43);
        let pre = random_block(12, 10, &mut rng);
        let suf = random_block(12, 9, &mut rng);
        let view = SplitCols::new(Some(&pre), &suf);
        let flat = concat_matrix(Some(&pre), &suf);
        let s: Vec<f32> = (0..19).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut got = vec![0.0f32; 4];
        view.rows_dot_acc(4, &s, &mut got);
        for (c, g) in got.iter().enumerate() {
            let want = crate::ops::dot_fast(&s, flat.row(4 + c));
            assert_eq!(g.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn gather_plane_reads_virtual_indices() {
        let mut rng = SmallRng::seed_from_u64(44);
        let pre = random_block(3, 6, &mut rng);
        let suf = random_block(3, 4, &mut rng);
        let view = SplitCols::new(Some(&pre), &suf);
        let mut out = Vec::new();
        view.gather_plane(2, &[0, 5, 6, 9], &mut out);
        assert_eq!(
            out,
            vec![
                pre.plane(2)[0],
                pre.plane(2)[5],
                suf.plane(2)[0],
                suf.plane(2)[3]
            ]
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_col_rejects_wrong_width() {
        let mut b = ColBlock::new(3);
        b.push_col(&[1.0, 2.0]);
    }
}
